#!/usr/bin/env python3
"""Fault-injection campaign: the classical validation of ACE analysis.

Runs one benchmark under OoO and RAR with ACE-interval recording enabled,
fires tens of thousands of random bit strikes against each run, and
compares the empirical vulnerability (fraction of strikes that hit
architecturally-required state) against the analytical AVF — then shows
the AVF timeline so the phase behaviour RAR eliminates is visible.

Usage:
    python examples/fault_injection.py [workload] [trials]
"""

import sys

from repro import BASELINE
from repro.analysis.plots import bar_chart
from repro.core.core import OutOfOrderCore
from repro.core.runahead import OOO, RAR
from repro.reliability.fault_injection import FaultInjector
from repro.reliability.timeline import avf_timeline
from repro.workloads.catalog import get_workload


def run_with_recording(workload, policy, instructions=8_000):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy,
                          record_ace_intervals=True)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000

    for label, policy in (("OoO baseline", OOO), ("RAR", RAR)):
        core = run_with_recording(workload, policy)
        abc_no_fu = core.ace.total - core.ace.bits["fu"]
        analytical = abc_no_fu / (BASELINE.core.total_bits * core.cycle)
        injector = FaultInjector(core.ace.intervals, BASELINE.core,
                                 core.cycle, seed=42)
        result = injector.run(trials)

        print(f"\n=== {workload} under {label} ===")
        print(f"strikes: {trials}, hits on ACE state: {result.hits}")
        print(f"empirical AVF  : {result.empirical_avf:.4f}")
        print(f"analytical AVF : {analytical:.4f}   "
              f"(agreement {result.empirical_avf / analytical:.2%})"
              if analytical else "")
        per_struct = {
            s: result.structure_avf(s)
            for s in ("rob", "iq", "lq", "sq", "rf")
            if result.trials_by_structure.get(s)
        }
        if any(per_struct.values()):
            print("\nper-structure vulnerability (fraction of strikes "
                  "that mattered):")
            print(bar_chart(per_struct, width=40, fmt="{:.3f}"))

        series = avf_timeline(core.ace.intervals,
                              BASELINE.core.total_bits, core.cycle,
                              window=max(1, core.cycle // 24))
        spark = "".join(
            " ▁▂▃▄▅▆▇█"[min(8, int(v / (max(x for _, x in series) or 1)
                                   * 8))]
            for _, v in series
        )
        print(f"\nAVF over time: |{spark}|  "
              f"(peak {max(x for _, x in series):.3f})")


if __name__ == "__main__":
    main()
