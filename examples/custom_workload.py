#!/usr/bin/env python3
"""Build a custom workload from scratch and measure RAR on it.

Demonstrates the full workload API: hand-written loop bodies (a pointer
chase intertwined with a streaming kernel), address-pattern specs, and the
resulting behaviour under OoO vs. RAR. Use this as a template for studying
your own access patterns.

Usage:
    python examples/custom_workload.py
"""

from repro import BASELINE, OOO, RAR, simulate
from repro.common.enums import UopClass
from repro.workloads.base import BranchSpec, SlotSpec, WorkloadSpec
from repro.workloads.patterns import PatternSpec, hot_mix

MB = 1024 * 1024


def build_workload() -> WorkloadSpec:
    """A hybrid kernel: one dependent chase chain + one wide stream.

    The chase loads serialise (runahead cannot prefetch them — their
    addresses depend on in-flight data), while the stream loads are
    independent and prefetch perfectly. RAR's reliability gain applies to
    both; its performance gain comes from the stream.
    """
    L, A, S, B, C = (int(UopClass.LOAD), int(UopClass.INT_ADD),
                     int(UopClass.STORE), int(UopClass.BRANCH),
                     int(UopClass.INT_CMP))
    body = (
        # chase: load -> pointer arithmetic -> next chase load (dynamic dep)
        SlotSpec(cls=L, pattern="chase"),                 # 0
        SlotSpec(cls=A, srcs=((0, 0),)),                  # 1 consumes chase
        # stream: induction-variable addressing, independent of loads
        SlotSpec(cls=A),                                  # 2 i++
        SlotSpec(cls=L, srcs=((0, 2),), pattern="stream"),  # 3
        SlotSpec(cls=A, srcs=((0, 3),)),                  # 4 consume stream
        SlotSpec(cls=S, srcs=((0, 4), (0, 2)), pattern="stream"),  # 5
        SlotSpec(cls=C, srcs=((0, 1),)),                  # 6 compare
        SlotSpec(cls=B, branch=BranchSpec(kind="biased", bias=0.95)),  # 7
        SlotSpec(cls=B, branch=BranchSpec(kind="loop", period=128)),   # 8
    )
    return WorkloadSpec(
        name="custom-hybrid",
        memory_intensive=True,
        body=body,
        patterns={
            "chase": hot_mix(
                PatternSpec(kind="chase", working_set=32 * MB), 0.75),
            "stream": hot_mix(
                PatternSpec(kind="stream", working_set=2 * MB, streams=8),
                0.75),
        },
        seed=2022,
        description="hand-built chase + stream hybrid",
    )


def main() -> None:
    spec = build_workload()
    print(f"Workload {spec.name!r}: {len(spec.body)} static uops/iteration")
    base = simulate(spec, BASELINE, OOO, instructions=8_000)
    rar = simulate(spec, BASELINE, RAR, instructions=8_000)

    print(f"\nbaseline : ipc={base.ipc:.3f} mlp={base.mlp:.2f} "
          f"mpki={base.mpki:.1f} avf={base.avf:.3f}")
    print(f"RAR      : ipc={rar.ipc:.3f} mlp={rar.mlp:.2f} "
          f"mpki={rar.mpki:.1f} avf={rar.avf:.3f}")
    print(f"\nRAR vs OoO: IPC {rar.ipc_rel(base):.2f}x, "
          f"MTTF {rar.mttf_rel(base):.2f}x, "
          f"ABC -{(1 - rar.abc_rel(base)) * 100:.1f}%")
    print("\nPer-structure exposed state (ACE bit-cycles):")
    for s in ("rob", "iq", "lq", "sq", "rf", "fu"):
        print(f"  {s:<4} base={base.abc[s]:>14,}  rar={rar.abc[s]:>14,}")


if __name__ == "__main__":
    main()
