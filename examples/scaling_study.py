#!/usr/bin/env python3
"""Back-end scaling study: does RAR keep paying off on bigger cores?

Runs a memory-intensive workload across the four core generations of the
paper's Table I (Nehalem-like 128-entry ROB through Ice Lake-like
352-entry ROB) under OoO and RAR — a single-benchmark version of the
paper's Figures 4 and 10. Expected shape: baseline exposure climbs with
back-end size; RAR's stays nearly flat, so the gap widens.

Usage:
    python examples/scaling_study.py [workload] [instructions]
"""

import sys

from repro import CORE1, CORE2, CORE3, CORE4, OOO, RAR, simulate
from repro.analysis.tables import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "milc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    machines = (CORE1, CORE2, CORE3, CORE4)
    rows = []
    base_abc = None
    for machine in machines:
        ooo = simulate(workload, machine, OOO, instructions=instructions)
        rar = simulate(workload, machine, RAR, instructions=instructions)
        ooo_rate = ooo.abc_total / ooo.instructions
        rar_rate = rar.abc_total / rar.instructions
        if base_abc is None:
            base_abc = ooo_rate
        rows.append([
            machine.name, machine.core.rob_size,
            ooo_rate / base_abc, rar_rate / base_abc,
            rar.mttf_rel(ooo), rar.ipc_rel(ooo),
        ])
        print(f"  {machine.name}: done")

    print(f"\n{workload}: exposure scaling across core generations "
          f"(ABC normalised to {machines[0].name} OoO)\n")
    print(format_table(
        ["machine", "ROB", "OoO ABC", "RAR ABC", "RAR MTTF_rel",
         "RAR IPC_rel"], rows))
    print("\nRAR closes the widening reliability gap: the OoO column grows "
          "with the ROB\nwhile the RAR column stays nearly flat.")


if __name__ == "__main__":
    main()
