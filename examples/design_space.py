#!/usr/bin/env python3
"""Design-space walk: all eight policies on one workload (paper Table IV).

Sweeps OoO, FLUSH, TR, TR-EARLY, PRE, PRE-EARLY, RAR-LATE and RAR on a
chosen benchmark and prints the three-axis matrix together with the
measured reliability/performance of every point — a single-benchmark
version of the paper's Figure 9.

Usage:
    python examples/design_space.py [workload] [instructions]
"""

import sys

from repro import ALL_POLICIES, BASELINE, simulate
from repro.analysis.tables import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    results = {}
    base = None
    for policy in ALL_POLICIES:
        r = simulate(workload, BASELINE, policy, instructions=instructions)
        results[policy.name] = r
        if policy.name == "OOO":
            base = r
        print(f"  simulated {policy.name:<10} "
              f"ipc={r.ipc:.3f} abc={r.abc_total}")

    from repro.analysis.energy import energy_delay_product

    rows = []
    edp_base = energy_delay_product(base)
    for policy in ALL_POLICIES:
        r = results[policy.name]
        axes = "".join((
            "E" if policy.early else "-",
            "F" if policy.flush_at_exit or policy.kind == "flush" else "-",
            "L" if policy.lean else "-",
        ))
        rows.append([
            policy.name, axes,
            r.ipc_rel(base), r.mttf_rel(base), r.abc_rel(base),
            energy_delay_product(r) / edp_base,
            r.runahead_triggers + r.flush_triggers,
        ])
    print(f"\n{workload}: runahead design space "
          f"(axes: Early start / Flush at exit / Lean execution)\n")
    print(format_table(
        ["policy", "EFL", "IPC_rel", "MTTF_rel", "ABC_rel", "EDP_rel",
         "intervals"],
        rows))
    print("\nThe paper's conclusion — RAR (EFL) is the only point that "
          "improves both\ncolumns substantially — should be visible above.")


if __name__ == "__main__":
    main()
