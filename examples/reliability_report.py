#!/usr/bin/env python3
"""Full soft-error reliability report for a set of benchmarks.

For each workload: per-structure ACE breakdown, AVF, the miss-shadow
attribution of Figure 5, and the MTTF/ABC improvement each protection
mechanism (FLUSH, RAR) buys — the kind of report a reliability architect
would pull before choosing a mechanism.

Usage:
    python examples/reliability_report.py [workload ...]
"""

import sys

from repro import BASELINE, FLUSH, OOO, RAR, simulate
from repro.analysis.tables import format_table
from repro.reliability.ace import STRUCTURES


def report_one(name: str, instructions: int = 8_000) -> None:
    base = simulate(name, BASELINE, OOO, instructions=instructions)
    flush = simulate(name, BASELINE, FLUSH, instructions=instructions)
    rar = simulate(name, BASELINE, RAR, instructions=instructions)

    print(f"\n=== {name} "
          f"(ipc={base.ipc:.3f}, mpki={base.mpki:.1f}, "
          f"mlp={base.mlp:.2f}) ===")

    rows = [[s, base.abc[s], base.abc[s] / base.abc_total]
            for s in STRUCTURES]
    print("\nWhere the vulnerable state lives (OoO baseline):")
    print(format_table(["structure", "ACE bit-cycles", "share"], rows))

    hb = base.abc_head_blocked / base.abc_total
    fs = base.abc_full_stall / base.abc_total
    print(f"\nMiss-shadow attribution: {hb * 100:.1f}% of exposure occurs "
          f"while an LLC miss\nblocks the ROB head "
          f"({fs * 100:.1f}% during full-window stalls).")

    rows = []
    for label, r in (("FLUSH", flush), ("RAR", rar)):
        rows.append([
            label, r.ipc_rel(base), r.mttf_rel(base),
            (1 - r.abc_rel(base)) * 100.0,
        ])
    print("\nMechanism comparison (relative to the OoO baseline):")
    print(format_table(
        ["mechanism", "IPC_rel", "MTTF_rel", "ABC reduction %"], rows))


def main() -> None:
    names = sys.argv[1:] or ["libquantum", "mcf"]
    print(f"Reliability report for: {', '.join(names)}")
    for name in names:
        report_one(name)


if __name__ == "__main__":
    main()
