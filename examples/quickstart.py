#!/usr/bin/env python3
"""Quickstart: reliability and performance of RAR on one benchmark.

Runs the mcf-like pointer-chasing workload (the paper's best reliability
case) on the Table II baseline core under the plain OoO policy and under
Reliability-Aware Runahead, then reports the headline metrics.

Usage:
    python examples/quickstart.py [workload] [instructions]
"""

import sys

from repro import BASELINE, OOO, RAR, simulate


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    print(f"Simulating {workload!r} for {instructions} instructions "
          f"(plus warmup) on the baseline core...")
    base = simulate(workload, BASELINE, OOO, instructions=instructions)
    rar = simulate(workload, BASELINE, RAR, instructions=instructions)

    print(f"\n{'metric':<24}{'OoO':>14}{'RAR':>14}{'ratio':>10}")
    print("-" * 62)
    rows = (
        ("IPC", base.ipc, rar.ipc, rar.ipc_rel(base)),
        ("MLP", base.mlp, rar.mlp, rar.mlp / base.mlp if base.mlp else 0),
        ("LLC MPKI", base.mpki, rar.mpki,
         rar.mpki / base.mpki if base.mpki else 0),
        ("ABC (bit-cycles)", base.abc_total, rar.abc_total,
         rar.abc_rel(base)),
        ("AVF", base.avf, rar.avf, rar.avf / base.avf),
    )
    for name, b, r, ratio in rows:
        print(f"{name:<24}{b:>14.4g}{r:>14.4g}{ratio:>9.3f}x")
    print("-" * 62)
    print(f"{'MTTF vs OoO':<24}{'1.000x':>14}{rar.mttf_rel(base):>13.3f}x")
    print(f"\nRAR triggered {rar.runahead_triggers} runahead intervals "
          f"({rar.runahead_cycles} cycles) and issued "
          f"{rar.runahead_prefetches} speculative memory accesses.")


if __name__ == "__main__":
    main()
