#!/usr/bin/env python3
"""Watch RAR work: an annotated timeline of pipeline events.

Hooks the core's observer interface and prints a human-readable log of one
simulation — runahead entries/exits with interval lengths, flush squashes,
mispredict recoveries and commit-rate samples — so you can *see* the
mechanism of the paper in action.

Usage:
    python examples/pipeline_trace.py [workload] [policy] [instructions]
"""

import sys

from repro import BASELINE, get_policy
from repro.core.core import OutOfOrderCore
from repro.workloads.catalog import get_workload


class TimelineLogger:
    """Condenses observer events into a readable interval log."""

    def __init__(self, max_lines: int = 40):
        self.max_lines = max_lines
        self.lines = 0
        self._ra_start = None
        self._ra_commit_mark = 0
        self.commits = 0

    def __call__(self, event: str, cycle: int, **data) -> None:
        if event == "commit":
            self.commits += 1
            return
        if self.lines >= self.max_lines:
            return
        if event == "runahead_enter":
            self._ra_start = cycle
            self._ra_commit_mark = self.commits
            blocking = data["blocking"]
            self._log(cycle, f"runahead ENTER  blocked load "
                             f"pc={blocking.static.pc:#x} "
                             f"addr={blocking.static.addr:#x}")
        elif event == "runahead_exit":
            span = cycle - self._ra_start if self._ra_start else 0
            self._log(cycle, f"runahead EXIT   interval={span} cycles")
        elif event == "flush_enter":
            self._log(cycle, "FLUSH: squash younger, park fetch")
        elif event == "flush_exit":
            self._log(cycle, "FLUSH: data returned, refetching")
        elif event == "squash":
            uops, cause = data["uops"], data["cause"]
            self._log(cycle, f"squash {len(uops):3d} uops ({cause.name})")
        elif event == "mispredict":
            br = data["branch"]
            self._log(cycle, f"mispredict pc={br.static.pc:#x} -> recover")

    def _log(self, cycle: int, message: str) -> None:
        print(f"  [{cycle:>8}] commits={self.commits:<6} {message}")
        self.lines += 1


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    policy = get_policy(sys.argv[2] if len(sys.argv) > 2 else "RAR")
    instructions = int(sys.argv[3]) if len(sys.argv) > 3 else 3_000

    spec = get_workload(workload)
    logger = TimelineLogger()
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy,
                          observer=logger)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)

    print(f"{workload} under {policy.name} — first "
          f"{logger.max_lines} pipeline events:\n")
    core.run(instructions)
    print(f"\ndone: {core.stats.committed} instructions in {core.cycle} "
          f"cycles (IPC {core.ipc:.3f}); "
          f"{core.stats.runahead_triggers} runahead intervals, "
          f"{core.stats.flush_triggers} flushes, "
          f"{core.stats.branch_mispredicted} mispredict recoveries")


if __name__ == "__main__":
    main()
