#!/usr/bin/env python3
"""Render the paper's headline figures as terminal (ASCII) charts.

Generates reduced-size versions of Figure 1 (IPC-vs-MTTF scatter) and
Figure 3 (per-structure ABC stacks) and draws them with the built-in
dependency-free plotting helpers. For the full-size reproduction use the
benchmark harness (`pytest benchmarks/ --benchmark-only`).

Usage:
    python examples/ascii_figures.py [instructions]
"""

import sys

from repro import BASELINE, simulate
from repro.analysis.plots import bar_chart, scatter, stacked_bars
from repro.analysis.stats import gmean, hmean
from repro.reliability.ace import STRUCTURES

WORKLOADS = ("libquantum", "mcf", "lbm", "milc")
POLICIES = ("FLUSH", "TR", "PRE", "RAR")


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000

    results = {}
    for w in WORKLOADS:
        results[(w, "OOO")] = simulate(w, BASELINE, "OOO",
                                       instructions=instructions)
        for p in POLICIES:
            results[(w, p)] = simulate(w, BASELINE, p,
                                       instructions=instructions)
            print(f"  simulated {w}/{p}")

    # ----- Figure 1: IPC vs MTTF scatter -------------------------------
    points = {}
    for p in POLICIES:
        ipcs = [results[(w, p)].ipc_rel(results[(w, "OOO")])
                for w in WORKLOADS]
        mttfs = [results[(w, p)].mttf_rel(results[(w, "OOO")])
                 for w in WORKLOADS]
        points[p] = (hmean(ipcs), gmean(mttfs))
    print("\n" + scatter(points, xlabel="relative IPC",
                         ylabel="relative MTTF",
                         title="Figure 1 — performance vs reliability "
                               f"({len(WORKLOADS)} benchmarks)"))

    # ----- Figure 3: ABC stacks ----------------------------------------
    rows = {}
    for w in WORKLOADS:
        r = results[(w, "OOO")]
        rows[w] = {s: r.abc[s] / (r.instructions / 1000) for s in STRUCTURES}
    print("\nFigure 3 — exposed state per structure "
          "(ACE bit-cycles per kilo-instruction)")
    print(stacked_bars(rows, segments=STRUCTURES, width=46))

    # ----- Bonus: RAR's MTTF per benchmark -----------------------------
    mttf = {w: results[(w, "RAR")].mttf_rel(results[(w, "OOO")])
            for w in WORKLOADS}
    print("\nRAR mean-time-to-failure improvement per benchmark")
    print(bar_chart(mttf, width=40, fmt="{:.1f}x"))


if __name__ == "__main__":
    main()
