"""CI farm-smoke harness: a sweep that survives injected crashes.

Drives the crash-tolerant farm (docs/farm.md) through its three fault
paths with real processes and real SIGKILLs, then asserts the
contract — stdlib only, exit 0/1:

1. **Chaos sweep** — a small matrix with one worker SIGKILLed mid-run
   (``REPRO_FARM_CRASH_TOKEN``) and one point forced to raise
   (``REPRO_FARM_RAISE``): every other point must complete, persist to
   the disk cache, and the run ledger must audit clean
   (``check_complete``) with the worker death and requeue on record.
2. **Serve round trip** — a request through the spool service
   (submit -> serve -> response) answered ``ok``.
3. **Farm/serial identity** — the chaos sweep's surviving results must
   be bit-identical to a serial ``run_matrix`` of the same grid; the
   golden fingerprints can't be perturbed by scheduling.

Usage: ``PYTHONPATH=src python tools/farm_smoke.py [--jobs N]``
"""

import argparse
import json
import os
import sys
import tempfile

WLS = ["mcf", "x264"]
POLS = ["OOO", "RAR"]
N, W = 2000, 2000
RAISE_POINT = ("x264", "RAR")

_failures = []


def check(cond, label):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {label}")
    if not cond:
        _failures.append(label)


def chaos_sweep(tmp, jobs):
    from repro.analysis.experiments import ExperimentRunner
    from repro.common.params import BASELINE
    from repro.obs.ledger import check_complete, read_ledger, summarize

    token = os.path.join(tmp, "crash.token")
    with open(token, "w"):
        pass
    os.environ["REPRO_FARM_CRASH_TOKEN"] = token
    os.environ["REPRO_FARM_RAISE"] = ":".join(RAISE_POINT)
    ledger = os.path.join(tmp, "chaos.jsonl")
    cache = os.path.join(tmp, "chaos-cache.json")
    try:
        runner = ExperimentRunner(instructions=N, warmup=W,
                                  cache_path=cache)
        matrix = runner.run_matrix(WLS, BASELINE, POLS, jobs=jobs,
                                   ledger=ledger)
    finally:
        os.environ.pop("REPRO_FARM_CRASH_TOKEN", None)
        os.environ.pop("REPRO_FARM_RAISE", None)

    print("chaos sweep (1 SIGKILL + 1 forced raise):")
    survivors = [(w, p) for p in POLS for w in WLS
                 if (w, p) != RAISE_POINT]
    check(all(w in matrix.get(p, {}) for w, p in survivors),
          "every surviving point completed")
    check(len(matrix.failures) == 1
          and (matrix.failures[0]["workload"],
               matrix.failures[0]["policy"]) == RAISE_POINT,
          "the injected raise is the only failure")
    check(not matrix.failures[0]["quarantined"],
          "a deterministic raise is not quarantined")
    check(not os.path.exists(token), "the crash token was consumed")

    events = read_ledger(ledger)
    st = summarize(events)
    check(st.worker_deaths >= 1,
          f"worker death recorded ({st.worker_deaths})")
    check(st.requeued >= 1, f"requeue recorded ({st.requeued})")
    problems = check_complete(events)
    check(problems == [],
          "ledger audits clean" if not problems
          else f"ledger audit: {problems}")

    disk = json.load(open(cache))
    check(len(disk["data"]) == len(survivors),
          f"{len(disk['data'])}/{len(survivors)} survivors on disk")
    return matrix


def serial_identity(matrix):
    from repro.analysis.experiments import ExperimentRunner
    from repro.common.params import BASELINE

    print("farm vs serial identity:")
    serial = ExperimentRunner(instructions=N, warmup=W)
    want = serial.run_matrix(WLS, BASELINE, POLS)
    identical = all(
        matrix[p][w] == want[p][w]
        for p in POLS for w in WLS if (w, p) != RAISE_POINT)
    check(identical, "surviving farm results bit-identical to serial")


def serve_round_trip(tmp, jobs):
    from repro.analysis.farm import (
        FarmServer, SweepRequest, new_request_id, response_path,
        submit_request,
    )
    from repro.common.params import BASELINE
    from repro.obs.ledger import read_ledger

    print("serve/submit round trip:")
    spool = os.path.join(tmp, "spool")
    ledger = os.path.join(tmp, "serve.jsonl")
    request = SweepRequest(request_id=new_request_id(), workloads=["mcf"],
                           policies=POLS, instructions=N, warmup=W)
    submit_request(spool, request)
    server = FarmServer(spool, {"baseline": BASELINE}, jobs=jobs,
                        ledger=ledger)
    served = server.serve_forever(max_requests=1)
    check(served == 1, "server served the request and exited")
    response = json.load(open(response_path(spool, request.request_id)))
    check(response["status"] == "ok",
          f"response status {response['status']!r}")
    check(len(response["results"]) == len(POLS),
          f"{len(response['results'])}/{len(POLS)} results returned")
    events = read_ledger(ledger)
    check(any(e["ev"] == "request_done" and e.get("status") == "ok"
              for e in events), "request_done ledgered")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="farm-smoke-") as tmp:
        matrix = chaos_sweep(tmp, args.jobs)
        serial_identity(matrix)
        serve_round_trip(tmp, args.jobs)
    if _failures:
        print(f"\nfarm smoke: {len(_failures)} check(s) failed")
        return 1
    print("\nfarm smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
