#!/usr/bin/env python
"""Measure tier-1 line coverage of src/repro without coverage.py.

The CI coverage gate (`--cov-fail-under` in .github/workflows/ci.yml)
needs a measured baseline, but coverage.py is not part of the runtime
image this repo is developed in. This tool reproduces coverage.py's
line measurement with the standard library alone: executable lines come
from each module's compiled code objects (`co_lines`, walked through
nested functions/classes), executed lines from a `sys.settrace` hook
filtered to src/repro files, and the suite runs in-process via
`pytest.main` so the tracer sees everything tier-1 executes.

Usage (from the repo root; takes a few minutes — settrace is slow)::

    python tools/measure_coverage.py [extra pytest args]

Lines forked subprocess workers execute are not observed (the same
blind spot pytest-cov has by default), so the printed total is a floor
on what CI measures — which is the safe direction for picking a gate.
"""

import os
import sys
from collections import defaultdict

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")


def executable_lines(path):
    """All line numbers coverage.py would consider executable."""
    with open(path, "rb") as f:
        try:
            code = compile(f.read(), path, "exec")
        except SyntaxError:
            return set()
    lines = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, _, ln in co.co_lines() if ln is not None)
        stack.extend(c for c in co.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv):
    executed = defaultdict(set)

    def tracer(frame, event, arg):
        fn = frame.f_code.co_filename
        if not fn.startswith(SRC):
            return None  # never trace into foreign code
        if event == "line":
            executed[fn].add(frame.f_lineno)
        return tracer

    sys.path.insert(0, os.path.join(REPO, "src"))
    import pytest

    os.chdir(REPO)
    sys.settrace(tracer)
    try:
        rc = pytest.main(["-x", "-q"] + argv)
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest failed (rc={rc}); coverage numbers are meaningless")
        return rc

    total_exec = total_hit = 0
    rows = []
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            known = executable_lines(path)
            hit = executed.get(path, set()) & known
            total_exec += len(known)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(known) if known else 100.0
            rows.append((os.path.relpath(path, REPO), len(known),
                         len(hit), pct))

    width = max(len(r[0]) for r in rows)
    for rel, n_exec, n_hit, pct in rows:
        print(f"{rel:<{width}}  {n_hit:>5}/{n_exec:<5}  {pct:6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print("-" * (width + 22))
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_exec:<5}  "
          f"{total_pct:6.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
