"""Figure 7 — MTTF (a) and ABC (b) for OoO/FLUSH/PRE/RAR-LATE/RAR.

Per-benchmark bars over the full workload set plus per-set means
(geomean for MTTF, amean for normalised ABC). Paper shape: ABC ordering
RAR < RAR-LATE < FLUSH < PRE < OoO; RAR's MTTF gain is largest on the
memory-intensive set and modest-but-real on the compute set.
"""

from conftest import once

from repro.analysis.stats import amean, gmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import COMPUTE_WORKLOADS, MEMORY_WORKLOADS

POLICIES = ("FLUSH", "PRE", "RAR-LATE", "RAR")


def _collect(runner, metric):
    per_bench = {}
    for w in MEMORY_WORKLOADS + COMPUTE_WORKLOADS:
        base = runner.run(w, BASELINE, "OOO")
        per_bench[w.name] = {
            pol: metric(runner.run(w, BASELINE, pol), base)
            for pol in POLICIES
        }
    return per_bench


def test_fig07a_mttf(benchmark, runner, report):
    def build():
        per_bench = _collect(runner, lambda r, b: r.mttf_rel(b))
        rows = [[name] + [vals[p] for p in POLICIES]
                for name, vals in per_bench.items()]
        for setname, ws in (("geomean-mem", MEMORY_WORKLOADS),
                            ("geomean-cmp", COMPUTE_WORKLOADS)):
            rows.append([setname] + [
                gmean([per_bench[w.name][p] for w in ws]) for p in POLICIES])
        table = format_table(["benchmark"] + list(POLICIES), rows)
        return table, per_bench

    table, per_bench = once(benchmark, build)
    report("fig07a_mttf", table)

    mem_mean = {p: gmean([per_bench[w.name][p] for w in MEMORY_WORKLOADS])
                for p in POLICIES}
    cmp_mean = {p: gmean([per_bench[w.name][p] for w in COMPUTE_WORKLOADS])
                for p in POLICIES}
    assert mem_mean["RAR"] > 2.0, "RAR: large MTTF gain on memory set"
    assert mem_mean["RAR"] > mem_mean["PRE"] * 2
    assert 0.7 < cmp_mean["PRE"] < 1.6, "PRE: no reliability story"
    assert cmp_mean["RAR"] > 1.1, "RAR: modest gain on compute set"


def test_fig07b_abc(benchmark, runner, report):
    def build():
        per_bench = _collect(runner, lambda r, b: r.abc_rel(b))
        rows = [[name] + [vals[p] for p in POLICIES]
                for name, vals in per_bench.items()]
        for setname, ws in (("amean-mem", MEMORY_WORKLOADS),
                            ("amean-cmp", COMPUTE_WORKLOADS)):
            rows.append([setname] + [
                amean([per_bench[w.name][p] for w in ws]) for p in POLICIES])
        table = format_table(["benchmark"] + list(POLICIES), rows)
        return table, per_bench

    table, per_bench = once(benchmark, build)
    report("fig07b_abc", table)

    mem = {p: amean([per_bench[w.name][p] for w in MEMORY_WORKLOADS])
           for p in POLICIES}
    # The paper's normalised-ABC ordering (Figure 7b):
    # RAR < RAR-LATE < FLUSH < PRE < OoO(=1).
    assert mem["RAR"] < mem["FLUSH"] < mem["PRE"] < 1.0
    assert mem["RAR"] <= mem["RAR-LATE"] * 1.1
    assert mem["RAR"] < 0.45, "RAR removes the bulk of exposed state"
    assert mem["PRE"] > 0.55, "PRE alone keeps most state vulnerable"
