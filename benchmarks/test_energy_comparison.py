"""Extension — first-order energy comparison of the design space.

Not a paper figure, but the quantitative backdrop of the paper's §VI
discussion: traditional runahead's energy problem (it executes *every*
future instruction speculatively) versus PRE's lean filtering, and where
RAR lands once its flush-refetch work is charged. Reported as energy per
instruction (EPI) and energy-delay product (EDP), memory-set means,
relative to the OoO baseline.
"""

from conftest import once

from repro.analysis.energy import energy_delay_product, energy_per_instruction
from repro.analysis.stats import amean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

POLICIES = ("FLUSH", "TR", "PRE", "RAR-LATE", "RAR")


def test_energy_comparison(benchmark, runner, report):
    def build():
        agg = {}
        for pol in POLICIES:
            epis, edps = [], []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, BASELINE, pol)
                epis.append(energy_per_instruction(r)
                            / energy_per_instruction(base))
                edps.append(energy_delay_product(r)
                            / energy_delay_product(base))
            agg[pol] = (amean(epis), amean(edps))
        rows = [[pol, *agg[pol]] for pol in POLICIES]
        table = format_table(["policy", "EPI_rel", "EDP_rel"], rows)
        return table, agg

    table, agg = once(benchmark, build)
    report("energy_comparison", table)

    # Traditional runahead pays the largest speculative-execution bill.
    assert agg["TR"][0] > agg["PRE"][0]
    # RAR's speed keeps its energy-delay product competitive.
    assert agg["RAR"][1] < agg["TR"][1]
