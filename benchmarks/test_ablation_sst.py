"""Ablation — Stalling Slice Table capacity (PRE's slice filter).

Lean runahead only executes uops whose PC hits in the SST. A tiny SST
thrashes on workloads with many distinct stalling slices and misses
prefetch opportunities; the paper's 128 entries comfortably hold the hot
slices of loop-dominated codes. This ablation sweeps SST capacity under
RAR and reports prefetch coverage and performance.
"""

from dataclasses import replace

from conftest import once

from repro.analysis.stats import gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

SIZES = (8, 32, 128)
WORKLOADS = ("libquantum", "gcc", "milc")


def test_ablation_sst(benchmark, runner, report):
    def build():
        rows = []
        data = {}
        for n in SIZES:
            machine = BASELINE.with_core(
                replace(BASELINE.core, sst_size=n), name=f"baseline-sst{n}")
            ipcs, mttfs, prefetches = [], [], 0
            for name in WORKLOADS:
                w = next(x for x in MEMORY_WORKLOADS if x.name == name)
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, machine, "RAR")
                ipcs.append(r.ipc_rel(base))
                mttfs.append(r.mttf_rel(base))
                prefetches += r.runahead_prefetches
            data[n] = (hmean(ipcs), gmean(mttfs), prefetches)
            rows.append([n, *data[n]])
        table = format_table(
            ["SST entries", "IPC_rel", "MTTF_rel", "runahead accesses"],
            rows)
        return table, data

    table, data = once(benchmark, build)
    report("ablation_sst", table)

    # Reliability is flush-driven, not SST-driven: stable across sizes.
    for n in SIZES:
        assert data[n][1] > 1.5, f"sst={n}"
    # A larger SST never hurts performance materially.
    assert data[128][0] >= data[8][0] * 0.95
