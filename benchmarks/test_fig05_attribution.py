"""Figure 5 — how much ACE exposure falls in long-latency-miss shadows.

Three bars per memory-intensive benchmark: total OoO ABC, the share
exposed while an LLC miss blocks commit at the ROB head ('ROB head
blocked'), and the share exposed during full-ROB stalls. Paper findings:
head-blocked windows account for the vast majority of exposure (70.4% on
average, up to 87.7%), and strictly contain the full-stall windows —
with mispredict-heavy benchmarks (mcf, gcc) showing the largest gap
between the two.
"""

from conftest import once

from repro.analysis.stats import amean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS


def test_fig05_attribution(benchmark, runner, report):
    def build():
        rows = []
        shares = {}
        for w in MEMORY_WORKLOADS:
            r = runner.run(w, BASELINE, "OOO")
            hb = r.abc_head_blocked / r.abc_total
            fs = r.abc_full_stall / r.abc_total
            shares[w.name] = (hb, fs)
            rows.append([w.name, r.abc_total, fs, hb])
        rows.append(["amean", "", amean(fs for _, fs in shares.values()),
                     amean(hb for hb, _ in shares.values())])
        table = format_table(
            ["benchmark", "total ABC", "full-ROB-stall share",
             "ROB-head-blocked share"], rows)
        return table, shares

    table, shares = once(benchmark, build)
    report("fig05_attribution", table)

    hb_mean = amean(hb for hb, _ in shares.values())
    # The majority of vulnerable state is exposed under blocked heads.
    assert hb_mean > 0.5
    # Head-blocked windows contain the full-stall windows.
    for name, (hb, fs) in shares.items():
        assert hb >= fs - 1e-9, name
    # Mispredict-heavy mcf: a large part of its exposure happens while the
    # head is blocked but the ROB never fills (Section II-C).
    hb_mcf, fs_mcf = shares["mcf"]
    assert hb_mcf - fs_mcf > 0.15
