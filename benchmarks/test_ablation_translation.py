"""Ablation — OS page allocation vs. identity address mapping.

The reproduction's default maps virtual lines straight to DRAM addresses
(identity), which gives streams maximal row-buffer locality but pins each
page's traffic to one bank. Enabling the page-shuffle translation models an
OS allocator scattering frames: row locality across pages is lost, but
bank-level parallelism rises. This ablation quantifies the effect on the
baseline and checks RAR's qualitative result is robust to the mapping.
"""

from dataclasses import replace

from conftest import once

from repro.analysis.stats import gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

SHUFFLED = replace(BASELINE, page_shuffle_seed=2022, name="baseline-pgshuf")
WORKLOADS = ("libquantum", "mcf", "milc")


def test_ablation_translation(benchmark, runner, report):
    def build():
        rows = []
        data = {}
        for label, machine in (("identity", BASELINE),
                               ("shuffled", SHUFFLED)):
            ipcs, mttfs, rar_ipcs = [], [], []
            for name in WORKLOADS:
                w = next(x for x in MEMORY_WORKLOADS if x.name == name)
                base = runner.run(w, machine, "OOO")
                rar = runner.run(w, machine, "RAR")
                ipcs.append(base.ipc)
                rar_ipcs.append(rar.ipc_rel(base))
                mttfs.append(rar.mttf_rel(base))
            data[label] = (hmean(ipcs), hmean(rar_ipcs), gmean(mttfs))
            rows.append([label, *data[label]])
        table = format_table(
            ["mapping", "OoO IPC", "RAR IPC_rel", "RAR MTTF_rel"], rows)
        return table, data

    table, data = once(benchmark, build)
    report("ablation_translation", table)

    # RAR's dual win must hold under either address mapping.
    for label in ("identity", "shuffled"):
        assert data[label][2] > 1.5, label
        assert data[label][1] > 0.9, label
