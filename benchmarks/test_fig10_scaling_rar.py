"""Figure 10 — RAR closes the reliability gap as back-ends grow.

ABC (memory-set amean, normalised to the Core-1 OoO baseline) as a
function of ROB size for the OoO baseline and for RAR, over the four
Table I core generations. Paper shape: the OoO curve climbs steeply with
back-end size while the RAR curve stays nearly flat.
"""

from conftest import once

from repro.analysis.stats import amean
from repro.analysis.tables import format_table
from repro.common.params import SCALED_MACHINES
from repro.workloads.catalog import MEMORY_WORKLOADS


def test_fig10_scaling(benchmark, runner, report):
    def build():
        abc = {"OOO": [], "RAR": []}
        for machine in SCALED_MACHINES:
            for pol in ("OOO", "RAR"):
                vals = [
                    runner.run(w, machine, pol).abc_total
                    / (runner.run(w, machine, pol).instructions / 1000.0)
                    for w in MEMORY_WORKLOADS
                ]
                abc[pol].append(amean(vals))
        base = abc["OOO"][0]
        series = {p: [v / base for v in vals] for p, vals in abc.items()}
        rows = [
            [m.name, m.core.rob_size, series["OOO"][i], series["RAR"][i]]
            for i, m in enumerate(SCALED_MACHINES)
        ]
        table = format_table(["machine", "ROB", "OoO ABC", "RAR ABC"], rows)
        return table, series

    table, series = once(benchmark, build)
    report("fig10_scaling_rar", table)

    ooo, rar = series["OOO"], series["RAR"]
    # The baseline's exposure grows with back-end size...
    assert ooo[-1] > ooo[0] * 1.3
    # ...RAR stays far below it at every size...
    for o, r in zip(ooo, rar):
        assert r < 0.5 * o
    # ...and the absolute gap widens with size (RAR "closes the widening
    # reliability gap"): the saving at Core-4 exceeds the saving at Core-1.
    assert (ooo[-1] - rar[-1]) > (ooo[0] - rar[0])
