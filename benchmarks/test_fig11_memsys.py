"""Runahead × prefetcher × DRAM protocol — the Figure 11 axes extended.

The paper evaluates RAR against prefetching on one fixed memory system;
this study re-runs the {OoO, RAR} × {no-prefetch, +L3} grid on three
protocol presets (ddr3-1600 as in the paper, ddr4-3200, hbm2). All
relative numbers are against the *same protocol's* no-prefetch OoO
baseline, so each block answers "does RAR's reliability/performance story
survive this memory system?" — raw IPC columns compare across protocols.
"""

from conftest import once

from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE, PrefetcherParams
from repro.memory.dram import dram_preset
from repro.workloads.catalog import MEMORY_WORKLOADS

PROTOCOLS = ("ddr3-1600", "ddr4-3200", "hbm2")

L3PF = PrefetcherParams(levels=("l3",))


def _machines(proto):
    """(no-prefetch, +L3-prefetch) machine pair for one protocol."""
    if proto == "ddr3-1600":
        base = BASELINE  # the paper's machine, shared with every other fig
    else:
        short = proto.split("-")[0]
        base = BASELINE.with_dram(dram_preset(proto),
                                  name=f"baseline-{short}")
    return base, base.with_prefetcher(L3PF, name=f"{base.name}+l3pf")


CONFIGS = []
for _proto in PROTOCOLS:
    _plain, _pf = _machines(_proto)
    for _pol in ("OOO", "RAR"):
        CONFIGS.append((f"{_pol}/{_proto}", _proto, _plain, _pol))
        CONFIGS.append((f"{_pol}+L3/{_proto}", _proto, _pf, _pol))


def test_fig11_memsys(benchmark, runner, report):
    def build():
        agg = {}
        for label, proto, machine, pol in CONFIGS:
            base_machine = _machines(proto)[0]
            mttfs, abcs, ipcs, raw = [], [], [], []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, base_machine, "OOO")
                r = runner.run(w, machine, pol)
                mttfs.append(r.mttf_rel(base))
                abcs.append(r.abc_rel(base))
                ipcs.append(r.ipc_rel(base))
                raw.append(r.ipc)
            agg[label] = (gmean(mttfs), amean(abcs), hmean(ipcs),
                          hmean(raw))
        rows = [[label, *(f"{v:.3f}" for v in agg[label])]
                for label, _, _, _ in CONFIGS]
        table = format_table(
            ["config", "MTTF", "ABC_rel", "IPC_rel", "IPC"], rows)
        return table, agg

    table, agg = once(benchmark, build)
    report("fig11_memsys", table)

    for proto in PROTOCOLS:
        # RAR's reliability win survives every memory system, with and
        # without prefetching.
        for cfg in (f"RAR/{proto}", f"RAR+L3/{proto}"):
            assert agg[cfg][0] > 1.5, cfg
            assert agg[cfg][1] < 0.7, cfg
        # ... without giving up performance against the matching OoO.
        assert agg[f"RAR/{proto}"][2] > agg[f"OOO/{proto}"][2] * 0.95
        assert (agg[f"RAR+L3/{proto}"][3]
                > agg[f"OOO+L3/{proto}"][3] * 0.95)
        # Prefetching never tanks the baseline on any protocol.
        assert agg[f"OOO+L3/{proto}"][2] >= agg[f"OOO/{proto}"][2] * 0.95
    # The study's headline: on the refresh-bearing modern protocols,
    # plain OoO loses IPC to refresh interference (the MSHR-limited
    # core cannot buy it back with bandwidth), while runahead's MLP
    # spreads across more banks/channels and hides refresh windows —
    # so RAR's *relative* performance win grows beyond the paper's
    # refresh-free ddr3 machine.
    assert agg["OOO/ddr4-3200"][3] < agg["OOO/ddr3-1600"][3]
    assert agg["OOO/hbm2"][3] < agg["OOO/ddr3-1600"][3]
    assert agg["RAR/ddr4-3200"][2] > agg["RAR/ddr3-1600"][2]
    assert agg["RAR/hbm2"][2] > agg["RAR/ddr3-1600"][2]
