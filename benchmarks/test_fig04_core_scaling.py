"""Figure 4 (+ Table I) — ABC versus back-end structure size.

Runs the OoO baseline on the four core generations of Table I
(128/192/224/352-entry ROBs) over the memory-intensive set and reports
total ABC normalised to Core-1. The paper finds an approximately linear
increase, reaching ~1.8x at Core-4.
"""

from conftest import once

from repro.analysis.stats import amean
from repro.analysis.tables import format_table
from repro.common.params import SCALED_MACHINES
from repro.workloads.catalog import MEMORY_WORKLOADS


def test_fig04_core_scaling(benchmark, runner, report):
    def build():
        abc_by_machine = {}
        for machine in SCALED_MACHINES:
            vals = []
            for w in MEMORY_WORKLOADS:
                r = runner.run(w, machine, "OOO")
                vals.append(r.abc_total / (r.instructions / 1000.0))
            abc_by_machine[machine.name] = amean(vals)
        base = abc_by_machine["core-1"]
        rows = [
            [m.name, m.core.rob_size, abc_by_machine[m.name] / base]
            for m in SCALED_MACHINES
        ]
        table = format_table(["machine", "ROB", "normalized ABC"], rows)
        return table, [abc_by_machine[m.name] / base for m in SCALED_MACHINES]

    table, norm = once(benchmark, build)
    report("fig04_core_scaling", table)

    # Vulnerability grows monotonically with back-end size...
    assert norm == sorted(norm)
    # ...and substantially: the paper reports ~1.83x for Core-4 vs Core-1.
    assert norm[-1] > 1.3
    assert norm[0] == 1.0
