"""Extension — the design space beyond the paper's Table IV.

Places the implemented related-work mechanisms next to the paper's points
on the same axes: dispatch throttling (§VI-C), the runahead buffer
(Hashemi & Patt, MICRO'15) and reliability-aware vector runahead
(RAR's optimisations on Naithani et al.'s ISCA'21 vectorisation).
Memory-set means relative to the OoO baseline.
"""

from conftest import once

from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

POLICIES = ("FLUSH", "THROTTLE", "TR", "PRE", "RA-BUFFER", "RAR", "VEC-RAR")


def test_extended_design_space(benchmark, runner, report):
    def build():
        agg = {}
        for pol in POLICIES:
            mttfs, abcs, ipcs = [], [], []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, BASELINE, pol)
                mttfs.append(r.mttf_rel(base))
                abcs.append(r.abc_rel(base))
                ipcs.append(r.ipc_rel(base))
            agg[pol] = (gmean(mttfs), amean(abcs), hmean(ipcs))
        rows = [[pol, *agg[pol]] for pol in POLICIES]
        table = format_table(["policy", "MTTF", "ABC_rel", "IPC_rel"], rows)
        return table, agg

    table, agg = once(benchmark, build)
    report("extended_design_space", table)

    # THROTTLE sits between OoO and FLUSH on both axes.
    assert 1.0 < agg["THROTTLE"][0] < agg["FLUSH"][0]
    assert agg["THROTTLE"][2] > agg["FLUSH"][2]
    # The runahead buffer is PRE-like: performance without reliability.
    assert agg["RA-BUFFER"][0] < 2.0
    # Vector runahead keeps RAR's reliability class.
    assert agg["VEC-RAR"][1] < 0.3
    assert agg["VEC-RAR"][0] > 3.0
    # And its performance is at least RAR-competitive.
    assert agg["VEC-RAR"][2] > agg["RAR"][2] * 0.9
