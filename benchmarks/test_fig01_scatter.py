"""Figure 1 — performance (IPC) versus reliability (MTTF) scatter.

Reproduces the paper's headline scatter: FLUSH, TR, PRE and RAR relative to
the OoO baseline, averaged over the memory-intensive set (hmean for IPC
ratios, geomean for MTTF ratios). The paper's shape: FLUSH = high
reliability / low performance, PRE = high performance / no reliability,
TR = modest on both axes, RAR = high on both.
"""

from conftest import once

from repro.analysis.stats import gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

POLICIES = ("FLUSH", "TR", "PRE", "RAR")


def test_fig01_scatter(benchmark, runner, report):
    def build():
        rows = []
        points = {}
        for pol in POLICIES:
            mttfs, ipcs = [], []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, BASELINE, pol)
                mttfs.append(r.mttf_rel(base))
                ipcs.append(r.ipc_rel(base))
            points[pol] = (hmean(ipcs), gmean(mttfs))
            rows.append([pol, hmean(ipcs), gmean(mttfs)])
        table = format_table(
            ["technique", "relative IPC", "relative MTTF"], rows)
        return table, points

    table, points = once(benchmark, build)
    report("fig01_ipc_vs_mttf", table)

    # Paper shape assertions.
    assert points["FLUSH"][0] < 1.0, "FLUSH must cost performance"
    assert points["FLUSH"][1] > 1.5, "FLUSH must improve reliability"
    assert points["PRE"][0] > 1.08, "PRE must improve performance"
    assert points["PRE"][1] < 1.5, "PRE alone gives no big MTTF gain"
    assert points["RAR"][0] > 1.05, "RAR keeps PRE-class performance"
    assert points["RAR"][1] > 2.0, "RAR must improve reliability a lot"
    # RAR is the only point strong on both axes.
    for pol in ("FLUSH", "TR", "PRE"):
        strong_both = points[pol][0] > 1.1 and points[pol][1] > 2.0
        assert not strong_both, f"{pol} should not dominate both axes"
