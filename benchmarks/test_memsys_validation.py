"""Memory-system validation — microbenchmarks vs. analytic curves.

Two layers of the same methodology (after the DRAM re-evaluation
literature): first the raw controller is measured against the closed-form
latency/bandwidth each protocol preset implies (`repro memval`); then the
catalog microbenchmarks ``pchase`` and ``streambw`` drive the *full*
hierarchy, checking that protocol latency differences survive the caches
and the core. (End-to-end the 20-MSHR core cannot saturate a channel, so
the bandwidth ceiling itself is asserted at the controller level only.)
"""

from conftest import once

from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.memory.dram import PRESET_NAMES, dram_preset
from repro.workloads.microbench import memval_table, validate_all

MACHINES = {
    "ddr3-1600": BASELINE,
    "ddr4-3200": BASELINE.with_dram(dram_preset("ddr4-3200"),
                                    name="baseline-ddr4"),
    "lpddr4-3200": BASELINE.with_dram(dram_preset("lpddr4-3200"),
                                      name="baseline-lpddr4"),
    "hbm2": BASELINE.with_dram(dram_preset("hbm2"), name="baseline-hbm2"),
}


def test_memval_analytic_curves(benchmark, report):
    """Every preset × scheduler matches its spec-implied curves."""
    def build():
        tables = {}
        for sched in ("fcfs", "frfcfs"):
            results = validate_all(scheduler=sched)
            tables[sched] = memval_table(results)
            for r in results:
                assert r.ok, f"{r.preset}/{sched}: {r.problems}"
        return tables

    tables = once(benchmark, build)
    report("memval_curves",
           "\n\n".join(f"[{s}]\n{t}" for s, t in tables.items()))


def test_microbench_full_hierarchy(benchmark, runner, report):
    """pchase / streambw IPC across protocols, through core + caches."""
    def build():
        rows, ipc = [], {}
        for proto in PRESET_NAMES:
            m = MACHINES[proto]
            chase = runner.run("pchase", m, "OOO")
            stream = runner.run("streambw", m, "OOO")
            ipc[proto] = (chase.ipc, stream.ipc)
            rows.append([proto, f"{chase.ipc:.3f}", f"{stream.ipc:.3f}",
                         f"{m.dram.row_hit_latency}", f"{m.dram.channels}"])
        table = format_table(
            ["protocol", "pchase IPC", "streambw IPC",
             "row-hit lat", "channels"], rows)
        return table, ipc

    table, ipc = once(benchmark, build)
    report("memsys_microbench", table)

    # Latency differences survive end-to-end: lpddr4's much longer
    # access latency drags both microbenchmarks well below ddr3, while
    # the three ~equal-latency presets stay within a band of each other.
    # (The channel bandwidth *ceiling* is NOT visible here — with 20
    # MSHRs the core cannot saturate even one ddr3 channel; that wall
    # is measured at the raw controller by memval above.)
    assert ipc["lpddr4-3200"][0] < 0.8 * ipc["ddr3-1600"][0]
    assert ipc["lpddr4-3200"][1] < 0.6 * ipc["ddr3-1600"][1]
    for proto in ("ddr4-3200", "hbm2"):
        assert ipc[proto][0] > 0.8 * ipc["ddr3-1600"][0], proto
        assert ipc[proto][1] > 0.8 * ipc["ddr3-1600"][1], proto
