"""Figure 11 — RAR under hardware prefetching.

Adds the stride prefetcher (16 streams) at the LLC ('+L3') or at all
levels ('+ALL') and re-evaluates OoO, PRE and RAR. All numbers are
relative to the *no-prefetch* OoO baseline. Paper shape: prefetching
removes some of the misses runahead would have covered, but RAR still
improves both reliability and performance on prefetch-enabled machines.
"""

from conftest import once

from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE, PrefetcherParams
from repro.workloads.catalog import MEMORY_WORKLOADS

PF_L3 = BASELINE.with_prefetcher(
    PrefetcherParams(levels=("l3",)), name="baseline+L3")
PF_ALL = BASELINE.with_prefetcher(
    PrefetcherParams(levels=("l1", "l2", "l3")), name="baseline+ALL")

CONFIGS = (
    ("OOO", BASELINE), ("PRE", BASELINE), ("RAR", BASELINE),
    ("OOO+L3", PF_L3), ("PRE+L3", PF_L3), ("RAR+L3", PF_L3),
    ("OOO+ALL", PF_ALL), ("PRE+ALL", PF_ALL), ("RAR+ALL", PF_ALL),
)


def test_fig11_prefetch(benchmark, runner, report):
    def build():
        agg = {}
        for label, machine in CONFIGS:
            pol = label.split("+")[0]
            mttfs, abcs, ipcs = [], [], []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, machine, pol)
                mttfs.append(r.mttf_rel(base))
                abcs.append(r.abc_rel(base))
                ipcs.append(r.ipc_rel(base))
            agg[label] = (gmean(mttfs), amean(abcs), hmean(ipcs))
        rows = [[label, *agg[label]] for label, _ in CONFIGS]
        table = format_table(["config", "MTTF", "ABC_rel", "IPC_rel"], rows)
        return table, agg

    table, agg = once(benchmark, build)
    report("fig11_prefetch", table)

    # Prefetching itself helps the baseline.
    assert agg["OOO+ALL"][2] >= agg["OOO"][2] * 0.98
    # RAR still delivers a reliability win on prefetch-enabled machines.
    for cfg in ("RAR+L3", "RAR+ALL"):
        assert agg[cfg][0] > 1.8, cfg
        assert agg[cfg][1] < 0.6, cfg
    # And performance does not regress versus the matching OoO machine.
    assert agg["RAR+L3"][2] > agg["OOO+L3"][2] * 0.95
    assert agg["RAR+ALL"][2] > agg["OOO+ALL"][2] * 0.95
    # PRE keeps its performance edge with prefetching on.
    assert agg["PRE+L3"][2] > agg["OOO+L3"][2] * 0.98
