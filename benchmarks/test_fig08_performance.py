"""Figure 8 — IPC (a) and MLP (b) for OoO/FLUSH/PRE/RAR-LATE/RAR.

Paper shape: PRE is the best performer (+38% on the memory set), RAR and
RAR-LATE stay close behind (+33.5% / +32.7%), FLUSH degrades performance
(-9.3% average, up to -21.9%), and the runahead techniques raise MLP
substantially over the OoO baseline.
"""

from conftest import once

from repro.analysis.stats import amean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import COMPUTE_WORKLOADS, MEMORY_WORKLOADS

POLICIES = ("FLUSH", "PRE", "RAR-LATE", "RAR")


def test_fig08a_ipc(benchmark, runner, report):
    def build():
        per_bench = {}
        for w in MEMORY_WORKLOADS + COMPUTE_WORKLOADS:
            base = runner.run(w, BASELINE, "OOO")
            per_bench[w.name] = {
                pol: runner.run(w, BASELINE, pol).ipc_rel(base)
                for pol in POLICIES
            }
        rows = [[name] + [v[p] for p in POLICIES]
                for name, v in per_bench.items()]
        for setname, ws in (("hmean-mem", MEMORY_WORKLOADS),
                            ("hmean-cmp", COMPUTE_WORKLOADS)):
            rows.append([setname] + [
                hmean([per_bench[w.name][p] for w in ws]) for p in POLICIES])
        table = format_table(["benchmark"] + list(POLICIES), rows)
        return table, per_bench

    table, per_bench = once(benchmark, build)
    report("fig08a_ipc", table)

    mem = {p: hmean([per_bench[w.name][p] for w in MEMORY_WORKLOADS])
           for p in POLICIES}
    cmp_ = {p: hmean([per_bench[w.name][p] for w in COMPUTE_WORKLOADS])
            for p in POLICIES}
    assert mem["PRE"] > 1.10, "PRE: significant speedup on memory set"
    assert mem["FLUSH"] < 0.97, "FLUSH: loses performance"
    assert mem["RAR"] > 1.05, "RAR: keeps most of PRE's speedup"
    assert mem["RAR"] > mem["FLUSH"]
    # RAR-LATE pays a small, consistent exit-flush cost vs PRE.
    assert mem["RAR-LATE"] < mem["PRE"]
    # Compute set barely affected by RAR (paper: +0.4%).
    assert 0.9 < cmp_["RAR"] < 1.2


def test_fig08b_mlp(benchmark, runner, report):
    def build():
        per_bench = {}
        for w in MEMORY_WORKLOADS:
            base = runner.run(w, BASELINE, "OOO")
            per_bench[w.name] = {"OOO": base.mlp}
            for pol in POLICIES:
                per_bench[w.name][pol] = runner.run(w, BASELINE, pol).mlp
        cols = ("OOO",) + POLICIES
        rows = [[name] + [v[p] for p in cols]
                for name, v in per_bench.items()]
        rows.append(["amean"] + [
            amean([per_bench[w.name][p] for w in MEMORY_WORKLOADS])
            for p in cols])
        table = format_table(["benchmark"] + list(cols), rows)
        return table, per_bench

    table, per_bench = once(benchmark, build)
    report("fig08b_mlp", table)

    mean = {p: amean([per_bench[w.name][p] for w in MEMORY_WORKLOADS])
            for p in ("OOO",) + POLICIES}
    assert mean["FLUSH"] < mean["OOO"], "flushing destroys MLP"
    assert mean["PRE"] > mean["OOO"], "runahead exposes distant MLP"
    assert mean["RAR"] > mean["FLUSH"]
