"""Shared fixtures for the figure/table reproduction harness.

Every bench file regenerates one of the paper's tables or figures: it runs
the needed (workload × machine × policy) simulation points through a
session-wide memoised runner (so points shared between figures — e.g.
Figures 7 and 8 — simulate once), prints the same rows/series the paper
reports, and writes them under ``benchmarks/results/``.

Sizing knobs (environment):
    REPRO_BENCH_INSTR   measured instructions per point (default 15000)
    REPRO_BENCH_WARMUP  warmup instructions per point (default 15000)

The on-disk cache keyed by those sizes makes re-runs instantaneous.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, _SRC)

import pytest

from repro.analysis.experiments import ExperimentRunner

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def bench_sizes():
    return (int(os.environ.get("REPRO_BENCH_INSTR", 15_000)),
            int(os.environ.get("REPRO_BENCH_WARMUP", 15_000)))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    instr, warm = bench_sizes()
    cache = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         f"_cache_i{instr}_w{warm}.json")
    return ExperimentRunner(instructions=instr, warmup=warm, cache_path=cache)


@pytest.fixture(scope="session")
def report():
    """report(name, text): print a figure's rows and persist them."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n===== {name} =====")
        print(text)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return _report


def once(benchmark, fn):
    """Run the (self-caching) figure builder exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
