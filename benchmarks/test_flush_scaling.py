"""Section III-A1 — flushing's performance penalty grows with ROB size.

The paper quantifies Weaver-style flushing across the Table I core
generations: -7.6% average at the 128-entry ROB growing to -12.2% at the
352-entry one, because a larger window holds more MLP for the flush to
destroy. This bench reproduces that scaling claim.
"""

from conftest import once

from repro.analysis.stats import hmean
from repro.analysis.tables import format_table
from repro.common.params import SCALED_MACHINES
from repro.workloads.catalog import MEMORY_WORKLOADS


def test_flush_penalty_scaling(benchmark, runner, report):
    def build():
        penalties = {}
        rows = []
        for machine in SCALED_MACHINES:
            ratios = []
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, machine, "OOO")
                fl = runner.run(w, machine, "FLUSH")
                ratios.append(fl.ipc_rel(base))
            penalties[machine.core.rob_size] = hmean(ratios)
            rows.append([machine.name, machine.core.rob_size,
                         hmean(ratios), (1 - hmean(ratios)) * 100])
        table = format_table(
            ["machine", "ROB", "FLUSH IPC_rel", "penalty %"], rows)
        return table, penalties

    table, penalties = once(benchmark, build)
    report("flush_scaling", table)

    robs = sorted(penalties)
    # Flushing always costs performance...
    for rob in robs:
        assert penalties[rob] < 1.0
    # ...and costs *more* on larger windows (more MLP destroyed).
    assert penalties[robs[-1]] < penalties[robs[0]]
