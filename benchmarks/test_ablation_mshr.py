"""Ablation — MSHR count (the MLP ceiling).

Runahead's benefit is bounded by how many misses can be in flight: the
L1D's miss-status holding registers. The paper's baseline has 20; this
sweep shows runahead gains growing with the MSHR budget on streaming
workloads (more distant MLP to harvest) while the OoO baseline saturates
at the window's intrinsic parallelism.
"""

from dataclasses import replace

from conftest import once

from repro.analysis.stats import hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

MSHRS = (8, 20, 40)
WORKLOADS = ("libquantum", "fotonik", "bwaves")


def test_ablation_mshr(benchmark, runner, report):
    def build():
        rows = []
        data = {}
        for n in MSHRS:
            machine = replace(
                BASELINE, l1d=replace(BASELINE.l1d, mshrs=n),
                name=f"baseline-mshr{n}")
            ipc_ooo, ipc_rar, mlp_ooo, mlp_rar = [], [], [], []
            for name in WORKLOADS:
                w = next(x for x in MEMORY_WORKLOADS if x.name == name)
                ooo = runner.run(w, machine, "OOO")
                rar = runner.run(w, machine, "RAR")
                ipc_ooo.append(ooo.ipc)
                ipc_rar.append(rar.ipc)
                mlp_ooo.append(ooo.mlp)
                mlp_rar.append(rar.mlp)
            data[n] = (hmean(ipc_ooo), hmean(ipc_rar),
                       hmean(mlp_ooo), hmean(mlp_rar))
            rows.append([n, *data[n]])
        table = format_table(
            ["MSHRs", "OoO IPC", "RAR IPC", "OoO MLP", "RAR MLP"], rows)
        return table, data

    table, data = once(benchmark, build)
    report("ablation_mshr", table)

    # MLP is MSHR-bounded: more MSHRs, more observable parallelism.
    assert data[40][3] > data[8][3]
    # RAR exploits the extra headroom at least as well as the baseline.
    rar_gain = data[40][1] / data[8][1]
    ooo_gain = data[40][0] / data[8][0]
    assert rar_gain > ooo_gain * 0.9
    # With very few MSHRs both converge (nothing to overlap).
    assert data[8][1] < data[40][1] * 1.1 or data[8][1] <= data[40][1]
