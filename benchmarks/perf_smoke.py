"""Perf smoke: short host-performance benchmarks, appended to JSON logs.

Run from the repo root (CI does this on every push)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_obs.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --sweep \
        [--sweep-out BENCH_refactor.json]

The default mode appends one record with the simulated-KIPS throughput
of the standard (mcf, baseline, RAR) point so the host-performance
trajectory of the simulator is tracked over time. ``--sweep`` instead
times a small workload x policy matrix twice — serial, then with
``jobs=2`` + shared-warmup checkpoint forking — and appends the
wall-clock speedup to ``BENCH_refactor.json``. Both files are JSON
lists of records.
"""

import argparse
import json
import os
import platform
import sys
import time


def _append_record(path: str, record: dict) -> int:
    history = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                history = json.load(f)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    with open(path, "w") as f:
        json.dump(history, f, indent=1)
        f.write("\n")
    return len(history)


def _base_record() -> dict:
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "host": platform.machine(),
    }


def run_kips_smoke(args) -> int:
    from repro import BASELINE, Telemetry, simulate

    tele = Telemetry(profile=True)
    result = simulate(args.workload, BASELINE, args.policy,
                      instructions=args.instructions, warmup=args.warmup,
                      telemetry=tele)
    prof = tele.profiler
    record = _base_record()
    record.update({
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "kips": round(prof.kips, 2),
        "cycles_per_second": round(prof.cycles_per_second, 1),
        "wall_seconds": round(prof.wall_seconds, 3),
    })
    n = _append_record(args.out, record)
    print(f"{record['kips']} KIPS ({record['cycles_per_second']} cycles/s) "
          f"-> {args.out} ({n} records)")
    return 0


def run_sweep_smoke(args) -> int:
    """Time the same small matrix serial vs parallel+shared-warmup.

    The speedup combines two effects: warmup shared across policies
    (visible even on one CPU) and group-level multiprocessing (scales
    with cores; the record carries ``cpus`` for context).
    """
    from repro import BASELINE
    from repro.analysis.experiments import ExperimentRunner

    workloads = ["mcf", "lbm", "x264", "namd"]
    policies = ["OOO", "RAR"]

    def timed(**matrix_kwargs):
        runner = ExperimentRunner(instructions=args.instructions,
                                  warmup=args.warmup)
        t0 = time.perf_counter()
        runner.run_matrix(workloads, BASELINE, policies, **matrix_kwargs)
        return time.perf_counter() - t0

    serial_s = timed()
    parallel_s = timed(jobs=args.jobs, share_warmup=True)
    record = _base_record()
    record.update({
        "cpus": os.cpu_count(),
        "workloads": workloads,
        "policies": policies,
        "instructions": args.instructions,
        "warmup": args.warmup,
        "jobs": args.jobs,
        "share_warmup": True,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
    })
    n = _append_record(args.sweep_out, record)
    print(f"sweep {len(workloads)}x{len(policies)}: serial "
          f"{record['serial_s']}s, jobs={args.jobs}+shared-warmup "
          f"{record['parallel_s']}s, speedup {record['speedup']}x "
          f"-> {args.sweep_out} ({n} records)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--policy", default="RAR")
    parser.add_argument("-n", "--instructions", type=int, default=8000)
    parser.add_argument("-w", "--warmup", type=int, default=4000)
    parser.add_argument("--sweep", action="store_true",
                        help="time serial vs parallel shared-warmup sweep")
    parser.add_argument("--sweep-out", default="BENCH_refactor.json")
    parser.add_argument("-j", "--jobs", type=int, default=2,
                        help="pool size for the parallel sweep leg")
    args = parser.parse_args(argv)
    if args.sweep:
        return run_sweep_smoke(args)
    return run_kips_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
