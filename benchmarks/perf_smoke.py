"""Perf smoke: short host-performance benchmarks, appended to JSON logs.

Run from the repo root (CI does this on every push)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_obs.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --profile
    PYTHONPATH=src python benchmarks/perf_smoke.py --speed \
        [--speed-out BENCH_speed.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --sweep \
        [--sweep-out BENCH_refactor.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --diff 5

History bookkeeping lives in :mod:`repro.obs.bench`: every record is
stamped with timestamp/python/host/git SHA, appended atomically, and
gated against the previous committed entry — the default mode and
``--speed`` fail on a >20% KIPS regression (``bench.REGRESSION_FLOOR``).

The default mode appends one record with the simulated-KIPS throughput
of the standard (mcf, baseline, RAR) point so the host-performance
trajectory of the simulator is tracked over time. ``--profile`` runs the
same point under cProfile and prints the top-25 functions by tottime
(no record is appended — profiling overhead would pollute the
trajectory); every perf PR should start from that table (see
docs/performance.md). ``--speed`` times the 2x2 {mcf, lbm} x {OOO, RAR}
matrix and appends the per-point KIPS to ``BENCH_speed.json``.
``--sweep`` times a small workload x policy matrix twice — serial, then
with ``jobs=2`` + shared-warmup checkpoint forking — with the parallel
leg recording a run ledger, whose aggregated per-point KIPS ride along
in the appended record. ``--diff N`` renders the last N entries of a
history side by side. All files are JSON lists of records.
"""

import argparse
import os
import sys
import time


def run_kips_smoke(args) -> int:
    from repro import BASELINE, Telemetry, simulate
    from repro.obs import bench

    tele = Telemetry(profile=True)
    result = simulate(args.workload, BASELINE, args.policy,
                      instructions=args.instructions, warmup=args.warmup,
                      telemetry=tele)
    prof = tele.profiler
    record = {
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "kips": round(prof.kips, 2),
        "cycles_per_second": round(prof.cycles_per_second, 1),
        "wall_seconds": round(prof.wall_seconds, 3),
    }
    n = bench.append_entry(args.out, record)
    print(f"{record['kips']} KIPS ({record['cycles_per_second']} cycles/s) "
          f"-> {args.out} ({n} records)")
    regressions = bench.check_regression(bench.load_history(args.out),
                                         fields=["kips"])
    return _report_regressions(regressions)


def _report_regressions(regressions) -> int:
    if regressions:
        print("KIPS regression vs previous committed entry:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def run_profile(args) -> int:
    """cProfile the smoke point; print the top-25 functions by tottime."""
    import cProfile
    import pstats

    from repro import BASELINE, simulate

    profile = cProfile.Profile()
    profile.enable()
    simulate(args.workload, BASELINE, args.policy,
             instructions=args.instructions, warmup=args.warmup)
    profile.disable()
    pstats.Stats(profile).sort_stats("tottime").print_stats(25)
    return 0


#: the committed-trajectory matrix timed by ``--speed``
SPEED_MATRIX = (("mcf", "OOO"), ("mcf", "RAR"), ("lbm", "OOO"), ("lbm", "RAR"))


def run_speed_matrix(args) -> int:
    """Time the 2x2 speed matrix; fail on a >20% per-point regression."""
    from repro import BASELINE, Telemetry, simulate
    from repro.obs import bench

    points = {}
    for workload, policy in SPEED_MATRIX:
        tele = Telemetry(profile=True)
        simulate(workload, BASELINE, policy,
                 instructions=args.instructions, warmup=args.warmup,
                 telemetry=tele)
        key = f"{workload}/{policy}"
        points[key] = round(tele.profiler.kips, 2)
        print(f"{key}: {points[key]} KIPS")

    record = {
        "instructions": args.instructions,
        "warmup": args.warmup,
        "points": points,
    }
    n = bench.append_entry(args.speed_out, record)
    print(f"speed matrix -> {args.speed_out} ({n} records)")
    fields = [f"points.{w}/{p}" for w, p in SPEED_MATRIX]
    regressions = bench.check_regression(bench.load_history(args.speed_out),
                                         fields=fields)
    return _report_regressions(regressions)


def run_sweep_smoke(args) -> int:
    """Time the same small matrix serial vs parallel+shared-warmup.

    The speedup combines two effects: warmup shared across policies
    (visible even on one CPU) and group-level multiprocessing (scales
    with cores; the record carries ``cpus`` for context). The parallel
    leg records a run ledger; its aggregated per-point KIPS ride along
    in the appended record so the sweep trajectory and the ledger agree
    by construction.
    """
    import tempfile

    from repro import BASELINE
    from repro.analysis.experiments import ExperimentRunner
    from repro.obs import bench
    from repro.obs.ledger import read_ledger

    workloads = ["mcf", "lbm", "x264", "namd"]
    policies = ["OOO", "RAR"]

    def timed(**matrix_kwargs):
        runner = ExperimentRunner(instructions=args.instructions,
                                  warmup=args.warmup)
        t0 = time.perf_counter()
        runner.run_matrix(workloads, BASELINE, policies, **matrix_kwargs)
        return time.perf_counter() - t0

    serial_s = timed()
    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = os.path.join(tmp, "sweep-ledger.jsonl")
        parallel_s = timed(jobs=args.jobs, share_warmup=True,
                           ledger=ledger_path)
        ledger_agg = bench.ledger_kips(read_ledger(ledger_path))
    record = {
        "cpus": os.cpu_count(),
        "workloads": workloads,
        "policies": policies,
        "instructions": args.instructions,
        "warmup": args.warmup,
        "jobs": args.jobs,
        "share_warmup": True,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "mean_kips": ledger_agg["mean_kips"],
        "points": ledger_agg["points"],
    }
    n = bench.append_entry(args.sweep_out, record)
    print(f"sweep {len(workloads)}x{len(policies)}: serial "
          f"{record['serial_s']}s, jobs={args.jobs}+shared-warmup "
          f"{record['parallel_s']}s, speedup {record['speedup']}x, "
          f"ledger mean {record['mean_kips']} KIPS "
          f"-> {args.sweep_out} ({n} records)")
    return 0


def run_diff(args) -> int:
    from repro.obs import bench

    print(bench.diff_entries(bench.load_history(args.out), n=args.diff))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--policy", default="RAR")
    parser.add_argument("-n", "--instructions", type=int, default=8000)
    parser.add_argument("-w", "--warmup", type=int, default=4000)
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the smoke point (top-25 by tottime); "
                             "appends no record")
    parser.add_argument("--speed", action="store_true",
                        help="time the {mcf,lbm} x {OOO,RAR} matrix and "
                             "fail on a >20%% per-point KIPS regression")
    parser.add_argument("--speed-out", default="BENCH_speed.json")
    parser.add_argument("--sweep", action="store_true",
                        help="time serial vs parallel shared-warmup sweep")
    parser.add_argument("--sweep-out", default="BENCH_refactor.json")
    parser.add_argument("-j", "--jobs", type=int, default=2,
                        help="pool size for the parallel sweep leg")
    parser.add_argument("--diff", type=int, metavar="N", default=0,
                        help="render the last N entries of --out and exit")
    args = parser.parse_args(argv)
    if args.diff:
        return run_diff(args)
    if args.profile:
        return run_profile(args)
    if args.speed:
        return run_speed_matrix(args)
    if args.sweep:
        return run_sweep_smoke(args)
    return run_kips_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
