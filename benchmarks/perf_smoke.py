"""Perf smoke: short host-performance benchmarks, appended to JSON logs.

Run from the repo root (CI does this on every push)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_obs.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --profile
    PYTHONPATH=src python benchmarks/perf_smoke.py --speed \
        [--speed-out BENCH_speed.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --sweep \
        [--sweep-out BENCH_refactor.json]

The default mode appends one record with the simulated-KIPS throughput
of the standard (mcf, baseline, RAR) point so the host-performance
trajectory of the simulator is tracked over time. ``--profile`` runs the
same point under cProfile and prints the top-25 functions by tottime
(no record is appended — profiling overhead would pollute the
trajectory); every perf PR should start from that table (see
docs/performance.md). ``--speed`` times the 2x2 {mcf, lbm} x {OOO, RAR}
matrix, appends the per-point KIPS to ``BENCH_speed.json`` and exits
non-zero if any point regressed more than 20% against the previous
committed entry. ``--sweep`` instead times a small workload x policy
matrix twice — serial, then with ``jobs=2`` + shared-warmup checkpoint
forking — and appends the wall-clock speedup to ``BENCH_refactor.json``.
All files are JSON lists of records.
"""

import argparse
import json
import os
import platform
import sys
import time


def _append_record(path: str, record: dict) -> int:
    history = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                history = json.load(f)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    with open(path, "w") as f:
        json.dump(history, f, indent=1)
        f.write("\n")
    return len(history)


def _base_record() -> dict:
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "host": platform.machine(),
    }


def run_kips_smoke(args) -> int:
    from repro import BASELINE, Telemetry, simulate

    tele = Telemetry(profile=True)
    result = simulate(args.workload, BASELINE, args.policy,
                      instructions=args.instructions, warmup=args.warmup,
                      telemetry=tele)
    prof = tele.profiler
    record = _base_record()
    record.update({
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "kips": round(prof.kips, 2),
        "cycles_per_second": round(prof.cycles_per_second, 1),
        "wall_seconds": round(prof.wall_seconds, 3),
    })
    n = _append_record(args.out, record)
    print(f"{record['kips']} KIPS ({record['cycles_per_second']} cycles/s) "
          f"-> {args.out} ({n} records)")
    return 0


def run_profile(args) -> int:
    """cProfile the smoke point; print the top-25 functions by tottime."""
    import cProfile
    import pstats

    from repro import BASELINE, simulate

    profile = cProfile.Profile()
    profile.enable()
    simulate(args.workload, BASELINE, args.policy,
             instructions=args.instructions, warmup=args.warmup)
    profile.disable()
    pstats.Stats(profile).sort_stats("tottime").print_stats(25)
    return 0


#: the committed-trajectory matrix timed by ``--speed``
SPEED_MATRIX = (("mcf", "OOO"), ("mcf", "RAR"), ("lbm", "OOO"), ("lbm", "RAR"))

#: a point may drop to this fraction of the previous committed entry
#: before the run fails (hosted-runner wall clocks are noisy)
REGRESSION_FLOOR = 0.8


def run_speed_matrix(args) -> int:
    """Time the 2x2 speed matrix; fail on a >20% per-point regression."""
    from repro import BASELINE, Telemetry, simulate

    history = []
    if os.path.exists(args.speed_out):
        try:
            with open(args.speed_out) as f:
                history = json.load(f)
        except (json.JSONDecodeError, OSError):
            history = []
    last = history[-1] if isinstance(history, list) and history else None

    points = {}
    for workload, policy in SPEED_MATRIX:
        tele = Telemetry(profile=True)
        simulate(workload, BASELINE, policy,
                 instructions=args.instructions, warmup=args.warmup,
                 telemetry=tele)
        key = f"{workload}/{policy}"
        points[key] = round(tele.profiler.kips, 2)
        print(f"{key}: {points[key]} KIPS")

    record = _base_record()
    record.update({
        "instructions": args.instructions,
        "warmup": args.warmup,
        "points": points,
    })
    n = _append_record(args.speed_out, record)
    print(f"speed matrix -> {args.speed_out} ({n} records)")

    regressions = []
    if last is not None and isinstance(last.get("points"), dict):
        for key, kips in points.items():
            ref = last["points"].get(key)
            if ref and kips < REGRESSION_FLOOR * ref:
                regressions.append(
                    f"{key}: {kips} KIPS < {REGRESSION_FLOOR:.0%} of the "
                    f"previous committed {ref} KIPS")
    if regressions:
        print("KIPS regression vs previous committed entry:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def run_sweep_smoke(args) -> int:
    """Time the same small matrix serial vs parallel+shared-warmup.

    The speedup combines two effects: warmup shared across policies
    (visible even on one CPU) and group-level multiprocessing (scales
    with cores; the record carries ``cpus`` for context).
    """
    from repro import BASELINE
    from repro.analysis.experiments import ExperimentRunner

    workloads = ["mcf", "lbm", "x264", "namd"]
    policies = ["OOO", "RAR"]

    def timed(**matrix_kwargs):
        runner = ExperimentRunner(instructions=args.instructions,
                                  warmup=args.warmup)
        t0 = time.perf_counter()
        runner.run_matrix(workloads, BASELINE, policies, **matrix_kwargs)
        return time.perf_counter() - t0

    serial_s = timed()
    parallel_s = timed(jobs=args.jobs, share_warmup=True)
    record = _base_record()
    record.update({
        "cpus": os.cpu_count(),
        "workloads": workloads,
        "policies": policies,
        "instructions": args.instructions,
        "warmup": args.warmup,
        "jobs": args.jobs,
        "share_warmup": True,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
    })
    n = _append_record(args.sweep_out, record)
    print(f"sweep {len(workloads)}x{len(policies)}: serial "
          f"{record['serial_s']}s, jobs={args.jobs}+shared-warmup "
          f"{record['parallel_s']}s, speedup {record['speedup']}x "
          f"-> {args.sweep_out} ({n} records)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--policy", default="RAR")
    parser.add_argument("-n", "--instructions", type=int, default=8000)
    parser.add_argument("-w", "--warmup", type=int, default=4000)
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the smoke point (top-25 by tottime); "
                             "appends no record")
    parser.add_argument("--speed", action="store_true",
                        help="time the {mcf,lbm} x {OOO,RAR} matrix and "
                             "fail on a >20%% per-point KIPS regression")
    parser.add_argument("--speed-out", default="BENCH_speed.json")
    parser.add_argument("--sweep", action="store_true",
                        help="time serial vs parallel shared-warmup sweep")
    parser.add_argument("--sweep-out", default="BENCH_refactor.json")
    parser.add_argument("-j", "--jobs", type=int, default=2,
                        help="pool size for the parallel sweep leg")
    args = parser.parse_args(argv)
    if args.profile:
        return run_profile(args)
    if args.speed:
        return run_speed_matrix(args)
    if args.sweep:
        return run_sweep_smoke(args)
    return run_kips_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
