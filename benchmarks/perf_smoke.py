"""Perf smoke: one short telemetry-profiled run, appended to BENCH_obs.json.

Run from the repo root (CI does this on every push)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_obs.json]

Appends one record with the simulated-KIPS throughput of the standard
(mcf, baseline, RAR) point so the host-performance trajectory of the
simulator is tracked over time. The file is a JSON list of records.
"""

import argparse
import json
import os
import platform
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--policy", default="RAR")
    parser.add_argument("-n", "--instructions", type=int, default=8000)
    parser.add_argument("-w", "--warmup", type=int, default=4000)
    args = parser.parse_args(argv)

    from repro import BASELINE, Telemetry, simulate

    tele = Telemetry(profile=True)
    result = simulate(args.workload, BASELINE, args.policy,
                      instructions=args.instructions, warmup=args.warmup,
                      telemetry=tele)
    prof = tele.profiler
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "kips": round(prof.kips, 2),
        "cycles_per_second": round(prof.cycles_per_second, 1),
        "wall_seconds": round(prof.wall_seconds, 3),
        "python": platform.python_version(),
        "host": platform.machine(),
    }
    history = []
    if os.path.exists(args.out):
        try:
            with open(args.out) as f:
                history = json.load(f)
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = []
    history.append(record)
    with open(args.out, "w") as f:
        json.dump(history, f, indent=1)
        f.write("\n")
    print(f"{record['kips']} KIPS ({record['cycles_per_second']} cycles/s) "
          f"-> {args.out} ({len(history)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
