"""Perf smoke: short host-performance benchmarks, appended to JSON logs.

Run from the repo root (CI does this on every push)::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_obs.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --profile
    PYTHONPATH=src python benchmarks/perf_smoke.py --speed \
        [--speed-out BENCH_speed.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --sweep \
        [--sweep-out BENCH_refactor.json]
    PYTHONPATH=src python benchmarks/perf_smoke.py --diff 5

History bookkeeping lives in :mod:`repro.obs.bench`: every record is
stamped with timestamp/python/host/git SHA, appended atomically, and
gated against the previous committed entry — the default mode and
``--speed`` fail on a >20% KIPS regression (``bench.REGRESSION_FLOOR``).

The default mode appends one record with the simulated-KIPS throughput
of the standard (mcf, baseline, RAR) point so the host-performance
trajectory of the simulator is tracked over time. ``--profile`` runs the
same point under cProfile and prints the top-25 functions by tottime
(no record is appended — profiling overhead would pollute the
trajectory); every perf PR should start from that table (see
docs/performance.md). ``--speed`` times the 2x2 {mcf, lbm} x {OOO, RAR}
matrix plus the fast-warmup legs of the RAR points, appends the
per-point KIPS to ``BENCH_speed.json``, and times a detailed-vs-fast
warmup of the standard point — failing unless the fast engine clears
``WARMUP_SPEEDUP_FLOOR``. ``--sweep`` times a small workload x policy
matrix serially and then across the ``JOBS_CURVE`` pool sizes (each
parallel leg uses shared-warmup checkpoint forking and records a run
ledger, whose aggregated per-point KIPS ride along in the appended
record). ``--diff N`` renders the last N entries of a history side by
side. All files are JSON lists of records.
"""

import argparse
import os
import sys
import time


def run_kips_smoke(args) -> int:
    from repro import BASELINE, Telemetry, simulate
    from repro.obs import bench

    tele = Telemetry(profile=True)
    result = simulate(args.workload, BASELINE, args.policy,
                      instructions=args.instructions, warmup=args.warmup,
                      telemetry=tele)
    prof = tele.profiler
    record = {
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 4),
        "kips": round(prof.kips, 2),
        "cycles_per_second": round(prof.cycles_per_second, 1),
        "wall_seconds": round(prof.wall_seconds, 3),
    }
    n = bench.append_entry(args.out, record)
    print(f"{record['kips']} KIPS ({record['cycles_per_second']} cycles/s) "
          f"-> {args.out} ({n} records)")
    regressions = bench.check_regression(bench.load_history(args.out),
                                         fields=["kips"])
    return _report_regressions(regressions)


def _report_regressions(regressions) -> int:
    if regressions:
        print("KIPS regression vs previous committed entry:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


def run_profile(args) -> int:
    """cProfile the smoke point; print the top-25 functions by tottime."""
    import cProfile
    import pstats

    from repro import BASELINE, simulate

    profile = cProfile.Profile()
    profile.enable()
    simulate(args.workload, BASELINE, args.policy,
             instructions=args.instructions, warmup=args.warmup)
    profile.disable()
    pstats.Stats(profile).sort_stats("tottime").print_stats(25)
    return 0


#: the committed-trajectory matrix timed by ``--speed``
SPEED_MATRIX = (("mcf", "OOO"), ("mcf", "RAR"), ("lbm", "OOO"), ("lbm", "RAR"))

#: points also timed end-to-end from a fast-warmed checkpoint; their
#: KIPS join the regression gate under a ``+wm:fast`` suffix (matching
#: the run-cache variant tag)
SPEED_MATRIX_FAST = (("mcf", "RAR"), ("lbm", "RAR"))

#: warmup region used for the detailed-vs-fast warmup timing leg. Fixed
#: (rather than --warmup) so per-checkpoint fixed costs — trace build,
#: state capture — don't dominate the measurement; the floor below is
#: asserted where the warmup region is long enough to mean something.
WARMUP_SPEEDUP_W = 20_000

#: minimum acceptable warmup-phase speedup of fast over detailed mode
WARMUP_SPEEDUP_FLOOR = 5.0


def _time_warmup_speedup(workload: str, policy: str) -> dict:
    """Time warm_checkpoint in both modes; return the speedup record."""
    from repro import BASELINE
    from repro.checkpoint import warm_checkpoint

    walls = {}
    for mode in ("detailed", "fast"):
        t0 = time.perf_counter()
        warm_checkpoint(workload, BASELINE, policy,
                        warmup=WARMUP_SPEEDUP_W, warmup_mode=mode)
        walls[mode] = time.perf_counter() - t0
    return {
        "workload": workload,
        "policy": policy,
        "warmup": WARMUP_SPEEDUP_W,
        "detailed_s": round(walls["detailed"], 3),
        "fast_s": round(walls["fast"], 3),
        "speedup": round(walls["detailed"] / walls["fast"], 2)
        if walls["fast"] else 0.0,
    }


def run_speed_matrix(args) -> int:
    """Time the speed matrix; fail on a >20% per-point regression.

    Detailed-warmup points run through plain ``simulate()``; the
    ``SPEED_MATRIX_FAST`` points measure the same region from a
    fast-warmed checkpoint. A separate leg times the warmup phase alone
    in both modes and fails unless fast warmup clears
    ``WARMUP_SPEEDUP_FLOOR`` (the ≥5x target in docs/performance.md).
    """
    from repro import BASELINE, Telemetry, simulate
    from repro.checkpoint import simulate_from, warm_checkpoint
    from repro.obs import bench

    points = {}
    for workload, policy in SPEED_MATRIX:
        tele = Telemetry(profile=True)
        simulate(workload, BASELINE, policy,
                 instructions=args.instructions, warmup=args.warmup,
                 telemetry=tele)
        key = f"{workload}/{policy}"
        points[key] = round(tele.profiler.kips, 2)
        print(f"{key}: {points[key]} KIPS")
    for workload, policy in SPEED_MATRIX_FAST:
        ck = warm_checkpoint(workload, BASELINE, policy,
                             warmup=args.warmup, warmup_mode="fast")
        tele = Telemetry(profile=True)
        simulate_from(ck, instructions=args.instructions, telemetry=tele)
        key = f"{workload}/{policy}+wm:fast"
        points[key] = round(tele.profiler.kips, 2)
        print(f"{key}: {points[key]} KIPS")

    warmup_speedup = _time_warmup_speedup(*SPEED_MATRIX_FAST[0])
    print(f"warmup {warmup_speedup['workload']}/{warmup_speedup['policy']} "
          f"w={warmup_speedup['warmup']}: detailed "
          f"{warmup_speedup['detailed_s']}s, fast "
          f"{warmup_speedup['fast_s']}s "
          f"({warmup_speedup['speedup']}x speedup)")

    record = {
        "instructions": args.instructions,
        "warmup": args.warmup,
        "points": points,
        "warmup_speedup": warmup_speedup,
    }
    n = bench.append_entry(args.speed_out, record)
    print(f"speed matrix -> {args.speed_out} ({n} records)")
    fields = [f"points.{w}/{p}" for w, p in SPEED_MATRIX]
    fields += [f"points.{w}/{p}+wm:fast" for w, p in SPEED_MATRIX_FAST]
    regressions = bench.check_regression(bench.load_history(args.speed_out),
                                         fields=fields)
    if warmup_speedup["speedup"] < WARMUP_SPEEDUP_FLOOR:
        regressions = list(regressions) + [
            f"warmup_speedup: {warmup_speedup['speedup']}x < "
            f"{WARMUP_SPEEDUP_FLOOR}x floor (fast vs detailed warmup)"]
    return _report_regressions(regressions)


#: pool sizes swept by ``--sweep``; the curve shows where group-level
#: multiprocessing saturates on the host (the record carries ``cpus``)
JOBS_CURVE = (1, 2, 4, 8)


def run_sweep_smoke(args) -> int:
    """Time the same small matrix serially, then across ``JOBS_CURVE``.

    Each parallel leg uses shared-warmup checkpoint forking, so its
    speedup over serial combines two effects: warmup shared across
    policies (visible even at ``jobs=1``) and multiprocessing (scales
    with cores until the per-group work runs out). Every parallel leg
    records a run ledger; the ``--jobs`` leg's aggregated per-point
    KIPS ride along in the appended record so the sweep trajectory and
    the ledger agree by construction.
    """
    import tempfile

    from repro import BASELINE
    from repro.analysis.experiments import ExperimentRunner
    from repro.obs import bench
    from repro.obs.ledger import read_ledger

    workloads = ["mcf", "lbm", "x264", "namd"]
    policies = ["OOO", "RAR"]

    def timed(**matrix_kwargs):
        runner = ExperimentRunner(instructions=args.instructions,
                                  warmup=args.warmup)
        t0 = time.perf_counter()
        runner.run_matrix(workloads, BASELINE, policies, **matrix_kwargs)
        return time.perf_counter() - t0

    serial_s = timed()
    print(f"serial: {serial_s:.3f}s")
    jobs_curve = {}
    ledger_agg = None
    curve = list(JOBS_CURVE)
    if args.jobs not in curve:
        curve.append(args.jobs)
    for jobs in curve:
        with tempfile.TemporaryDirectory() as tmp:
            ledger_path = os.path.join(tmp, "sweep-ledger.jsonl")
            wall = timed(jobs=jobs, share_warmup=True, ledger=ledger_path)
            leg_agg = bench.ledger_kips(read_ledger(ledger_path))
        jobs_curve[str(jobs)] = {
            "wall_s": round(wall, 3),
            "speedup": round(serial_s / wall, 3) if wall else 0.0,
            "mean_kips": leg_agg["mean_kips"],
        }
        print(f"jobs={jobs}: {jobs_curve[str(jobs)]['wall_s']}s "
              f"({jobs_curve[str(jobs)]['speedup']}x)")
        if jobs == args.jobs:
            ledger_agg = leg_agg
    headline = jobs_curve[str(args.jobs)]
    record = {
        "cpus": os.cpu_count(),
        "workloads": workloads,
        "policies": policies,
        "instructions": args.instructions,
        "warmup": args.warmup,
        "jobs": args.jobs,
        "share_warmup": True,
        "serial_s": round(serial_s, 3),
        "parallel_s": headline["wall_s"],
        "speedup": headline["speedup"],
        "jobs_curve": jobs_curve,
        "mean_kips": ledger_agg["mean_kips"],
        "points": ledger_agg["points"],
    }
    n = bench.append_entry(args.sweep_out, record)
    print(f"sweep {len(workloads)}x{len(policies)}: serial "
          f"{record['serial_s']}s, jobs={args.jobs}+shared-warmup "
          f"{record['parallel_s']}s, speedup {record['speedup']}x, "
          f"ledger mean {record['mean_kips']} KIPS "
          f"-> {args.sweep_out} ({n} records)")
    return 0


def run_diff(args) -> int:
    from repro.obs import bench

    print(bench.diff_entries(bench.load_history(args.out), n=args.diff))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--workload", default="mcf")
    parser.add_argument("--policy", default="RAR")
    parser.add_argument("-n", "--instructions", type=int, default=8000)
    parser.add_argument("-w", "--warmup", type=int, default=4000)
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the smoke point (top-25 by tottime); "
                             "appends no record")
    parser.add_argument("--speed", action="store_true",
                        help="time the {mcf,lbm} x {OOO,RAR} matrix and "
                             "fail on a >20%% per-point KIPS regression")
    parser.add_argument("--speed-out", default="BENCH_speed.json")
    parser.add_argument("--sweep", action="store_true",
                        help="time serial vs parallel shared-warmup sweep")
    parser.add_argument("--sweep-out", default="BENCH_refactor.json")
    parser.add_argument("-j", "--jobs", type=int, default=2,
                        help="pool size for the parallel sweep leg")
    parser.add_argument("--diff", type=int, metavar="N", default=0,
                        help="render the last N entries of --out and exit")
    args = parser.parse_args(argv)
    if args.diff:
        return run_diff(args)
    if args.profile:
        return run_profile(args)
    if args.speed:
        return run_speed_matrix(args)
    if args.sweep:
        return run_sweep_smoke(args)
    return run_kips_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
