"""Workload-set acceptance: the paper's MPKI classification rule.

"All memory-intensive benchmarks have more than 8 LLC misses per thousand
instructions (MPKI > 8) on the baseline OoO core. All benchmarks with an
MPKI of less than 8 [...] are considered to be compute-intensive."

This bench characterises every catalog workload on the baseline and
asserts the classification holds, and prints the characteristics table
(IPC, MPKI, MLP, branch mispredicts) used to sanity-check the synthetic
substitutes against their SPEC namesakes.
"""

from conftest import once

from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import COMPUTE_WORKLOADS, MEMORY_WORKLOADS


def test_workload_characteristics(benchmark, runner, report):
    def build():
        rows = []
        mpki = {}
        for w in MEMORY_WORKLOADS + COMPUTE_WORKLOADS:
            r = runner.run(w, BASELINE, "OOO")
            mpki[w.name] = r.mpki
            rows.append([
                w.name, "mem" if w.memory_intensive else "cmp",
                r.ipc, r.mpki, r.mlp,
                1000.0 * r.branch_mispredicts / r.instructions,
            ])
        table = format_table(
            ["benchmark", "set", "IPC", "LLC MPKI", "MLP",
             "mispredicts/kinst"], rows)
        return table, mpki

    table, mpki = once(benchmark, build)
    report("workload_characteristics", table)

    for w in MEMORY_WORKLOADS:
        assert mpki[w.name] > 8.0, \
            f"{w.name}: memory-intensive benchmarks need MPKI > 8"
    for w in COMPUTE_WORKLOADS:
        assert mpki[w.name] < 8.0, \
            f"{w.name}: compute-intensive benchmarks need MPKI < 8"
    # The per-benchmark character must be diverse, not one template:
    # pointer chasers show low MLP, streamers high MLP.
    low_mlp = runner.run(
        next(w for w in MEMORY_WORKLOADS if w.name == "mcf"),
        BASELINE, "OOO").mlp
    high_mlp = runner.run(
        next(w for w in MEMORY_WORKLOADS if w.name == "fotonik"),
        BASELINE, "OOO").mlp
    assert high_mlp > 2 * low_mlp
