"""Ablation — the early-start countdown timer threshold.

The paper implements early start with a 4-bit countdown timer initialised
to 15, arguing that a load resident at the ROB head for >14 cycles is
likely an LLC miss (L1/L2/L3 tag latencies being 1/3/10). This ablation
sweeps the threshold: very small values trigger runahead on L2/L3-bound
stalls too (more intervals, more overhead), very large values converge
towards late-start behaviour.
"""

from dataclasses import replace

from conftest import once

from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.workloads.catalog import MEMORY_WORKLOADS

THRESHOLDS = (3, 7, 15, 31, 63)
#: subset keeps the sweep affordable; one stream-, one chase-, one IQ-bound
WORKLOADS = ("libquantum", "mcf", "lbm")


def test_ablation_timer(benchmark, runner, report):
    def build():
        rows = []
        by_threshold = {}
        for t in THRESHOLDS:
            machine = BASELINE.with_core(
                replace(BASELINE.core, head_timer_init=t),
                name=f"baseline-timer{t}")
            mttfs, ipcs, trigs = [], [], []
            for name in WORKLOADS:
                w = next(x for x in MEMORY_WORKLOADS if x.name == name)
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, machine, "RAR")
                mttfs.append(r.mttf_rel(base))
                ipcs.append(r.ipc_rel(base))
                trigs.append(r.runahead_triggers)
            by_threshold[t] = (gmean(mttfs), hmean(ipcs))
            rows.append([t, gmean(mttfs), hmean(ipcs), amean(trigs)])
        table = format_table(
            ["timer init", "MTTF_rel", "IPC_rel", "mean intervals"], rows)
        return table, by_threshold

    table, by_threshold = once(benchmark, build)
    report("ablation_timer", table)

    # Every threshold must keep RAR's dual win.
    for t, (mttf, ipc) in by_threshold.items():
        assert mttf > 1.5, f"timer={t}"
        assert ipc > 0.95, f"timer={t}"
    # The paper's 15 is a sane middle point: not dominated on both axes
    # by the extremes.
    m15, i15 = by_threshold[15]
    for t in (3, 63):
        m, i = by_threshold[t]
        assert not (m > m15 * 1.15 and i > i15 * 1.05), \
            f"timer={t} dominates the paper's choice"
