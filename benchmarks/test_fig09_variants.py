"""Figure 9 (+ Table IV) — systematic runahead design-space exploration.

All six runahead variants (TR, TR-EARLY, PRE, PRE-EARLY, RAR-LATE, RAR)
plus FLUSH, as memory-set means of MTTF, normalised ABC and relative IPC.
Paper shape: the flushing variants (TR*, RAR*) dominate reliability;
the lean variants (PRE*, RAR*) dominate performance; RAR is the only point
strong on both; PRE-EARLY does *not* improve reliability over PRE because
it never flushes the vulnerable state.
"""

from conftest import once

from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.core.runahead import ALL_POLICIES
from repro.workloads.catalog import MEMORY_WORKLOADS

VARIANTS = ("FLUSH", "TR", "TR-EARLY", "PRE", "PRE-EARLY", "RAR-LATE", "RAR")
_AXES = {p.name: p for p in ALL_POLICIES}


def test_fig09_variants(benchmark, runner, report):
    def build():
        agg = {}
        triggers = {}
        for pol in VARIANTS:
            mttfs, abcs, ipcs, trig = [], [], [], 0
            for w in MEMORY_WORKLOADS:
                base = runner.run(w, BASELINE, "OOO")
                r = runner.run(w, BASELINE, pol)
                mttfs.append(r.mttf_rel(base))
                abcs.append(r.abc_rel(base))
                ipcs.append(r.ipc_rel(base))
                trig += r.runahead_triggers
            agg[pol] = (gmean(mttfs), amean(abcs), hmean(ipcs))
            triggers[pol] = trig
        rows = []
        for pol in VARIANTS:
            p = _AXES[pol]
            axes = "".join((
                "E" if getattr(p, "early", False) else "-",
                "F" if getattr(p, "flush_at_exit", False) or pol == "FLUSH"
                else "-",
                "L" if getattr(p, "lean", False) else "-",
            ))
            rows.append([pol, axes, *agg[pol], triggers[pol]])
        table = format_table(
            ["variant", "axes(EFL)", "MTTF", "ABC_rel", "IPC_rel",
             "runahead intervals"], rows)
        return table, agg, triggers

    table, agg, triggers = once(benchmark, build)
    report("fig09_variants", table)

    mttf = {p: agg[p][0] for p in VARIANTS}
    abc = {p: agg[p][1] for p in VARIANTS}
    ipc = {p: agg[p][2] for p in VARIANTS}

    # Flushing at runahead exit is what buys reliability:
    for flushing in ("TR", "TR-EARLY", "RAR-LATE", "RAR"):
        assert mttf[flushing] > 2.0, flushing
        assert abc[flushing] < 0.5, flushing
    # ...while keeping the window (PRE*) does not:
    assert abc["PRE"] > 0.55
    assert abc["PRE-EARLY"] > 0.5, \
        "early start without flushing barely moves ABC (paper §V-D)"
    # Lean execution is what buys performance:
    assert ipc["PRE"] > ipc["TR"]
    assert ipc["RAR"] > ipc["TR-EARLY"]
    # RAR: strongest reliability among high-performance points.
    assert abc["RAR"] <= min(abc["PRE"], abc["PRE-EARLY"])
    assert ipc["RAR"] > 1.05
