"""Figure 3 — ABC stacks per structure (ROB/IQ/LQ/SQ/RF/FU).

One stacked bar per memory-intensive benchmark plus the compute-set
average. The paper's findings: memory-intensive workloads expose far more
vulnerable state than compute-intensive ones, and the ROB holds the bulk
of it, followed by IQ/LQ/RF.
"""

from conftest import once

from repro.analysis.stats import amean
from repro.analysis.tables import format_table
from repro.common.params import BASELINE
from repro.reliability.ace import STRUCTURES
from repro.workloads.catalog import COMPUTE_WORKLOADS, MEMORY_WORKLOADS


def test_fig03_abc_stacks(benchmark, runner, report):
    def build():
        per_bench = {}
        for w in MEMORY_WORKLOADS + COMPUTE_WORKLOADS:
            r = runner.run(w, BASELINE, "OOO")
            # ABC per kilo-instruction so bars are comparable across runs.
            per_bench[w.name] = {
                s: r.abc[s] / (r.instructions / 1000.0) for s in STRUCTURES
            }
        cmp_avg = {
            s: amean([per_bench[w.name][s] for w in COMPUTE_WORKLOADS])
            for s in STRUCTURES
        }
        rows = [["compute-avg"] + [cmp_avg[s] for s in STRUCTURES]
                + [sum(cmp_avg.values())]]
        for w in MEMORY_WORKLOADS:
            stack = per_bench[w.name]
            rows.append([w.name] + [stack[s] for s in STRUCTURES]
                        + [sum(stack.values())])
        table = format_table(
            ["benchmark"] + list(STRUCTURES) + ["total"], rows, precision=0)
        return table, per_bench, cmp_avg

    table, per_bench, cmp_avg = once(benchmark, build)
    report("fig03_abc_stacks", table)

    mem_totals = [sum(per_bench[w.name].values()) for w in MEMORY_WORKLOADS]
    cmp_total = sum(cmp_avg.values())
    # Memory-intensive workloads expose much more vulnerable state.
    assert amean(mem_totals) > 3 * cmp_total
    # The reorder buffer is responsible for the bulk of the exposure.
    for w in MEMORY_WORKLOADS:
        stack = per_bench[w.name]
        assert stack["rob"] == max(stack.values()), w.name
        assert stack["rob"] > 0.4 * sum(stack.values()), w.name
