"""Warm-state checkpointing: capture a warmed core once, fork N runs.

Every figure in the paper compares several policies on the *same*
workload with identical warmup. :func:`warm_checkpoint` runs the warmup
once and captures the complete mutable state of the core — memory
hierarchy contents, branch predictor tables, SST, ACE accounting, every
pipeline component's registers and the in-flight window — into a
:class:`Checkpoint`. :func:`simulate_from` then restores that state into
a freshly constructed core and runs only the measurement window.

Bit-identity contract: forking a checkpoint warmed under policy P and
measuring under the same policy P is **bit-identical** to a cold
``simulate()`` with the same seed/warmup (the regression tests assert
this for every policy). Measuring a *different* policy than the one that
warmed the checkpoint is an explicit approximation — warmup behaviour
(runahead prefetches, predictor training) differs per policy — used by
``ExperimentRunner.run_matrix(share_warmup=True)``, which tags cached
results accordingly.

Implementation notes (see docs/architecture.md for the full story):

- Capture is one ``copy.deepcopy`` of all structures + component states
  with a single shared memo, so cross-structure references (the same
  ``DynUop`` sitting in the ROB, the IQ and the event heap; the PRDQ's
  register-file pointer; ACE's bound ``FuPool.exec_cycles`` method)
  stay consistent inside the blob.
- The trace, machine and policy are *seeded into the memo* and shared,
  not copied: ``Trace`` lazily buffers a generator (not copyable, and
  append-only deterministic, so sharing is safe in-process) and the
  params are frozen dataclasses.
- Restore never replaces a structure object: each live structure's
  ``__dict__`` is cleared and refilled in place, with the fork's memo
  pre-seeded ``{id(blob_structure): live_structure}`` so references
  between structures resolve to the live objects. In-place restore is
  what keeps the components' cached references and the stats registry's
  bound getters valid — the registry is never copied; a fresh core's
  registry reads the restored objects.
"""

import copy
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.common.params import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    MachineParams,
)
from repro.core.core import OutOfOrderCore
from repro.core.fastfwd import (
    DEFAULT_WARMUP_MODE, detailed_tail, functional_warmup,
    validate_warmup_mode,
)
from repro.core.runahead import OOO, RunaheadPolicy, get_policy
from repro.isa.trace import Trace
from repro.sim import SimResult, _delta_result, _snapshot
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_workload

__all__ = ["Checkpoint", "CheckpointCache", "process_checkpoint_cache",
           "warm_checkpoint", "simulate_from"]

#: Core attributes holding the shared hardware structures whose full
#: ``__dict__`` is captured and restored in place.
CORE_STRUCTURES = (
    "mem", "predictor", "btb", "frontend", "wrong_path_src", "rob", "iq",
    "lsq", "regs", "fus", "sst", "prdq", "ace",
)


@dataclass
class Checkpoint:
    """Deep-copied image of a warmed core, forkable into many runs.

    Holds everything :func:`simulate_from` needs to reconstruct the
    moment right after warmup: the run coordinates (workload/machine/
    policy/warmup/seed), the shared trace, and the state blob. The blob
    is private — each fork deep-copies it again, so one checkpoint can
    seed any number of runs without cross-contamination.

    Not picklable (the trace buffers a generator): multiprocess sweeps
    create checkpoints inside each worker rather than shipping them.
    """

    workload: str
    machine: MachineParams
    policy: RunaheadPolicy          # the policy warmup ran under
    warmup: int
    seed: Optional[int]
    record_ace_intervals: bool
    trace: Trace                    # shared, append-only — never copied
    warmup_mode: str = DEFAULT_WARMUP_MODE  # how warmup was produced
    _blob: Dict[str, Any] = field(repr=False, default_factory=dict)

    @classmethod
    def capture(cls, core: OutOfOrderCore, workload: str, warmup: int,
                seed: Optional[int],
                warmup_mode: str = DEFAULT_WARMUP_MODE) -> "Checkpoint":
        """Snapshot a live core's complete mutable state."""
        raw = {
            "structures": {name: getattr(core, name)
                           for name in CORE_STRUCTURES},
            "components": {comp.name: comp.snapshot_state()
                           for comp in core.components},
            "stats": core.stats.snapshot(),
        }
        memo: Dict[int, Any] = {
            id(core.trace): core.trace,
            id(core.machine): core.machine,
            id(core.policy): core.policy,
        }
        # Observer hooks are wiring, not state: never capture them.
        if core.mem.observer is not None:
            memo[id(core.mem.observer)] = None
        if core.observer is not None:
            memo[id(core.observer)] = None
        blob = copy.deepcopy(raw, memo)
        return cls(workload=workload, machine=core.machine,
                   policy=core.policy, warmup=warmup, seed=seed,
                   record_ace_intervals=core.record_ace_intervals,
                   trace=core.trace,
                   warmup_mode=validate_warmup_mode(warmup_mode),
                   _blob=blob)

    def restore_into(self, core: OutOfOrderCore) -> None:
        """Load this checkpoint's state into a freshly built core.

        The core must have been constructed with this checkpoint's
        machine and trace. All structure objects are mutated in place so
        the core's component bindings and registry getters stay valid.
        """
        blob = self._blob
        # One memo per fork: every blob-side object maps to the live
        # object that is being refilled, so any reference from one
        # structure into another (prdq._regs, ace's bound FU method,
        # DynUops shared between ROB / IQ / event heap) lands on the
        # live instance — and shared DynUop identity survives the fork.
        memo: Dict[int, Any] = {
            id(self.trace): self.trace,
            id(self.machine): self.machine,
            id(self.policy): self.policy,
        }
        for name in CORE_STRUCTURES:
            memo[id(blob["structures"][name])] = getattr(core, name)

        for name in CORE_STRUCTURES:
            live = getattr(core, name)
            state = {k: copy.deepcopy(v, memo)
                     for k, v in blob["structures"][name].__dict__.items()}
            live.__dict__.clear()
            live.__dict__.update(state)
        for comp in core.components:
            comp.restore_state(copy.deepcopy(blob["components"][comp.name],
                                             memo))
        for attr, value in blob["stats"].items():
            setattr(core.stats, attr, value)

    def fork(self, policy: Union[RunaheadPolicy, str, None] = None,
             record_ace_intervals: Optional[bool] = None,
             validate: bool = False,
             oracle: bool = False) -> OutOfOrderCore:
        """A fresh core carrying this checkpoint's warmed state.

        The core is constructed normally (so its registry binds to the
        live structures) and then overwritten in place with the blob.
        ``validate`` enables the invariant sanitizer on the fork — the
        checker is wiring, not state, so it is orthogonal to whether the
        checkpoint itself was captured from a sanitized core. ``oracle``
        likewise attaches the commit-stream oracle to the fork; it is
        attached *after* the restore, so its reference walk resumes at
        the restored window's oldest in-flight instruction.
        """
        if policy is None:
            policy = self.policy
        elif isinstance(policy, str):
            policy = get_policy(policy)
        if record_ace_intervals is None:
            record_ace_intervals = self.record_ace_intervals
        core_seed = 0 if self.seed is None else self.seed
        core = OutOfOrderCore(self.machine, self.trace, policy,
                              seed=core_seed,
                              record_ace_intervals=record_ace_intervals,
                              validate=validate)
        self.restore_into(core)
        if oracle:
            from repro.validate.oracle import attach_oracle
            attach_oracle(core)
        return core


def warm_checkpoint(
    workload: Union[WorkloadSpec, str],
    machine: MachineParams,
    policy: Union[RunaheadPolicy, str] = OOO,
    warmup: int = DEFAULT_WARMUP,
    seed: Optional[int] = None,
    record_ace_intervals: bool = False,
    validate: bool = False,
    ledger=None,
    warmup_mode: str = DEFAULT_WARMUP_MODE,
) -> Checkpoint:
    """Run warmup once and capture the resulting state.

    With the default ``warmup_mode="detailed"`` this mirrors the front
    half of :func:`repro.sim.simulate` exactly (workload resolution,
    trace build, region preload, warmup run) so a fork measured under
    ``policy`` reproduces a cold run bit for bit.
    ``warmup_mode="fast"`` warms the long-lived structures through the
    functional walk (:func:`repro.core.fastfwd.functional_warmup`)
    instead of the detailed pipeline — an explicit approximation,
    cross-validated by ``repro warmval``; the capture/fork machinery is
    identical either way. ``validate`` sanitizes the warmup run itself
    (under fast mode only the detailed tail steps the engine, so only
    the tail is checked); it does not mark the checkpoint (forks opt in
    separately). ``ledger`` (a
    :class:`~repro.obs.ledger.RunLedger` or path) records a
    ``warmup_shared`` event with the warmup wall time and mode — purely
    observational, the captured state is bit-identical either way.
    """
    import time

    validate_warmup_mode(warmup_mode)
    if isinstance(workload, str):
        workload = get_workload(workload)
    if isinstance(policy, str):
        policy = get_policy(policy)
    if isinstance(ledger, str):
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger)
    trace = workload.build_trace(seed=seed)
    core_seed = 0 if seed is None else seed
    core = OutOfOrderCore(machine, trace, policy, seed=core_seed,
                          record_ace_intervals=record_ace_intervals,
                          validate=validate)
    for level, base, size in workload.resident_regions():
        core.mem.preload(base, size, level)
    t0 = time.perf_counter()
    if warmup > 0:
        if warmup_mode == "fast":
            # Functional walk over the bulk, detailed core over the
            # recency-dominated tail (see repro.core.fastfwd).
            tail = detailed_tail(warmup)
            functional_warmup(core, warmup - tail)
            if tail > 0:
                core.run(tail)
        else:
            core.run(warmup)
    checkpoint = Checkpoint.capture(core, workload.name, warmup, seed,
                                    warmup_mode=warmup_mode)
    if ledger is not None:
        ledger.warmup_shared(workload=workload.name, machine=machine.name,
                             policy=policy.name, warmup=warmup,
                             mode=warmup_mode,
                             wall_s=time.perf_counter() - t0)
    return checkpoint


def simulate_from(
    checkpoint: Checkpoint,
    policy: Union[RunaheadPolicy, str, None] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    telemetry=None,
    validate: bool = False,
    oracle: bool = False,
    ledger=None,
) -> SimResult:
    """Measure ``instructions`` starting from a warmed checkpoint.

    With ``policy`` equal to the checkpoint's warmup policy (the
    default), the returned :class:`SimResult` is bit-identical to
    ``simulate(workload, machine, policy, instructions,
    checkpoint.warmup, checkpoint.seed)``. A different ``policy`` forks
    the same warmed state under new control logic — the shared-warmup
    approximation.

    ``ledger`` records the fork's ``point_start``/``point_done`` (with
    wall seconds, KIPS and the per-point provenance manifest) for
    direct API users; ``ExperimentRunner.run_matrix`` emits its own
    richer events instead, so it does not pass the ledger down here.
    """
    import time

    if instructions <= 0:
        raise ValueError("instructions must be positive")
    if isinstance(ledger, str):
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger)
    pol = checkpoint.policy if policy is None else (
        get_policy(policy) if isinstance(policy, str) else policy)
    if ledger is not None:
        ledger.point_start(workload=checkpoint.workload,
                           machine=checkpoint.machine.name, policy=pol.name)
    core = checkpoint.fork(pol, validate=validate, oracle=oracle)
    if telemetry is not None:
        telemetry.attach(core)
        telemetry.begin_measurement(core)
    start = _snapshot(core)
    t0 = time.perf_counter()
    core.run(instructions)
    wall_s = time.perf_counter() - t0
    result = _delta_result(core, start, checkpoint.workload)
    if core.checker is not None:
        core.checker.final_check()
    if core.oracle is not None:
        core.oracle.final_check(expect_drained=core.engine.exhausted)
    if telemetry is not None:
        telemetry.end_measurement(core, result)
    if ledger is not None:
        from repro.obs.manifest import point_manifest
        kips = (result.instructions / wall_s / 1000.0) if wall_s else 0.0
        ledger.point_done(
            workload=result.workload, machine=result.machine,
            policy=result.policy, wall_s=wall_s, kips=round(kips, 2),
            ipc=round(result.ipc, 4),
            manifest=point_manifest(result.workload, checkpoint.machine,
                                    result.policy, instructions,
                                    checkpoint.warmup,
                                    seed=checkpoint.seed,
                                    warmup_mode=checkpoint.warmup_mode))
    return result


class CheckpointCache:
    """Process-local bounded LRU of warmed checkpoints.

    The simulation farm (:mod:`repro.analysis.farm`) keeps its worker
    processes alive across sweep requests; each worker holds one of
    these so two requests touching the same workload share a single
    warmup instead of paying it twice. Sharing is safe because
    :meth:`Checkpoint.fork` deep-copies the state blob per run — a
    cached checkpoint seeds any number of measurements bit-identically
    to a freshly warmed one (the checkpoint contract).

    The key pins everything the warmed state depends on: workload name,
    the *full* machine configuration (via the params digest, so two
    machines sharing a display name never collide), the policy warmup
    ran under, the warmup length and the trace seed. ``validate`` rides
    along too — a sanitized warmup is bit-identical, but keeping the
    slots separate means a cache hit never silently changes whether the
    warmup itself was checked.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, Checkpoint]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(workload_name: str, machine: MachineParams, policy_name: str,
             warmup: int, seed: Optional[int], validate: bool,
             warmup_mode: str = DEFAULT_WARMUP_MODE) -> Tuple:
        from repro.analysis.experiments import RunKey
        return (workload_name, RunKey.digest(machine), policy_name,
                warmup, seed, validate, warmup_mode)

    def get_or_warm(
        self,
        workload: Union[WorkloadSpec, str],
        machine: MachineParams,
        policy: Union[RunaheadPolicy, str] = OOO,
        warmup: int = DEFAULT_WARMUP,
        seed: Optional[int] = None,
        validate: bool = False,
        ledger=None,
        warmup_mode: str = DEFAULT_WARMUP_MODE,
    ) -> Checkpoint:
        """A warmed checkpoint for the point, warming at most once.

        On a miss this is exactly :func:`warm_checkpoint` (the ledger's
        ``warmup_shared`` event fires); a hit returns the cached object
        and emits nothing — the ledger records warmups actually run.
        ``warmup_mode`` is part of the key: fast- and detailed-warmed
        checkpoints occupy separate slots and never alias.
        """
        spec = get_workload(workload) if isinstance(workload, str) \
            else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        key = self._key(spec.name, machine, pol.name, warmup, seed,
                        validate, warmup_mode)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        checkpoint = warm_checkpoint(spec, machine, pol, warmup=warmup,
                                     seed=seed, validate=validate,
                                     ledger=ledger,
                                     warmup_mode=warmup_mode)
        self.misses += 1
        self._entries[key] = checkpoint
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return checkpoint

    def clear(self) -> None:
        self._entries.clear()


#: One cache per process: pool/farm workers and the serial sweep path
#: all funnel through it, so a long-lived worker shares warmups across
#: every request it serves.
_PROCESS_CACHE: Optional[CheckpointCache] = None


def process_checkpoint_cache() -> CheckpointCache:
    """The process-wide :class:`CheckpointCache` (created on first use)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CheckpointCache()
    return _PROCESS_CACHE
