"""Differential harness: one point, every execution path, bit-diffed.

The simulator exposes several ways to run the same (workload, machine,
policy, seed) point:

- ``facade`` — a cold :func:`repro.sim.simulate` (warmup + measure in
  one core).
- ``fork`` — :func:`repro.checkpoint.warm_checkpoint` then
  :func:`repro.checkpoint.simulate_from` under the same policy, which
  the checkpoint layer contracts to be bit-identical to the cold run.
- ``mp`` — the cold run executed inside a ``multiprocessing`` pool
  worker, the way ``ExperimentRunner.run_matrix(jobs=N)`` fans out, with
  the result shipped back as a ``to_dict()`` payload.

:func:`differential_check` runs the requested paths, diffs the full
:meth:`~repro.sim.SimResult.to_dict` payloads field by field, and — on
divergence — re-runs the divergent pair with an interval-sampler
timeline (rows align to the global cycle grid, so two bit-identical runs
produce identical rows) and bisects to the *first* differing interval,
turning "the end states differ" into "they first disagree at cycle C in
field F". Exposed on the command line as ``repro diff``.
"""

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.params import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    MachineParams,
)

__all__ = ["DiffReport", "Divergence", "FieldDiff", "PATHS",
           "differential_check"]

#: Execution paths the harness knows how to drive.
PATHS = ("facade", "fork", "mp")


@dataclass(frozen=True)
class FieldDiff:
    """One result field that differs between two paths."""

    field: str
    ref: Any
    other: Any


@dataclass
class Divergence:
    """A pair of paths whose results are not bit-identical.

    ``first_interval`` (when bisection ran) pins the earliest
    stats-timeline row at which the two runs disagree:
    ``{"cycle": C, "fields": {name: [ref_value, other_value]}}``.
    """

    ref_path: str
    other_path: str
    fields: List[FieldDiff]
    first_interval: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ref_path": self.ref_path,
            "other_path": self.other_path,
            "fields": [asdict(f) for f in self.fields],
            "first_interval": self.first_interval,
        }


@dataclass
class DiffReport:
    """Outcome of one differential check over a set of paths."""

    workload: str
    machine: str
    policy: str
    instructions: int
    warmup: int
    seed: Optional[int]
    paths: Tuple[str, ...]
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "machine": self.machine,
            "policy": self.policy,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "seed": self.seed,
            "paths": list(self.paths),
            "identical": self.identical,
            "results": self.results,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    def summary(self) -> str:
        head = (f"{self.workload}/{self.machine}/{self.policy} "
                f"({self.instructions} insts, warmup {self.warmup}, "
                f"seed {self.seed}): paths {', '.join(self.paths)}")
        if self.identical:
            return head + " -> bit-identical"
        lines = [head + " -> DIVERGED"]
        for d in self.divergences:
            lines.append(f"  {d.ref_path} vs {d.other_path}: "
                         f"{len(d.fields)} differing field(s)")
            for f in d.fields[:8]:
                lines.append(f"    {f.field}: {f.ref!r} != {f.other!r}")
            if len(d.fields) > 8:
                lines.append(f"    ... and {len(d.fields) - 8} more")
            if d.first_interval is not None:
                fi = d.first_interval
                lines.append(
                    f"    first divergent interval at cycle "
                    f"{fi['cycle']}: "
                    + ", ".join(f"{k}={v[0]!r}|{v[1]!r}"
                                for k, v in sorted(fi["fields"].items())))
        return "\n".join(lines)


# ---------------------------------------------------------------- workers

def _run_point(task: Tuple) -> Dict[str, Any]:
    """Execute one path of one point; module-level so it pickles into
    pool workers (the ``mp`` path). ``interval > 0`` additionally
    captures the interval-sampler timeline for bisection."""
    (path, workload, machine, policy, instructions, warmup, seed,
     validate, interval) = task
    telemetry = None
    if interval:
        from repro.obs import Telemetry
        telemetry = Telemetry(interval=interval)
    if path == "fork":
        from repro.checkpoint import simulate_from, warm_checkpoint
        ckpt = warm_checkpoint(workload, machine, policy, warmup=warmup,
                               seed=seed, validate=validate)
        result = simulate_from(ckpt, policy, instructions=instructions,
                               telemetry=telemetry, validate=validate)
    else:
        from repro.sim import simulate
        result = simulate(workload, machine, policy,
                          instructions=instructions, warmup=warmup,
                          seed=seed, telemetry=telemetry, validate=validate)
    rows = telemetry.sampler.rows if telemetry is not None else None
    return {"result": result.to_dict(), "timeline": rows}


def _execute(path: str, workload, machine, policy: str, instructions: int,
             warmup: int, seed: Optional[int], validate: bool,
             interval: int = 0) -> Dict[str, Any]:
    inner = "facade" if path == "mp" else path
    task = (inner, workload, machine, policy, instructions, warmup, seed,
            validate, interval)
    if path == "mp":
        from repro.analysis.experiments import _pool_context
        with _pool_context().Pool(1) as pool:
            return pool.apply(_run_point, (task,))
    return _run_point(task)


# ------------------------------------------------------------------ diffs

def _flatten(payload: Dict[str, Any], prefix: str = ""
             ) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, name + "."))
        else:
            out[name] = value
    return out


def _diff_payloads(ref: Dict[str, Any], other: Dict[str, Any]
                   ) -> List[FieldDiff]:
    """Exact field-by-field comparison of two flattened result payloads.

    Exact (not approximate) on purpose: the paths promise bit-identity,
    so even an ULP of float drift is a real divergence.
    """
    a, b = _flatten(ref), _flatten(other)
    diffs = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name, "<missing>"), b.get(name, "<missing>")
        if va != vb or type(va) is not type(vb):
            diffs.append(FieldDiff(field=name, ref=va, other=vb))
    return diffs


def _bisect_timeline(ref_rows: Optional[List[Dict[str, Any]]],
                     other_rows: Optional[List[Dict[str, Any]]]
                     ) -> Optional[Dict[str, Any]]:
    """First timeline row at which the two runs disagree.

    Rows from both runs sit on the same global cycle grid, so row *i*
    of one run describes the same interval as row *i* of the other; the
    first unequal pair localises the divergence in time.
    """
    if not ref_rows or not other_rows:
        return None
    for ra, rb in zip(ref_rows, other_rows):
        if ra != rb:
            keys = set(ra) | set(rb)
            return {
                "cycle": ra.get("cycle", rb.get("cycle")),
                "fields": {k: [ra.get(k), rb.get(k)] for k in sorted(keys)
                           if ra.get(k) != rb.get(k)},
            }
    if len(ref_rows) != len(other_rows):
        longer = ref_rows if len(ref_rows) > len(other_rows) else other_rows
        row = longer[min(len(ref_rows), len(other_rows))]
        return {"cycle": row.get("cycle"),
                "fields": {"<row-count>": [len(ref_rows), len(other_rows)]}}
    return None


# -------------------------------------------------------------------- api

def differential_check(
    workload: Union[str, object],
    machine: MachineParams,
    policy: Union[str, object],
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: Optional[int] = None,
    paths: Sequence[str] = PATHS,
    bisect_interval: int = 500,
    validate: bool = False,
) -> DiffReport:
    """Run one point through every requested path and diff the results.

    Args:
        workload: catalog name or :class:`WorkloadSpec` (must be
            picklable when the ``mp`` path is requested — catalog names
            always are).
        machine: machine configuration.
        policy: policy name or :class:`RunaheadPolicy`.
        instructions / warmup / seed: the point's run coordinates,
            shared verbatim by every path.
        paths: subset of :data:`PATHS`, at least two; the first is the
            reference the others are diffed against.
        bisect_interval: stats-timeline period (cycles) used to localise
            a divergence; 0 skips bisection.
        validate: additionally run every path under the invariant
            sanitizer (:mod:`repro.validate.invariants`).

    Returns:
        a :class:`DiffReport`; ``report.identical`` is the verdict.
    """
    paths = tuple(paths)
    unknown = [p for p in paths if p not in PATHS]
    if unknown:
        raise ValueError(f"unknown path(s) {unknown}; choose from {PATHS}")
    if len(paths) < 2:
        raise ValueError("need at least two paths to diff")
    policy_name = policy if isinstance(policy, str) else policy.name
    workload_name = (workload if isinstance(workload, str)
                     else workload.name)

    results: Dict[str, Dict[str, Any]] = {}
    for p in paths:
        results[p] = _execute(p, workload, machine, policy_name,
                              instructions, warmup, seed, validate)["result"]

    ref = paths[0]
    divergences: List[Divergence] = []
    for other in paths[1:]:
        fields = _diff_payloads(results[ref], results[other])
        if not fields:
            continue
        div = Divergence(ref_path=ref, other_path=other, fields=fields)
        if bisect_interval > 0:
            # Re-run only the divergent pair, now with a timeline, and
            # pin the first interval at which the two runs disagree.
            ref_tl = _execute(ref, workload, machine, policy_name,
                              instructions, warmup, seed, validate,
                              interval=bisect_interval)["timeline"]
            other_tl = _execute(other, workload, machine, policy_name,
                                instructions, warmup, seed, validate,
                                interval=bisect_interval)["timeline"]
            div.first_interval = _bisect_timeline(ref_tl, other_tl)
        divergences.append(div)

    return DiffReport(workload=workload_name, machine=machine.name,
                      policy=policy_name, instructions=instructions,
                      warmup=warmup, seed=seed, paths=paths,
                      results=results, divergences=divergences)
