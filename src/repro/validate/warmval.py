"""Fast-vs-detailed warmup cross-validation (``repro warmval``).

The functional fast-warmup engine (:mod:`repro.core.fastfwd`) is an
explicit approximation: it trains the long-lived structures on the same
correct-path stream as a detailed warmup but skips wrong-path fetch,
runahead episodes and real pipeline timing. This module quantifies the
approximation the way simplified-vs-detailed model validations do
(Zhang et al.; the Chatzopoulos RISC-V methodology, see PAPERS.md): run
the same measured region from a detailed-warmed and a fast-warmed
checkpoint and compare the measured-region metrics point by point.

The grid is {mcf, lbm, gcc} × {OOO, FLUSH, TR, PRE, RAR} by default —
the paper's core policies over memory-bound and compute-bound
workloads. Each point's IPC / LLC MPKI / branch-misses-per-kinst / AVF
deltas must stay inside :data:`TOLERANCES` (documented in
docs/performance.md; the headline target is ≤2% IPC). The per-point
deltas are written to a JSON report for CI artifacts, and the warmup
wall-time of both modes is recorded so the fast path's speedup is
asserted where it is measured.

Tolerance semantics: a metric passes when
``|fast - detailed| <= max(rel * |detailed|, floor)``. The absolute
floor keeps near-zero denominators (a compute-bound workload's MPKI,
AVF in the 0.2 range) from turning sub-noise absolute differences into
huge relative ones.
"""

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.checkpoint import simulate_from, warm_checkpoint
from repro.common.params import BASELINE, MachineParams
from repro.sim import SimResult

__all__ = ["TOLERANCES", "WARMVAL_POLICIES", "WARMVAL_WORKLOADS",
           "WarmvalPoint", "WarmvalReport", "run_warmval", "warmval_table"]

WARMVAL_WORKLOADS = ("mcf", "lbm", "gcc")
WARMVAL_POLICIES = ("OOO", "FLUSH", "TR", "PRE", "RAR")

#: metric -> (relative tolerance, absolute floor). See module docstring
#: for semantics; docs/performance.md carries the rendered table and
#: the measured deltas backing these bounds. Exact-warmup policies
#: (OOO) measure well inside the paper's ≤2% IPC target (≤1% on the
#: default grid); runahead/flush policies sit higher because episode
#: *timing* during warmup is chaotically sensitive to microstate the
#: functional walk cannot replicate — their measured deltas plateau
#: around 3-5% IPC regardless of region size, so the documented bound
#: is 6%.
TOLERANCES: Dict[str, Tuple[float, float]] = {
    "ipc": (0.06, 0.005),
    "mpki": (0.10, 3.0),
    "branch_mpki": (0.15, 2.0),
    "avf": (0.10, 0.02),
}


def _metrics(r: SimResult) -> Dict[str, float]:
    kinst = r.instructions / 1000.0
    return {
        "ipc": r.ipc,
        "mpki": r.mpki,
        "branch_mpki": r.branch_mispredicts / kinst if kinst else 0.0,
        "avf": r.avf,
    }


@dataclass
class WarmvalPoint:
    """One grid point's fast-vs-detailed comparison."""

    workload: str
    policy: str
    machine: str
    #: metric -> {detailed, fast, abs_delta, rel_delta, tol_rel,
    #: tol_floor, ok}
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    warm_wall_detailed_s: float = 0.0
    warm_wall_fast_s: float = 0.0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "machine": self.machine,
            "metrics": self.metrics,
            "warm_wall_detailed_s": round(self.warm_wall_detailed_s, 4),
            "warm_wall_fast_s": round(self.warm_wall_fast_s, 4),
            "ok": self.ok,
            "problems": list(self.problems),
        }


@dataclass
class WarmvalReport:
    """The full cross-validation run: points + aggregate warmup timing."""

    machine: str
    instructions: int
    warmup: int
    points: List[WarmvalPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    @property
    def problems(self) -> List[str]:
        return [f"{p.workload}/{p.policy}: {msg}"
                for p in self.points for msg in p.problems]

    @property
    def warmup_wall_detailed_s(self) -> float:
        return sum(p.warm_wall_detailed_s for p in self.points)

    @property
    def warmup_wall_fast_s(self) -> float:
        return sum(p.warm_wall_fast_s for p in self.points)

    @property
    def warmup_speedup(self) -> float:
        fast = self.warmup_wall_fast_s
        return self.warmup_wall_detailed_s / fast if fast else 0.0

    def max_rel_delta(self, metric: str) -> float:
        return max((p.metrics[metric]["rel_delta"] for p in self.points
                    if metric in p.metrics), default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        from repro.obs.manifest import host_manifest
        return {
            "schema": 1,
            "machine": self.machine,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "tolerances": {m: {"rel": rel, "floor": floor}
                           for m, (rel, floor) in TOLERANCES.items()},
            "warmup_wall_detailed_s": round(self.warmup_wall_detailed_s, 4),
            "warmup_wall_fast_s": round(self.warmup_wall_fast_s, 4),
            "warmup_speedup": round(self.warmup_speedup, 2),
            "ok": self.ok,
            "problems": self.problems,
            "points": [p.to_dict() for p in self.points],
            "manifest": host_manifest(),
        }


def _compare(detailed: SimResult, fast: SimResult,
             point: WarmvalPoint) -> None:
    dm, fm = _metrics(detailed), _metrics(fast)
    for name, (rel, floor) in TOLERANCES.items():
        d, f = dm[name], fm[name]
        abs_delta = abs(f - d)
        rel_delta = abs_delta / abs(d) if d else (abs_delta and float("inf"))
        bound = max(rel * abs(d), floor)
        ok = abs_delta <= bound
        point.metrics[name] = {
            "detailed": round(d, 6), "fast": round(f, 6),
            "abs_delta": round(abs_delta, 6),
            "rel_delta": round(rel_delta, 6) if rel_delta != float("inf")
            else rel_delta,
            "tol_rel": rel, "tol_floor": floor, "ok": ok,
        }
        if not ok:
            point.problems.append(
                f"{name}: detailed={d:.4f} fast={f:.4f} "
                f"|delta|={abs_delta:.4f} > max({rel:.0%}*|d|, {floor})")


def run_warmval(
    workloads: Iterable[str] = WARMVAL_WORKLOADS,
    policies: Iterable[str] = WARMVAL_POLICIES,
    machine: MachineParams = BASELINE,
    instructions: int = 10_000,
    warmup: int = 20_000,
    seed: Optional[int] = None,
) -> WarmvalReport:
    """Run the grid under both warmup modes and compare measured regions.

    Each point warms its *own* policy in both modes (the exact-policy
    shape, so the detailed leg is bit-identical to a cold
    ``simulate()``) and measures the same region from each checkpoint.
    Warmup wall time is recorded per mode; everything lands in the
    returned :class:`WarmvalReport`.
    """
    report = WarmvalReport(machine=machine.name, instructions=instructions,
                           warmup=warmup)
    for workload in workloads:
        for policy in policies:
            point = WarmvalPoint(workload=workload, policy=policy,
                                 machine=machine.name)
            t0 = time.perf_counter()
            ck_detailed = warm_checkpoint(workload, machine, policy,
                                          warmup=warmup, seed=seed)
            point.warm_wall_detailed_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            ck_fast = warm_checkpoint(workload, machine, policy,
                                      warmup=warmup, seed=seed,
                                      warmup_mode="fast")
            point.warm_wall_fast_s = time.perf_counter() - t0
            detailed = simulate_from(ck_detailed,
                                     instructions=instructions)
            fast = simulate_from(ck_fast, instructions=instructions)
            _compare(detailed, fast, point)
            report.points.append(point)
    return report


def warmval_table(report: WarmvalReport) -> str:
    """Render the per-point delta table (the ``repro warmval`` output)."""
    from repro.analysis.tables import format_table
    rows = []
    for p in report.points:
        m = p.metrics
        rows.append([
            p.workload, p.policy,
            m["ipc"]["detailed"], m["ipc"]["fast"],
            f"{m['ipc']['rel_delta']:.2%}",
            f"{m['mpki']['abs_delta']:.2f}",
            f"{m['branch_mpki']['abs_delta']:.2f}",
            f"{m['avf']['abs_delta']:.4f}",
            "ok" if p.ok else "FAIL",
        ])
    return format_table(
        ["workload", "policy", "IPC(det)", "IPC(fast)", "dIPC",
         "dMPKI", "dBrMPKI", "dAVF", "status"], rows)
