"""Golden conformance fingerprints for the 25-point baseline matrix.

The performance contract (docs/performance.md) already freezes the
25-point baseline — mcf on the five machine generations under the five
paper policies — as the bit-identity gate for optimisation work. This
module freezes its *results*: every point gets a canonical fingerprint
(a stable SHA-256 over the full :meth:`SimResult.to_dict` payload plus
the commit oracle's architectural digest), and the fingerprints live in
version control under ``tests/golden/``. Any change to simulator
semantics — intended or not — shows up as a fingerprint diff, reviewed
like any other code change (the SimPoint/gem5 "golden outputs"
workflow).

Every point is measured the same way regardless of parallelism: warm a
checkpoint under the measured policy, fork it with the commit oracle
attached, and measure the fork. Forking a checkpoint warmed under the
same policy is bit-identical to a cold run (the checkpoint contract),
so ``--jobs 1`` and ``--jobs 4`` take the identical code path per point
and the fingerprints cannot depend on scheduling.

Command line::

    python -m repro golden --check           # verify against tests/golden
    python -m repro golden --regen           # refreeze after a reviewed change
"""

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.common.params import BASELINE, CORE1, CORE2, CORE3, CORE4, \
    MachineParams

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_INSTRUCTIONS",
    "GOLDEN_MACHINES",
    "GOLDEN_POLICIES",
    "GOLDEN_SCHEMA",
    "GOLDEN_WARMUP",
    "GOLDEN_WORKLOAD",
    "canonical_fingerprint",
    "check_golden",
    "golden_points",
    "measure_point",
    "regen_golden",
]

#: Bump when the file layout changes; a mismatched schema is reported as
#: a check failure (regen required), never silently reinterpreted.
GOLDEN_SCHEMA = 1

#: The frozen matrix: one workload x five machines x five policies,
#: mirroring the performance baseline in docs/performance.md.
GOLDEN_WORKLOAD = "mcf"
GOLDEN_MACHINES: Dict[str, MachineParams] = {
    "baseline": BASELINE,
    "core-1": CORE1,
    "core-2": CORE2,
    "core-3": CORE3,
    "core-4": CORE4,
}
GOLDEN_POLICIES: Tuple[str, ...] = ("OOO", "FLUSH", "TR", "PRE", "RAR")
GOLDEN_INSTRUCTIONS = 3000
GOLDEN_WARMUP = 3000
GOLDEN_DIR = os.path.join("tests", "golden")


def golden_points() -> List[Tuple[str, str]]:
    """The frozen (machine, policy) grid, in file order."""
    return [(m, p) for m in GOLDEN_MACHINES for p in GOLDEN_POLICIES]


def canonical_fingerprint(payload: Any) -> str:
    """Stable hash of a JSON-serialisable payload.

    Canonical form is JSON with sorted keys and no whitespace, so the
    fingerprint is independent of dict insertion order, file formatting
    and Python version — it changes exactly when a value changes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def measure_point(machine_name: str, policy: str,
                  instructions: int = GOLDEN_INSTRUCTIONS,
                  warmup: int = GOLDEN_WARMUP,
                  ledger=None) -> Dict[str, Any]:
    """Measure one golden point and return its frozen entry.

    Always runs via warm-checkpoint + oracle'd fork (see module
    docstring), so the entry is the same whichever process measures it.
    ``ledger`` (a path or :class:`~repro.obs.ledger.RunLedger`) records
    the measurement's point events; the fingerprint is bit-identical
    with or without it.
    """
    import time

    from repro.checkpoint import warm_checkpoint
    from repro.sim import _delta_result, _snapshot

    if isinstance(ledger, str):
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger)
    machine = GOLDEN_MACHINES[machine_name]
    if ledger is not None:
        ledger.point_start(workload=GOLDEN_WORKLOAD, machine=machine_name,
                           policy=policy)
    t0 = time.perf_counter()
    cp = warm_checkpoint(GOLDEN_WORKLOAD, machine, policy, warmup=warmup)
    core = cp.fork(oracle=True)
    start = _snapshot(core)
    core.run(instructions)
    wall_s = time.perf_counter() - t0
    result = _delta_result(core, start, cp.workload)
    core.oracle.final_check(expect_drained=core.engine.exhausted)
    digest = core.oracle.digest()
    fingerprint = canonical_fingerprint(
        {"result": result.to_dict(), "commit_digest": digest})
    if ledger is not None:
        from repro.obs.manifest import point_manifest
        kips = (result.instructions / wall_s / 1000.0) if wall_s else 0.0
        ledger.point_done(
            workload=GOLDEN_WORKLOAD, machine=machine_name, policy=policy,
            wall_s=wall_s, kips=round(kips, 2), ipc=round(result.ipc, 4),
            fingerprint=fingerprint,
            manifest=point_manifest(GOLDEN_WORKLOAD, machine, policy,
                                    instructions, warmup))
    return {
        "fingerprint": fingerprint,
        "commit_digest": digest,
        # Informational context so a fingerprint diff is reviewable
        # without rerunning — never part of the hash input above.
        "ipc": result.ipc,
        "cycles": result.cycles,
        "abc_total": result.abc_total,
    }


def _measure_task(task: Tuple[str, str, int, int, Optional[str]],
                  ) -> Tuple[str, str, Dict[str, Any]]:
    """Pool worker: one point per task for even load balance."""
    machine_name, policy, instructions, warmup, ledger_path = task
    return machine_name, policy, measure_point(machine_name, policy,
                                               instructions, warmup,
                                               ledger=ledger_path)


def _measure_all(jobs: int, instructions: int, warmup: int,
                 ledger: Optional[str] = None,
                 ) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Measure the full grid; returns machine -> policy -> entry.

    With ``ledger`` set, the grid measurement is wrapped in a
    ``sweep_start``/``sweep_done`` envelope and each point appends its
    events — so a conformance run is monitorable with ``repro top``
    and auditable post mortem like any sweep.
    """
    import time

    from repro.analysis.experiments import _pool_context

    run_ledger = None
    if ledger:
        from repro.obs.ledger import RunLedger
        from repro.obs.manifest import host_manifest
        run_ledger = RunLedger(ledger)
        run_ledger.sweep_start(
            total_points=len(golden_points()), workload=GOLDEN_WORKLOAD,
            machines=list(GOLDEN_MACHINES), policies=list(GOLDEN_POLICIES),
            jobs=jobs, instructions=instructions, warmup=warmup,
            manifest=host_manifest())
    t0 = time.perf_counter()
    tasks = [(m, p, instructions, warmup, ledger)
             for m, p in golden_points()]
    if jobs > 1:
        with _pool_context().Pool(min(jobs, len(tasks))) as pool:
            measured = pool.map(_measure_task, tasks)
    else:
        measured = [_measure_task(t) for t in tasks]
    out: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for machine_name, policy, entry in measured:
        out.setdefault(machine_name, {})[policy] = entry
    if run_ledger is not None:
        run_ledger.sweep_done(elapsed_s=time.perf_counter() - t0,
                              points_run=len(tasks), points_cached=0)
    return out


def _machine_path(directory: str, machine_name: str) -> str:
    return os.path.join(directory, f"{machine_name}.json")


def regen_golden(directory: str = GOLDEN_DIR, jobs: int = 1,
                 instructions: int = GOLDEN_INSTRUCTIONS,
                 warmup: int = GOLDEN_WARMUP,
                 ledger: Optional[str] = None) -> List[str]:
    """(Re)freeze the fingerprints; returns the files written."""
    from repro.common.io import atomic_write_json

    os.makedirs(directory, exist_ok=True)
    grid = _measure_all(jobs, instructions, warmup, ledger=ledger)
    written: List[str] = []
    for machine_name in GOLDEN_MACHINES:
        payload = {
            "schema": GOLDEN_SCHEMA,
            "workload": GOLDEN_WORKLOAD,
            "machine": machine_name,
            "instructions": instructions,
            "warmup": warmup,
            "points": grid[machine_name],
        }
        path = _machine_path(directory, machine_name)
        atomic_write_json(path, payload, indent=2)
        written.append(path)
    return written


def check_golden(directory: str = GOLDEN_DIR,
                 jobs: int = 1, ledger: Optional[str] = None) -> List[str]:
    """Re-measure the grid and diff against the frozen files.

    Returns a list of human-readable mismatch lines — empty means fully
    conformant. Run sizes are taken from the frozen files themselves so
    a check is self-consistent; a file frozen at different sizes than
    the module defaults still checks against what it recorded.
    """
    problems: List[str] = []
    frozen: Dict[str, Dict[str, Any]] = {}
    instructions: Optional[int] = None
    warmup: Optional[int] = None
    for machine_name in GOLDEN_MACHINES:
        path = _machine_path(directory, machine_name)
        try:
            with open(path) as f:
                payload = json.load(f)
        except OSError:
            problems.append(f"{machine_name}: missing golden file {path} "
                            f"(run `repro golden --regen`)")
            continue
        except ValueError as e:
            problems.append(f"{machine_name}: unreadable golden file "
                            f"{path}: {e}")
            continue
        if payload.get("schema") != GOLDEN_SCHEMA:
            problems.append(
                f"{machine_name}: schema {payload.get('schema')} != "
                f"{GOLDEN_SCHEMA} (run `repro golden --regen`)")
            continue
        if payload.get("workload") != GOLDEN_WORKLOAD:
            problems.append(
                f"{machine_name}: workload {payload.get('workload')!r} != "
                f"{GOLDEN_WORKLOAD!r}")
            continue
        if instructions is None:
            instructions = payload["instructions"]
            warmup = payload["warmup"]
        elif (payload["instructions"] != instructions
              or payload["warmup"] != warmup):
            problems.append(
                f"{machine_name}: run sizes ({payload['instructions']}, "
                f"{payload['warmup']}) disagree with the other golden "
                f"files ({instructions}, {warmup})")
            continue
        missing = [p for p in GOLDEN_POLICIES
                   if p not in payload.get("points", {})]
        if missing:
            problems.append(f"{machine_name}: missing points {missing}")
            continue
        frozen[machine_name] = payload["points"]
    if not frozen:
        return problems

    grid = _measure_all(jobs, instructions, warmup, ledger=ledger)
    for machine_name, points in frozen.items():
        for policy in GOLDEN_POLICIES:
            want = points[policy]
            got = grid[machine_name][policy]
            if got["fingerprint"] != want["fingerprint"]:
                detail = (f"commit digest also drifted "
                          f"({want['commit_digest'][:12]} -> "
                          f"{got['commit_digest'][:12]})"
                          if got["commit_digest"] != want["commit_digest"]
                          else "commit digest unchanged (timing-only drift)")
                problems.append(
                    f"{machine_name}/{policy}: fingerprint "
                    f"{want['fingerprint'][:12]} -> "
                    f"{got['fingerprint'][:12]}; ipc {want['ipc']:.4f} -> "
                    f"{got['ipc']:.4f}, cycles {want['cycles']} -> "
                    f"{got['cycles']}; {detail}")
    return problems
