"""Golden conformance fingerprints for the 25-point baseline matrix.

The performance contract (docs/performance.md) already freezes the
25-point baseline — mcf on the five machine generations under the five
paper policies — as the bit-identity gate for optimisation work. This
module freezes its *results*: every point gets a canonical fingerprint
(a stable SHA-256 over the full :meth:`SimResult.to_dict` payload plus
the commit oracle's architectural digest), and the fingerprints live in
version control under ``tests/golden/``. Any change to simulator
semantics — intended or not — shows up as a fingerprint diff, reviewed
like any other code change (the SimPoint/gem5 "golden outputs"
workflow).

Every point is measured the same way regardless of parallelism: warm a
checkpoint under the measured policy, fork it with the commit oracle
attached, and measure the fork. Forking a checkpoint warmed under the
same policy is bit-identical to a cold run (the checkpoint contract),
so ``--jobs 1`` and ``--jobs 4`` take the identical code path per point
and the fingerprints cannot depend on scheduling.

Alongside the baseline matrix, a *scenario* grid
(``tests/golden/scenarios.json``) freezes the trace-ingestion and
phased-workload paths: two bundled raw traces (ChampSim and gem5 text
fixtures under ``tests/isa/fixtures/``, re-imported at measure time so
the importer pipeline is inside the fingerprint) and two
phase-structured catalog workloads, each under the five policies on the
baseline machine. The fixture points deliberately run past
end-of-stream, freezing the finite-trace drain path too.

Command line::

    python -m repro golden --check           # verify against tests/golden
    python -m repro golden --regen           # refreeze after a reviewed change
"""

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.common.params import BASELINE, CORE1, CORE2, CORE3, CORE4, \
    MachineParams

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_INSTRUCTIONS",
    "GOLDEN_MACHINES",
    "GOLDEN_POLICIES",
    "GOLDEN_SCENARIOS",
    "GOLDEN_SCHEMA",
    "GOLDEN_WARMUP",
    "GOLDEN_WORKLOAD",
    "canonical_fingerprint",
    "check_golden",
    "check_scenarios",
    "golden_points",
    "measure_point",
    "measure_scenario",
    "regen_golden",
    "regen_scenarios",
    "scenario_points",
    "scenario_workload",
]

#: Bump when the file layout changes; a mismatched schema is reported as
#: a check failure (regen required), never silently reinterpreted.
GOLDEN_SCHEMA = 1

#: The frozen matrix: one workload x five machines x five policies,
#: mirroring the performance baseline in docs/performance.md.
GOLDEN_WORKLOAD = "mcf"
GOLDEN_MACHINES: Dict[str, MachineParams] = {
    "baseline": BASELINE,
    "core-1": CORE1,
    "core-2": CORE2,
    "core-3": CORE3,
    "core-4": CORE4,
}
GOLDEN_POLICIES: Tuple[str, ...] = ("OOO", "FLUSH", "TR", "PRE", "RAR")
GOLDEN_INSTRUCTIONS = 3000
GOLDEN_WARMUP = 3000
GOLDEN_DIR = os.path.join("tests", "golden")

#: The scenario extension: trace-backed and phase-structured workloads
#: on the baseline machine, under the same five policies. Fixture
#: scenarios are sized so the measured region runs past end-of-stream —
#: the finite-trace drain path is itself under the fingerprint.
#: name -> (instructions, warmup).
GOLDEN_SCENARIOS: Dict[str, Tuple[int, int]] = {
    "fixture:champsim": (4000, 200),
    "fixture:gem5": (4000, 200),
    "ph-swap-chase-stream": (GOLDEN_INSTRUCTIONS, GOLDEN_WARMUP),
    "ph-burst-mpki": (GOLDEN_INSTRUCTIONS, GOLDEN_WARMUP),
}

#: Raw importer inputs for the ``fixture:<fmt>`` scenarios, anchored at
#: the repo root so the check runs from any cwd.
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", ".."))
FIXTURE_DIR = os.path.join(_REPO_ROOT, "tests", "isa", "fixtures")
_FIXTURE_FILES = {"champsim": "champsim_small.txt",
                  "gem5": "gem5_small.txt"}
_SCENARIO_FILE = "scenarios.json"


def golden_points() -> List[Tuple[str, str]]:
    """The frozen (machine, policy) grid, in file order."""
    return [(m, p) for m in GOLDEN_MACHINES for p in GOLDEN_POLICIES]


def scenario_points() -> List[Tuple[str, str]]:
    """The frozen (scenario, policy) grid, in file order."""
    return [(s, p) for s in GOLDEN_SCENARIOS for p in GOLDEN_POLICIES]


def scenario_workload(name: str):
    """Resolve a scenario name to a workload object.

    ``fixture:<fmt>`` re-imports the bundled raw trace at measure time —
    the importer pipeline is inside the fingerprint, so a semantic
    change to an importer shows up as golden drift, not just a unit-test
    failure. Everything else resolves through the catalog.
    """
    if name.startswith("fixture:"):
        from repro.isa.importers import get_importer
        from repro.workloads.tracewl import MaterializedTraceWorkload
        fmt = name.split(":", 1)[1]
        path = os.path.join(FIXTURE_DIR, _FIXTURE_FILES[fmt])
        with open(path) as f:
            uops = get_importer(fmt)(iter(f), path)
        return MaterializedTraceWorkload(
            uops, name=name,
            description=f"golden fixture: {fmt} import of {path}")
    from repro.workloads.catalog import get_workload
    return get_workload(name)


def canonical_fingerprint(payload: Any) -> str:
    """Stable hash of a JSON-serialisable payload.

    Canonical form is JSON with sorted keys and no whitespace, so the
    fingerprint is independent of dict insertion order, file formatting
    and Python version — it changes exactly when a value changes.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _measure(workload, label: str, machine: MachineParams,
             machine_label: str, policy: str, instructions: int,
             warmup: int, ledger=None) -> Dict[str, Any]:
    """Measure one point (workload object or catalog name) and return
    its frozen entry.

    Always runs via warm-checkpoint + oracle'd fork (see module
    docstring), so the entry is the same whichever process measures it.
    ``ledger`` (a path or :class:`~repro.obs.ledger.RunLedger`) records
    the measurement's point events; the fingerprint is bit-identical
    with or without it.
    """
    import time

    from repro.checkpoint import warm_checkpoint
    from repro.sim import _delta_result, _snapshot

    if isinstance(ledger, str):
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger)
    if ledger is not None:
        ledger.point_start(workload=label, machine=machine_label,
                           policy=policy)
    t0 = time.perf_counter()
    cp = warm_checkpoint(workload, machine, policy, warmup=warmup)
    core = cp.fork(oracle=True)
    start = _snapshot(core)
    core.run(instructions)
    wall_s = time.perf_counter() - t0
    result = _delta_result(core, start, cp.workload)
    core.oracle.final_check(expect_drained=core.engine.exhausted)
    digest = core.oracle.digest()
    fingerprint = canonical_fingerprint(
        {"result": result.to_dict(), "commit_digest": digest})
    if ledger is not None:
        from repro.obs.manifest import point_manifest
        kips = (result.instructions / wall_s / 1000.0) if wall_s else 0.0
        ledger.point_done(
            workload=label, machine=machine_label, policy=policy,
            wall_s=wall_s, kips=round(kips, 2), ipc=round(result.ipc, 4),
            fingerprint=fingerprint,
            manifest=point_manifest(label, machine, policy,
                                    instructions, warmup))
    return {
        "fingerprint": fingerprint,
        "commit_digest": digest,
        # Informational context so a fingerprint diff is reviewable
        # without rerunning — never part of the hash input above.
        "ipc": result.ipc,
        "cycles": result.cycles,
        "abc_total": result.abc_total,
    }


def measure_point(machine_name: str, policy: str,
                  instructions: int = GOLDEN_INSTRUCTIONS,
                  warmup: int = GOLDEN_WARMUP,
                  ledger=None) -> Dict[str, Any]:
    """Measure one baseline-matrix point (mcf on ``machine_name``)."""
    return _measure(GOLDEN_WORKLOAD, GOLDEN_WORKLOAD,
                    GOLDEN_MACHINES[machine_name], machine_name, policy,
                    instructions, warmup, ledger=ledger)


def measure_scenario(scenario: str, policy: str,
                     instructions: Optional[int] = None,
                     warmup: Optional[int] = None,
                     ledger=None) -> Dict[str, Any]:
    """Measure one scenario point (trace fixture / phased workload on
    the baseline machine)."""
    default_n, default_w = GOLDEN_SCENARIOS[scenario]
    return _measure(scenario_workload(scenario), scenario, BASELINE,
                    "baseline", policy,
                    default_n if instructions is None else instructions,
                    default_w if warmup is None else warmup,
                    ledger=ledger)


def _measure_task(task: Tuple[str, str, int, int, Optional[str]],
                  ) -> Tuple[str, str, Dict[str, Any]]:
    """Pool worker: one point per task for even load balance."""
    machine_name, policy, instructions, warmup, ledger_path = task
    return machine_name, policy, measure_point(machine_name, policy,
                                               instructions, warmup,
                                               ledger=ledger_path)


def _measure_all(jobs: int, instructions: int, warmup: int,
                 ledger: Optional[str] = None,
                 ) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Measure the full grid; returns machine -> policy -> entry.

    With ``ledger`` set, the grid measurement is wrapped in a
    ``sweep_start``/``sweep_done`` envelope and each point appends its
    events — so a conformance run is monitorable with ``repro top``
    and auditable post mortem like any sweep.
    """
    import time

    from repro.analysis.experiments import _pool_context

    run_ledger = None
    if ledger:
        from repro.obs.ledger import RunLedger
        from repro.obs.manifest import host_manifest
        run_ledger = RunLedger(ledger)
        run_ledger.sweep_start(
            total_points=len(golden_points()), workload=GOLDEN_WORKLOAD,
            machines=list(GOLDEN_MACHINES), policies=list(GOLDEN_POLICIES),
            jobs=jobs, instructions=instructions, warmup=warmup,
            manifest=host_manifest())
    t0 = time.perf_counter()
    tasks = [(m, p, instructions, warmup, ledger)
             for m, p in golden_points()]
    if jobs > 1:
        with _pool_context().Pool(min(jobs, len(tasks))) as pool:
            measured = pool.map(_measure_task, tasks)
    else:
        measured = [_measure_task(t) for t in tasks]
    out: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for machine_name, policy, entry in measured:
        out.setdefault(machine_name, {})[policy] = entry
    if run_ledger is not None:
        run_ledger.sweep_done(elapsed_s=time.perf_counter() - t0,
                              points_run=len(tasks), points_cached=0)
    return out


def _machine_path(directory: str, machine_name: str) -> str:
    return os.path.join(directory, f"{machine_name}.json")


def regen_golden(directory: str = GOLDEN_DIR, jobs: int = 1,
                 instructions: int = GOLDEN_INSTRUCTIONS,
                 warmup: int = GOLDEN_WARMUP,
                 ledger: Optional[str] = None) -> List[str]:
    """(Re)freeze the fingerprints; returns the files written."""
    from repro.common.io import atomic_write_json

    os.makedirs(directory, exist_ok=True)
    grid = _measure_all(jobs, instructions, warmup, ledger=ledger)
    written: List[str] = []
    for machine_name in GOLDEN_MACHINES:
        payload = {
            "schema": GOLDEN_SCHEMA,
            "workload": GOLDEN_WORKLOAD,
            "machine": machine_name,
            "instructions": instructions,
            "warmup": warmup,
            "points": grid[machine_name],
        }
        path = _machine_path(directory, machine_name)
        atomic_write_json(path, payload, indent=2)
        written.append(path)
    return written


def check_golden(directory: str = GOLDEN_DIR,
                 jobs: int = 1, ledger: Optional[str] = None) -> List[str]:
    """Re-measure the grid and diff against the frozen files.

    Returns a list of human-readable mismatch lines — empty means fully
    conformant. Run sizes are taken from the frozen files themselves so
    a check is self-consistent; a file frozen at different sizes than
    the module defaults still checks against what it recorded.
    """
    problems: List[str] = []
    frozen: Dict[str, Dict[str, Any]] = {}
    instructions: Optional[int] = None
    warmup: Optional[int] = None
    for machine_name in GOLDEN_MACHINES:
        path = _machine_path(directory, machine_name)
        try:
            with open(path) as f:
                payload = json.load(f)
        except OSError:
            problems.append(f"{machine_name}: missing golden file {path} "
                            f"(run `repro golden --regen`)")
            continue
        except ValueError as e:
            problems.append(f"{machine_name}: unreadable golden file "
                            f"{path}: {e}")
            continue
        if payload.get("schema") != GOLDEN_SCHEMA:
            problems.append(
                f"{machine_name}: schema {payload.get('schema')} != "
                f"{GOLDEN_SCHEMA} (run `repro golden --regen`)")
            continue
        if payload.get("workload") != GOLDEN_WORKLOAD:
            problems.append(
                f"{machine_name}: workload {payload.get('workload')!r} != "
                f"{GOLDEN_WORKLOAD!r}")
            continue
        if instructions is None:
            instructions = payload["instructions"]
            warmup = payload["warmup"]
        elif (payload["instructions"] != instructions
              or payload["warmup"] != warmup):
            problems.append(
                f"{machine_name}: run sizes ({payload['instructions']}, "
                f"{payload['warmup']}) disagree with the other golden "
                f"files ({instructions}, {warmup})")
            continue
        missing = [p for p in GOLDEN_POLICIES
                   if p not in payload.get("points", {})]
        if missing:
            problems.append(f"{machine_name}: missing points {missing}")
            continue
        frozen[machine_name] = payload["points"]
    if not frozen:
        return problems

    grid = _measure_all(jobs, instructions, warmup, ledger=ledger)
    for machine_name, points in frozen.items():
        for policy in GOLDEN_POLICIES:
            want = points[policy]
            got = grid[machine_name][policy]
            if got["fingerprint"] != want["fingerprint"]:
                detail = (f"commit digest also drifted "
                          f"({want['commit_digest'][:12]} -> "
                          f"{got['commit_digest'][:12]})"
                          if got["commit_digest"] != want["commit_digest"]
                          else "commit digest unchanged (timing-only drift)")
                problems.append(
                    f"{machine_name}/{policy}: fingerprint "
                    f"{want['fingerprint'][:12]} -> "
                    f"{got['fingerprint'][:12]}; ipc {want['ipc']:.4f} -> "
                    f"{got['ipc']:.4f}, cycles {want['cycles']} -> "
                    f"{got['cycles']}; {detail}")
    return problems


# ------------------------------------------------------------- scenarios

def _scenario_task(task: Tuple[str, str, int, int, Optional[str]],
                   ) -> Tuple[str, str, Dict[str, Any]]:
    """Pool worker: one scenario point per task."""
    scenario, policy, instructions, warmup, ledger_path = task
    return scenario, policy, measure_scenario(scenario, policy,
                                              instructions, warmup,
                                              ledger=ledger_path)


def _measure_scenarios(jobs: int,
                       sizes: Dict[str, Tuple[int, int]],
                       ledger: Optional[str] = None,
                       ) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Measure the scenario grid; returns scenario -> policy -> entry.

    ``sizes`` maps scenario -> (instructions, warmup) — the module
    defaults on regen, the frozen file's recorded sizes on check.
    """
    import time

    from repro.analysis.experiments import _pool_context

    run_ledger = None
    if ledger:
        from repro.obs.ledger import RunLedger
        from repro.obs.manifest import host_manifest
        run_ledger = RunLedger(ledger)
        run_ledger.sweep_start(
            total_points=len(sizes) * len(GOLDEN_POLICIES),
            workload="golden-scenarios", machines=["baseline"],
            policies=list(GOLDEN_POLICIES), jobs=jobs,
            manifest=host_manifest())
    t0 = time.perf_counter()
    tasks = [(s, p, sizes[s][0], sizes[s][1], ledger)
             for s in sizes for p in GOLDEN_POLICIES]
    if jobs > 1:
        with _pool_context().Pool(min(jobs, len(tasks))) as pool:
            measured = pool.map(_scenario_task, tasks)
    else:
        measured = [_scenario_task(t) for t in tasks]
    out: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for scenario, policy, entry in measured:
        out.setdefault(scenario, {})[policy] = entry
    if run_ledger is not None:
        run_ledger.sweep_done(elapsed_s=time.perf_counter() - t0,
                              points_run=len(tasks), points_cached=0)
    return out


def _scenario_path(directory: str) -> str:
    return os.path.join(directory, _SCENARIO_FILE)


def regen_scenarios(directory: str = GOLDEN_DIR, jobs: int = 1,
                    ledger: Optional[str] = None) -> str:
    """(Re)freeze the scenario fingerprints; returns the file written."""
    from repro.common.io import atomic_write_json

    os.makedirs(directory, exist_ok=True)
    grid = _measure_scenarios(jobs, GOLDEN_SCENARIOS, ledger=ledger)
    payload = {
        "schema": GOLDEN_SCHEMA,
        "machine": "baseline",
        "scenarios": {
            name: {"instructions": GOLDEN_SCENARIOS[name][0],
                   "warmup": GOLDEN_SCENARIOS[name][1],
                   "points": grid[name]}
            for name in GOLDEN_SCENARIOS
        },
    }
    path = _scenario_path(directory)
    atomic_write_json(path, payload, indent=2)
    return path


def check_scenarios(directory: str = GOLDEN_DIR, jobs: int = 1,
                    ledger: Optional[str] = None) -> List[str]:
    """Re-measure the scenario grid and diff against the frozen file.

    Same contract as :func:`check_golden`: run sizes come from the
    frozen file, the return value is a list of human-readable mismatch
    lines, empty means conformant.
    """
    path = _scenario_path(directory)
    try:
        with open(path) as f:
            payload = json.load(f)
    except OSError:
        return [f"scenarios: missing golden file {path} "
                f"(run `repro golden --regen`)"]
    except ValueError as e:
        return [f"scenarios: unreadable golden file {path}: {e}"]
    if payload.get("schema") != GOLDEN_SCHEMA:
        return [f"scenarios: schema {payload.get('schema')} != "
                f"{GOLDEN_SCHEMA} (run `repro golden --regen`)"]

    problems: List[str] = []
    frozen = payload.get("scenarios", {})
    sizes: Dict[str, Tuple[int, int]] = {}
    for name in GOLDEN_SCENARIOS:
        entry = frozen.get(name)
        if entry is None:
            problems.append(f"scenarios: missing scenario {name!r} "
                            f"(run `repro golden --regen`)")
            continue
        missing = [p for p in GOLDEN_POLICIES
                   if p not in entry.get("points", {})]
        if missing:
            problems.append(f"scenarios/{name}: missing points {missing}")
            continue
        sizes[name] = (entry["instructions"], entry["warmup"])
    if not sizes:
        return problems

    grid = _measure_scenarios(jobs, sizes, ledger=ledger)
    for name in sizes:
        for policy in GOLDEN_POLICIES:
            want = frozen[name]["points"][policy]
            got = grid[name][policy]
            if got["fingerprint"] != want["fingerprint"]:
                detail = (f"commit digest also drifted "
                          f"({want['commit_digest'][:12]} -> "
                          f"{got['commit_digest'][:12]})"
                          if got["commit_digest"] != want["commit_digest"]
                          else "commit digest unchanged (timing-only drift)")
                problems.append(
                    f"{name}/{policy}: fingerprint "
                    f"{want['fingerprint'][:12]} -> "
                    f"{got['fingerprint'][:12]}; ipc {want['ipc']:.4f} -> "
                    f"{got['ipc']:.4f}, cycles {want['cycles']} -> "
                    f"{got['cycles']}; {detail}")
    return problems
