"""Commit-stream architectural oracle.

An independent functional reference model checked in lockstep against
the core's retirement. The workload trace *is* the architectural
program (already unrolled in execution order, with branch outcomes
embedded), so the reference model is a program-order walk of the
``Trace``/``StaticUop`` stream: the oracle keeps its own cursor,
follows the embedded branch outcomes, and — via a commit hook on
:class:`~repro.core.components.CommitUnit` — asserts that what the core
retires is exactly that stream. Runahead episodes, wrong-path fetch and
FLUSH refetch must be *timing-only* perturbations; any drift in
retirement semantics (the failure mode gem5's trace-vs-commit checker
and Sniper's functional feedback guard against) raises an
:class:`OracleViolation` at the exact commit where it becomes visible.

Checks, by catalog name:

``idx-sequence``      committed trace indices are exactly sequential —
                      no skips, no replays, no commits past the end of
                      the stream.
``uop-mismatch``      the committed uop's PC / class / address match
                      the trace's record for that index (and the uop
                      completed execution before retiring).
``branch-outcome``    a committed branch retires with the architectural
                      direction and target the trace embeds.
``double-retire``     every dynamic instance retires at most once, and
                      a squashed instance never retires.
``wrong-path-commit`` no wrong-path instance reaches retirement.
``runahead-commit``   nothing retires while the core is in a runahead
                      or flush-stall interval, and no runahead instance
                      ever retires.
``commit-order``      retirement timestamps are monotonically
                      non-decreasing.
``lsq-reconcile``     a committing load/store still holds its LQ/SQ
                      entry (allocated at dispatch, released by this
                      very commit), so the memory-op subsequence the
                      LSQ saw reconciles with the trace's.
``terminal-commit``   on a finite trace that drains, the stream ends in
                      a clean terminal commit: every materialised uop
                      retired, nothing truncated (:meth:`final_check`).

The oracle is purely observational (like the invariant sanitizer): it
never mutates simulator state, results are bit-identical with or
without it, and it is wiring, not architectural state — checkpoints are
interchangeable between oracle'd and plain cores. It also accumulates a
*commit digest* (an order-sensitive SHA-256 over every retired uop's
architectural fields), which is the oracle half of the golden
conformance fingerprints (:mod:`repro.validate.golden`).
"""

import hashlib
from typing import Set

from repro.common.enums import Mode, UopClass
from repro.isa.uop import DynUop

__all__ = ["CommitOracle", "OracleViolation", "attach_oracle"]

_BRANCH = int(UopClass.BRANCH)


class OracleViolation(AssertionError):
    """One breached oracle check, pinned to the commit that exposed it.

    Attributes:
        check: catalog name (e.g. ``"idx-sequence"``).
        cycle: simulated cycle of the offending commit.
        detail: human-readable description of the drift.
    """

    def __init__(self, check: str, cycle: int, detail: str):
        self.check = check
        self.cycle = cycle
        self.detail = detail
        super().__init__(f"[{check}] at cycle {cycle}: {detail}")


class CommitOracle:
    """Program-order reference model, lockstep-checked at retirement.

    Construct against a live core and :meth:`attach` to its commit
    unit's hook (the hook fires before the commit releases LSQ/register
    resources, so the oracle can reconcile the LSQ entry the commit is
    about to free). A core restored from a warm checkpoint is supported:
    the oracle picks up the walk at the restored window's oldest
    in-flight instruction.
    """

    def __init__(self, core) -> None:
        self.core = core
        self.trace = core.trace
        self.lsq = core.lsq
        self.ra = core.runahead_ctl
        # Resume point: the next architectural commit is the oldest
        # correct-path instruction in flight, or — with an empty window
        # (cold core, or a checkpoint captured at a quiet boundary) —
        # the next instruction the back-end will dispatch.
        q = core.rob._q
        self.next_idx = q[0].static.idx if q else core.backend.next_dispatch_idx
        self.start_idx = self.next_idx
        self.commits = 0
        self.branches = 0
        self.taken_branches = 0
        self.last_commit_cycle = -1
        self._retired_seqs: Set[int] = set()
        self._h = hashlib.sha256()
        self._chained = None

    # ============================================================= wiring

    def attach(self) -> "CommitOracle":
        """Chain onto the commit unit's hook; returns self."""
        cu = self.core.commit_unit
        self._chained = cu.commit_hook
        cu.commit_hook = self.on_commit
        self.core.oracle = self
        return self

    # ========================================================== the check

    def on_commit(self, uop: DynUop, cycle: int) -> None:
        """Lockstep check of one retiring uop against the reference walk."""
        mode = self.ra.mode
        if mode != Mode.NORMAL:
            raise OracleViolation(
                "runahead-commit", cycle,
                f"retirement in mode {mode.name}: {uop!r}")
        if uop.runahead:
            raise OracleViolation(
                "runahead-commit", cycle,
                f"runahead instance retired: {uop!r}")
        if uop.wrong_path:
            raise OracleViolation(
                "wrong-path-commit", cycle,
                f"wrong-path instance retired: {uop!r}")
        if uop.squashed:
            raise OracleViolation(
                "double-retire", cycle,
                f"squashed instance retired: {uop!r}")
        if uop.seq in self._retired_seqs:
            raise OracleViolation(
                "double-retire", cycle,
                f"instance retired twice: {uop!r}")
        if cycle < self.last_commit_cycle:
            raise OracleViolation(
                "commit-order", cycle,
                f"commit at cycle {cycle} after one at "
                f"{self.last_commit_cycle}")

        st = uop.static
        if st.idx != self.next_idx:
            raise OracleViolation(
                "idx-sequence", cycle,
                f"committed trace idx {st.idx}, reference walk expects "
                f"{self.next_idx}")
        ref = self.trace.get(self.next_idx)
        if ref is None:
            raise OracleViolation(
                "idx-sequence", cycle,
                f"commit past the end of the stream: idx {st.idx} "
                f"(trace ends at {len(self.trace)})")
        if st.pc != ref.pc or st.cls != ref.cls or st.addr != ref.addr:
            raise OracleViolation(
                "uop-mismatch", cycle,
                f"idx {st.idx}: committed (pc={st.pc:#x}, cls={st.cls}, "
                f"addr={st.addr}) but the trace records (pc={ref.pc:#x}, "
                f"cls={ref.cls}, addr={ref.addr})")
        if not uop.completed:
            raise OracleViolation(
                "uop-mismatch", cycle,
                f"idx {st.idx} retired without completing execution")
        if st.cls == _BRANCH:
            if st.taken != ref.taken or st.target != ref.target:
                raise OracleViolation(
                    "branch-outcome", cycle,
                    f"idx {st.idx}: committed branch (taken={st.taken}, "
                    f"target={st.target:#x}) but the trace records "
                    f"(taken={ref.taken}, target={ref.target:#x})")
            self.branches += 1
            if ref.taken:
                self.taken_branches += 1
        if st.is_load and not uop.in_lq:
            raise OracleViolation(
                "lsq-reconcile", cycle,
                f"idx {st.idx}: load retiring without its LQ entry")
        if st.is_store and not uop.in_sq:
            raise OracleViolation(
                "lsq-reconcile", cycle,
                f"idx {st.idx}: store retiring without its SQ entry")
        if st.is_load and self.lsq.lq_used <= 0:
            raise OracleViolation(
                "lsq-reconcile", cycle,
                f"idx {st.idx}: load retiring with lq_used="
                f"{self.lsq.lq_used}")
        if st.is_store and self.lsq.sq_used <= 0:
            raise OracleViolation(
                "lsq-reconcile", cycle,
                f"idx {st.idx}: store retiring with sq_used="
                f"{self.lsq.sq_used}")

        # Advance the reference walk, following the embedded outcome.
        self._retired_seqs.add(uop.seq)
        self.next_idx += 1
        self.commits += 1
        self.last_commit_cycle = cycle
        self._h.update(
            b"%d,%d,%d,%d,%d,%d;"
            % (ref.idx, ref.pc, ref.cls, ref.addr,
               1 if ref.taken else 0, ref.target))
        if self._chained is not None:
            self._chained(uop, cycle)

    # ============================================================ summary

    def digest(self) -> str:
        """Order-sensitive hash over every retired uop's architectural
        fields (idx, pc, class, addr, branch direction/target)."""
        return self._h.hexdigest()

    def final_check(self, expect_drained: bool = False) -> None:
        """Whole-run oracle checks, called once after the run completes.

        With ``expect_drained=True`` (a finite trace whose stream ended
        the run) the oracle additionally asserts a clean terminal
        commit: the reference walk consumed the whole stream and the
        window retired everything — a truncated tail means the core
        dropped architectural instructions on the floor.
        """
        cycle = self.core.cycle
        if self.commits != self.next_idx - self.start_idx:
            raise OracleViolation(
                "idx-sequence", cycle,
                f"{self.commits} commits but the reference walk moved "
                f"{self.next_idx - self.start_idx} steps")
        if expect_drained:
            tail = self.trace.get(self.next_idx)
            if tail is not None:
                raise OracleViolation(
                    "terminal-commit", cycle,
                    f"stream truncated: walk stopped at idx "
                    f"{self.next_idx} but the trace continues "
                    f"({tail!r})")
            if len(self.core.rob) != 0:
                raise OracleViolation(
                    "terminal-commit", cycle,
                    f"stream drained but {len(self.core.rob)} uop(s) "
                    f"remain in the window")

    def summary(self) -> dict:
        """Oracle effort counters (for reports and tests)."""
        return {
            "commits": self.commits,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "next_idx": self.next_idx,
            "digest": self.digest(),
        }


def attach_oracle(core) -> CommitOracle:
    """Construct a :class:`CommitOracle` against ``core`` and attach it."""
    return CommitOracle(core).attach()
