"""Simulator sanitizer: per-cycle invariant checking + differential runs.

Two validation layers, both opt-in and zero-cost when disabled:

- :class:`~repro.validate.invariants.InvariantChecker` — a pipeline
  :class:`~repro.core.engine.Component` stepped after every simulated
  cycle that cross-checks the core's redundant state (ROB ordering and
  capacity, LSQ counter reconciliation, physical-register/PRDQ leak
  accounting, ACE interval well-formedness and live-bit capacity, stats
  formula reconciliation). Enabled via ``validate=True`` on
  :func:`repro.sim.simulate`, :class:`repro.core.core.OutOfOrderCore`
  and the checkpoint API; any breach raises
  :class:`~repro.validate.invariants.InvariantViolation` at the exact
  cycle it first becomes observable.
- :func:`~repro.validate.diff.differential_check` — runs the same
  (workload, machine, policy, seed) point through the independent
  execution paths (cold facade, checkpoint fork, multiprocess worker),
  diffs the full :meth:`SimResult.to_dict` payloads field by field, and
  on divergence bisects to the first differing stats-timeline interval.
  Exposed on the command line as ``repro diff``.
- :class:`~repro.validate.oracle.CommitOracle` — a program-order
  functional reference model walking the trace stream, lockstep-checked
  against every retirement via a commit hook; any retirement-semantics
  drift raises :class:`~repro.validate.oracle.OracleViolation`.
  Enabled via ``oracle=True`` on :func:`repro.sim.simulate` and the
  checkpoint API.
- :mod:`repro.validate.golden` — canonical conformance fingerprints
  (stable hash of the full result payload plus the oracle's commit
  digest) for the 25-point baseline matrix, frozen under
  ``tests/golden/`` and checked by ``repro golden``.

See docs/validation.md for the invariant catalog and a walkthrough.
"""

from repro.validate.diff import (
    DiffReport,
    Divergence,
    FieldDiff,
    differential_check,
)
from repro.validate.invariants import InvariantChecker, InvariantViolation
from repro.validate.oracle import CommitOracle, OracleViolation, attach_oracle

__all__ = [
    "CommitOracle",
    "DiffReport",
    "Divergence",
    "FieldDiff",
    "InvariantChecker",
    "InvariantViolation",
    "OracleViolation",
    "attach_oracle",
    "differential_check",
]
