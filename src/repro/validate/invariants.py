"""Per-cycle invariant checker (the simulator sanitizer).

The checker is a :class:`~repro.core.engine.Component` appended to the
engine's pipeline when a core is built with ``validate=True``. It steps
*last* every simulated cycle — after events, commit, the runahead
controller, issue/dispatch and fetch — and cross-checks state that the
simulator tracks redundantly. Every invariant ties a fast counter to the
ground truth it summarises, so silent drift (the failure mode both
simplified-simulator validation papers document) is caught at the first
cycle it becomes observable instead of surfacing as a quietly wrong
figure.

Invariant catalog (see docs/validation.md for the full rationale):

``rob-order``      ROB entries are age-ordered (seq strictly increasing
                   head→tail) and commits leave the ROB in age order.
``rob-capacity``   ROB occupancy never exceeds ``rob_size``.
``lsq-reconcile``  ``LoadStoreQueues.lq_used``/``sq_used`` equal the
                   number of in-flight uops whose ``in_lq``/``in_sq``
                   flags are set, and stay within capacity.
``reg-leak``       free + runahead-borrowed + held-by-in-flight physical
                   registers equals the rename pool size, per class.
``prdq-leak``      every PRDQ entry corresponds to exactly one borrowed
                   register, the queue respects its capacity, and all
                   runahead loans are returned outside runahead mode.
``iq-capacity``    IQ occupancy (incl. runahead-borrowed entries) within
                   capacity; the runahead-borrow counter never negative.
``iq-ready-coherence``  the event-driven ready lists agree with a
                   from-scratch recomputation: every ready uop has zero
                   pending producers, every waiting uop's ``pending``
                   equals the live consumer references held by in-flight
                   producers, per-class FIFOs are age-ordered
                   (``ready_ord`` strictly increasing), and the
                   ``_nready``/``_nonempty`` summaries match the lists.
``fu-scoreboard``  the FU pool's O(1) free-slot counters agree with
                   ground truth recovered from the writeback event heap:
                   pipelined per-class slots used this cycle equal the
                   EV_WB events issued this cycle; non-pipelined busy
                   units equal the in-flight EV_WB events of the class.
``quiesce-coherence``  a quiesced component really has nothing to do:
                   the back-end only quiesces outside NORMAL mode with
                   an empty ready set; the front-end only outside NORMAL
                   mode.
``ace-interval``   every recorded ACE interval is well-formed: known
                   structure, ``end > start``, ``start >= 0``,
                   ``bits >= 0``.
``ace-capacity``   per-structure live ACE bits never exceed the
                   structure's physical capacity at any cycle
                   (whole-run sweep in :meth:`final_check`).
``stats-formula``  registry formulas (``core.ipc``, ``core.mpki``,
                   ``ace.avf``) reconcile against independently
                   recomputed values from the raw counters.

The per-cycle checks are a single O(ROB) sweep; a sanitized run costs
roughly 2-3x host time. A core built without ``validate=True`` never
constructs the checker — the hot path contains no hook, test or branch
for it (the same wiring pattern as the ``obs`` telemetry layer).
"""

import math
from typing import Dict

from repro.common.enums import Mode
from repro.core.engine import EV_WB, Component
from repro.core.issue_queue import NUM_FU_CLASSES
from repro.reliability.ace import STRUCTURES
from repro.reliability.fault_injection import structure_bits

__all__ = ["InvariantChecker", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """One breached invariant, pinned to the cycle it was detected.

    Attributes:
        invariant: catalog name (e.g. ``"lsq-reconcile"``).
        cycle: simulated cycle at detection time.
        detail: human-readable description of the inconsistent state.
    """

    def __init__(self, invariant: str, cycle: int, detail: str):
        self.invariant = invariant
        self.cycle = cycle
        self.detail = detail
        super().__init__(f"[{invariant}] at cycle {cycle}: {detail}")


class InvariantChecker(Component):
    """Cross-checks redundant core state once per simulated cycle.

    Purely observational: it never mutates simulator state, so a
    sanitized run is bit-identical to an unsanitized one. The checker is
    deliberately *not* part of ``core.components`` — it carries no
    architectural state and must stay out of the checkpoint blob (a
    checkpoint captured with the sanitizer on forks cleanly into cores
    with it off, and vice versa).
    """

    name = "invariant_checker"
    state_attrs = ()

    def __init__(self, core) -> None:
        self.core = core
        #: cycles swept (not every wall-clock cycle: fast-forwarded idle
        #: spans are checked once at the jump target, which is exact
        #: because pipeline state is constant across the span)
        self.cycles_checked = 0
        self.commits_checked = 0
        self.ace_intervals_checked = 0
        self.ready_uops_checked = 0
        self.fu_events_checked = 0
        self._last_commit_seq = -1
        self._ace_seen = 0
        self._chained_observer = None

    def bind(self) -> None:
        core = self.core
        self.rob = core.rob
        self.iq = core.iq
        self.lsq = core.lsq
        self.regs = core.regs
        self.prdq = core.prdq
        self.ace = core.ace
        self.stats = core.stats
        self.ra = core.runahead_ctl
        self.engine = core.engine
        self.fus = core.fus
        self.backend = core.backend
        self.fe_stage = core.frontend_stage
        self._struct_bits = structure_bits(core.machine.core)

    def attach_observer(self) -> None:
        """Chain onto the core's observer hook to watch commit order."""
        self._chained_observer = self.core.observer
        self.core.observer = self._on_event

    def _on_event(self, event: str, cycle: int, **data) -> None:
        if event == "commit":
            uop = data["uop"]
            if uop.seq <= self._last_commit_seq:
                raise InvariantViolation(
                    "rob-order", cycle,
                    f"commit out of age order: seq {uop.seq} after "
                    f"{self._last_commit_seq}")
            self._last_commit_seq = uop.seq
            self.commits_checked += 1
        if self._chained_observer is not None:
            self._chained_observer(event, cycle, **data)

    # =============================================================== step

    def step(self, cycle: int) -> int:
        self.check_cycle(cycle)
        return 0  # observational: never counts as pipeline activity

    def check_cycle(self, cycle: int) -> None:
        """Run every per-cycle invariant; raises on the first breach."""
        self.cycles_checked += 1
        rob = self.rob
        if len(rob) > rob.size:
            raise InvariantViolation(
                "rob-capacity", cycle,
                f"occupancy {len(rob)} > size {rob.size}")

        # One sweep of the in-flight window gathers everything the
        # counters summarise, including the ground-truth producer
        # references for the iq-ready-coherence recomputation (an
        # uncompleted producer holds one entry in ``consumers`` per
        # pending reader it will wake at writeback).
        lq_flags = sq_flags = int_held = fp_held = 0
        consumer_refs: Dict[int, int] = {}
        prev_seq = -1
        for u in rob:
            if u.seq <= prev_seq:
                raise InvariantViolation(
                    "rob-order", cycle,
                    f"seq {u.seq} follows {prev_seq} in the ROB")
            prev_seq = u.seq
            if u.in_lq:
                lq_flags += 1
            elif u.in_sq:
                sq_flags += 1
            for consumer in u.consumers:
                key = id(consumer)
                consumer_refs[key] = consumer_refs.get(key, 0) + 1
            st = u.static
            if st.has_dest:
                if st.is_fp:
                    fp_held += 1
                else:
                    int_held += 1

        lsq = self.lsq
        if lsq.lq_used != lq_flags or lsq.sq_used != sq_flags:
            raise InvariantViolation(
                "lsq-reconcile", cycle,
                f"counters (lq={lsq.lq_used}, sq={lsq.sq_used}) != "
                f"in-flight flags (lq={lq_flags}, sq={sq_flags})")
        if not (0 <= lsq.lq_used <= lsq.lq_size
                and 0 <= lsq.sq_used <= lsq.sq_size):
            raise InvariantViolation(
                "lsq-reconcile", cycle,
                f"occupancy out of range: lq={lsq.lq_used}/{lsq.lq_size}, "
                f"sq={lsq.sq_used}/{lsq.sq_size}")

        regs = self.regs
        for klass, free, borrowed, held, pool in (
            ("int", regs.int_free, regs.runahead_int, int_held,
             regs._int_max_free),
            ("fp", regs.fp_free, regs.runahead_fp, fp_held,
             regs._fp_max_free),
        ):
            if free < 0 or borrowed < 0:
                raise InvariantViolation(
                    "reg-leak", cycle,
                    f"{klass} counters negative: free={free}, "
                    f"runahead={borrowed}")
            if free + borrowed + held != pool:
                raise InvariantViolation(
                    "reg-leak", cycle,
                    f"{klass} registers leak: free={free} + "
                    f"runahead={borrowed} + held={held} != pool={pool}")

        prdq = self.prdq
        if len(prdq) > prdq.size:
            raise InvariantViolation(
                "prdq-leak", cycle,
                f"occupancy {len(prdq)} > size {prdq.size}")
        if regs.runahead_int + regs.runahead_fp != len(prdq):
            raise InvariantViolation(
                "prdq-leak", cycle,
                f"borrowed registers ({regs.runahead_int}+"
                f"{regs.runahead_fp}) != PRDQ entries ({len(prdq)})")
        if self.ra.mode != Mode.RUNAHEAD:
            if len(prdq) or regs.runahead_int or regs.runahead_fp \
                    or self.iq.runahead_used:
                raise InvariantViolation(
                    "prdq-leak", cycle,
                    f"runahead loans outlive the interval in mode "
                    f"{self.ra.mode.name}: prdq={len(prdq)}, "
                    f"regs={regs.runahead_int}+{regs.runahead_fp}, "
                    f"iq={self.iq.runahead_used}")

        iq = self.iq
        if iq.runahead_used < 0 or len(iq) > iq.size:
            raise InvariantViolation(
                "iq-capacity", cycle,
                f"occupancy {len(iq)} (runahead {iq.runahead_used}) "
                f"vs size {iq.size}")

        self._check_iq_ready(cycle, consumer_refs)
        self._check_fu_scoreboard(cycle)
        self._check_quiescence(cycle)

        ace = self.ace
        if ace.record_intervals and len(ace.intervals) > self._ace_seen:
            self._check_new_intervals(cycle)

    def _check_iq_ready(self, cycle: int,
                        consumer_refs: Dict[int, int]) -> None:
        """Incremental ready lists vs a from-scratch recomputation.

        ``consumer_refs`` maps ``id(uop)`` to the number of in-flight,
        uncompleted producers still holding a wakeup reference to it —
        the ground truth that ``DynUop.pending`` summarises.
        """
        iq = self.iq
        nready = 0
        mask = 0
        seen = set()
        for fc, dq in enumerate(iq._ready):
            nready += len(dq)
            if dq:
                mask |= 1 << fc
            prev_ord = -1
            for u in dq:
                key = id(u)
                if key in seen:
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"{u!r} queued twice in the ready lists")
                seen.add(key)
                if u.pending != 0:
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"ready uop {u!r} has pending={u.pending}")
                if consumer_refs.get(key, 0):
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"ready uop {u!r} still referenced by "
                        f"{consumer_refs[key]} uncompleted producer(s)")
                if u.squashed:
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"squashed uop {u!r} still on a ready list")
                if u.static.fu_cls != fc:
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"{u!r} (fu class {u.static.fu_cls}) queued under "
                        f"class {fc}")
                if not prev_ord < u.ready_ord < iq._next_ord:
                    raise InvariantViolation(
                        "iq-ready-coherence", cycle,
                        f"wakeup stamps out of order in class {fc}: "
                        f"{u.ready_ord} after {prev_ord} "
                        f"(next stamp {iq._next_ord})")
                prev_ord = u.ready_ord
        if nready != iq._nready:
            raise InvariantViolation(
                "iq-ready-coherence", cycle,
                f"_nready={iq._nready} but the class FIFOs hold {nready}")
        if mask != iq._nonempty:
            raise InvariantViolation(
                "iq-ready-coherence", cycle,
                f"_nonempty={iq._nonempty:#x} but populated classes are "
                f"{mask:#x}")
        for u in iq._waiting:
            if id(u) in seen:
                raise InvariantViolation(
                    "iq-ready-coherence", cycle,
                    f"{u!r} is both waiting and ready")
            if u.squashed:
                raise InvariantViolation(
                    "iq-ready-coherence", cycle,
                    f"squashed uop {u!r} still waiting in the IQ")
            refs = consumer_refs.get(id(u), 0)
            if u.pending != refs or u.pending <= 0:
                raise InvariantViolation(
                    "iq-ready-coherence", cycle,
                    f"waiting uop {u!r} has pending={u.pending} but "
                    f"{refs} uncompleted producer reference(s)")
        self.ready_uops_checked += nready

    def _check_fu_scoreboard(self, cycle: int) -> None:
        """O(1) free-slot counters vs the writeback event heap.

        Every issued uop schedules exactly one EV_WB at a strictly future
        cycle, so at check time (the end of the cycle) the heap still
        holds every uop issued this cycle — the ground truth for the
        pipelined per-cycle slot counters — and, for the non-pipelined
        classes, exactly the uops whose unit is still reserved
        (``done > cycle``), squashed or not: a reserved divider stays
        busy even if its uop was squashed.
        """
        issued_now = [0] * NUM_FU_CLASSES
        in_flight = [0] * NUM_FU_CLASSES
        for _when, _n, kind, payload in self.engine._events:
            if kind != EV_WB:
                continue
            fc = payload.static.fu_cls
            in_flight[fc] += 1
            if payload.issue_cycle == cycle:
                issued_now[fc] += 1
            self.fu_events_checked += 1
        fus = self.fus
        for fc, params in fus.params.items():
            if fus._pipelined[fc]:
                got = fus.used_this_cycle(fc, cycle)
                if got != issued_now[fc]:
                    raise InvariantViolation(
                        "fu-scoreboard", cycle,
                        f"pipelined class {fc}: scoreboard says {got} "
                        f"slot(s) used, event heap says {issued_now[fc]}")
                if got > params.count:
                    raise InvariantViolation(
                        "fu-scoreboard", cycle,
                        f"pipelined class {fc}: {got} slots used > "
                        f"{params.count} units")
            else:
                got = fus.busy_units(fc, cycle)
                if got != in_flight[fc]:
                    raise InvariantViolation(
                        "fu-scoreboard", cycle,
                        f"non-pipelined class {fc}: {got} reserved "
                        f"unit(s), event heap says {in_flight[fc]}")

    def _check_quiescence(self, cycle: int) -> None:
        """A quiesced component must provably have nothing to do."""
        mode = self.ra.mode
        if self.backend.quiesced and (
                mode == Mode.NORMAL or self.iq._nready != 0):
            raise InvariantViolation(
                "quiesce-coherence", cycle,
                f"back-end quiesced in mode {mode.name} with "
                f"{self.iq._nready} ready uop(s)")
        if self.fe_stage.quiesced and mode == Mode.NORMAL:
            raise InvariantViolation(
                "quiesce-coherence", cycle,
                "front-end quiesced in NORMAL mode")

    def _check_new_intervals(self, cycle: int) -> None:
        intervals = self.ace.intervals
        for structure, start, end, bits in intervals[self._ace_seen:]:
            if structure not in STRUCTURES:
                raise InvariantViolation(
                    "ace-interval", cycle,
                    f"unknown structure {structure!r}")
            if start < 0 or end <= start:
                raise InvariantViolation(
                    "ace-interval", cycle,
                    f"malformed interval [{start}, {end}) on {structure}")
            if bits < 0:
                raise InvariantViolation(
                    "ace-interval", cycle,
                    f"negative bits {bits} on {structure}")
            self.ace_intervals_checked += 1
        self._ace_seen = len(intervals)

    # ======================================================== final check

    def final_check(self) -> None:
        """Whole-run invariants, called once after the run completes."""
        cycle = self.core.cycle
        self.check_cycle(cycle)
        if self.ace.record_intervals:
            self._check_ace_capacity(cycle)
        self._check_formulas(cycle)

    def _check_ace_capacity(self, cycle: int) -> None:
        """Per-structure live ACE bits never exceed physical capacity.

        Sweeps each structure's recorded intervals as +bits/-bits deltas
        in cycle order; the running sum is the live ACE bit count, which
        can never exceed the structure's total bits. ``fu`` is skipped:
        functional units are charged width x occupancy but are excluded
        from the paper's AVF denominator, so ``structure_bits`` carries
        no capacity for them.
        """
        per_struct: Dict[str, Dict[int, int]] = {}
        for structure, start, end, bits in self.ace.intervals:
            deltas = per_struct.setdefault(structure, {})
            deltas[start] = deltas.get(start, 0) + bits
            deltas[end] = deltas.get(end, 0) - bits
        for structure, deltas in per_struct.items():
            capacity = self._struct_bits.get(structure, 0)
            if capacity <= 0:
                continue  # fu: no capacity in the AVF denominator
            live = 0
            for c in sorted(deltas):
                live += deltas[c]
                if live > capacity:
                    raise InvariantViolation(
                        "ace-capacity", cycle,
                        f"{structure}: {live} live ACE bits at cycle {c} "
                        f"exceed capacity {capacity}")
            if live != 0:
                raise InvariantViolation(
                    "ace-capacity", cycle,
                    f"{structure}: unterminated intervals leave "
                    f"{live} live bits after the final end")

    def _check_formulas(self, cycle: int) -> None:
        """Registry formulas must match independent recomputation."""
        stats = self.stats
        reg = stats.registry
        cycles = stats.cycles
        expected = {
            "core.ipc": stats.committed / cycles if cycles else 0.0,
            "core.mpki": (1000.0 * stats.demand_llc_misses / stats.committed
                          if stats.committed else 0.0),
        }
        total_bits = self.core.machine.core.total_bits
        denom = total_bits * cycles
        expected["ace.avf"] = self.ace.total / denom if denom else 0.0
        for name, want in expected.items():
            got = reg.value(name)
            if not math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-15):
                raise InvariantViolation(
                    "stats-formula", cycle,
                    f"{name} formula yields {got!r}, independent "
                    f"recomputation yields {want!r}")

    def summary(self) -> Dict[str, int]:
        """Checker effort counters (for reports and tests)."""
        return {
            "cycles_checked": self.cycles_checked,
            "commits_checked": self.commits_checked,
            "ace_intervals_checked": self.ace_intervals_checked,
            "ready_uops_checked": self.ready_uops_checked,
            "fu_events_checked": self.fu_events_checked,
        }
