"""Top-level simulation API.

The one-call entry point for users and for the benchmark harness::

    from repro import simulate, BASELINE, RAR, get_workload

    result = simulate(get_workload("mcf"), BASELINE, RAR, instructions=50_000)
    print(result.ipc, result.abc_total)
"""

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Union

from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, \
    MachineParams
from repro.core.core import OutOfOrderCore
from repro.core.runahead import RunaheadPolicy, get_policy
from repro.isa.trace import Trace
from repro.reliability.metrics import mttf_relative, normalized_abc
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_workload


@dataclass(frozen=True)
class SimResult:
    """Everything a study needs from one simulation run."""

    workload: str
    machine: str
    policy: str
    instructions: int
    cycles: int
    ipc: float
    mlp: float
    mpki: float
    abc: Dict[str, int] = field(default_factory=dict)
    abc_total: int = 0
    total_bits: int = 0
    #: Figure 5 attribution
    abc_head_blocked: int = 0
    abc_full_stall: int = 0
    runahead_triggers: int = 0
    runahead_cycles: int = 0
    runahead_prefetches: int = 0
    runahead_uops_examined: int = 0
    runahead_uops_executed: int = 0
    squashed_uops: int = 0
    flush_triggers: int = 0
    branch_mispredicts: int = 0
    demand_llc_misses: int = 0

    @property
    def avf(self) -> float:
        """ABC / (N × T); 0.0 for an empty exposure volume (no cycles or
        no unprotected bits) instead of raising ``ZeroDivisionError``."""
        denom = self.total_bits * self.cycles
        return self.abc_total / denom if denom else 0.0

    def mttf_rel(self, baseline: "SimResult") -> float:
        """This run's MTTF normalised to a baseline run (higher = better)."""
        return mttf_relative(baseline.abc_total, baseline.cycles,
                             self.abc_total, self.cycles)

    def abc_rel(self, baseline: "SimResult") -> float:
        """This run's ABC normalised to a baseline run (lower = better)."""
        return normalized_abc(baseline.abc_total, self.abc_total)

    def ipc_rel(self, baseline: "SimResult") -> float:
        return self.ipc / baseline.ipc if baseline.ipc else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable payload; round-trips via :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_dict`. Unknown keys are rejected (a
        ``TypeError``), so stale cache entries fail loudly rather than
        deserialise into a half-filled result."""
        return cls(**payload)


def simulate(
    workload: Union[WorkloadSpec, Trace, str],
    machine: MachineParams,
    policy: Union[RunaheadPolicy, str],
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: Optional[int] = None,
    telemetry=None,
    validate: bool = False,
    oracle: bool = False,
) -> SimResult:
    """Run one workload on one machine under one policy.

    Args:
        workload: a catalog name, a :class:`WorkloadSpec`, or a raw trace.
        machine: machine configuration (e.g. ``repro.BASELINE``).
        policy: a :class:`RunaheadPolicy` or its name (e.g. ``"RAR"``).
        instructions: committed instructions measured (after warmup).
        warmup: committed instructions simulated before counters reset —
            warms caches, predictor and the SST.
        seed: trace/wrong-path RNG seed override. ``seed=0`` is a real
            seed, distinct from ``None`` (the workload's default); equal
            seeds give bit-identical results.
        telemetry: optional :class:`repro.obs.Telemetry`; attached to the
            core, with the measurement window marked after warmup so its
            stats dump reconciles with the returned result.
        validate: run with the per-cycle invariant sanitizer enabled
            (:mod:`repro.validate`); any breach raises
            :class:`~repro.validate.invariants.InvariantViolation`.
            Results are bit-identical with or without.
        oracle: lockstep-check every retirement (warmup included)
            against the commit-stream architectural oracle
            (:mod:`repro.validate.oracle`); any retirement-semantics
            drift raises
            :class:`~repro.validate.oracle.OracleViolation`. Purely
            observational, bit-identical with or without.

    Returns:
        a :class:`SimResult` with the measured window's statistics.
    """
    if isinstance(workload, str):
        workload = get_workload(workload)
    regions = []
    # Duck-typed: WorkloadSpec, TraceWorkload and friends all quack
    # build_trace/resident_regions; a bare Trace is used directly.
    if hasattr(workload, "build_trace"):
        name = workload.name
        trace = workload.build_trace(seed=seed)
        regions = workload.resident_regions()
    else:
        name = workload.name
        trace = workload
    if isinstance(policy, str):
        policy = get_policy(policy)
    if instructions <= 0:
        raise ValueError("instructions must be positive")

    # Pass the seed through explicitly: `seed or 0` would conflate
    # seed=0 with seed=None.
    core_seed = 0 if seed is None else seed
    core = OutOfOrderCore(machine, trace, policy, seed=core_seed,
                          telemetry=telemetry, validate=validate)
    if oracle:
        # Lazy import, same pattern as the invariant checker wiring.
        from repro.validate.oracle import attach_oracle
        attach_oracle(core)
    for level, base, size in regions:
        core.mem.preload(base, size, level)
    if warmup > 0:
        core.run(warmup)
    if telemetry is not None:
        telemetry.begin_measurement(core)
    start = _snapshot(core)
    core.run(instructions)
    result = _delta_result(core, start, name)
    if core.checker is not None:
        core.checker.final_check()
    if core.oracle is not None:
        core.oracle.final_check(expect_drained=core.engine.exhausted)
    if telemetry is not None:
        telemetry.end_measurement(core, result)
    return result


def _snapshot(core: OutOfOrderCore) -> Dict[str, int]:
    snap = core.stats.snapshot()
    snap["_cycle"] = core.cycle
    snap["_abc"] = dict(core.ace.bits)
    snap["_abc_hb"] = core.ace.bits_in_head_blocked
    snap["_abc_fs"] = core.ace.bits_in_full_stall
    return snap


def _delta_result(core: OutOfOrderCore, start: Dict[str, int],
                  name: str) -> SimResult:
    s = core.stats
    cycles = core.cycle - start["_cycle"]
    committed = s.committed - start["committed"]
    abc = {k: v - start["_abc"][k] for k, v in core.ace.bits.items()}
    mlp_cycles = s.mlp_cycles - start["mlp_cycles"]
    mlp_sum = s.mlp_sum - start["mlp_sum"]
    demand_misses = s.demand_llc_misses - start["demand_llc_misses"]
    return SimResult(
        workload=name,
        machine=core.machine.name,
        policy=core.policy.name,
        instructions=committed,
        cycles=cycles,
        ipc=committed / cycles if cycles else 0.0,
        mlp=mlp_sum / mlp_cycles if mlp_cycles else 0.0,
        mpki=1000.0 * demand_misses / committed if committed else 0.0,
        abc=abc,
        abc_total=sum(abc.values()),
        total_bits=core.machine.core.total_bits,
        abc_head_blocked=core.ace.bits_in_head_blocked - start["_abc_hb"],
        abc_full_stall=core.ace.bits_in_full_stall - start["_abc_fs"],
        runahead_triggers=s.runahead_triggers - start["runahead_triggers"],
        runahead_cycles=s.runahead_cycles - start["runahead_cycles"],
        runahead_prefetches=s.runahead_prefetches - start["runahead_prefetches"],
        runahead_uops_examined=(s.runahead_uops_examined
                                - start["runahead_uops_examined"]),
        runahead_uops_executed=(s.runahead_uops_executed
                                - start["runahead_uops_executed"]),
        squashed_uops=(
            s.squashed_mispredict + s.squashed_runahead_flush
            + s.squashed_flush_mechanism
            - start["squashed_mispredict"] - start["squashed_runahead_flush"]
            - start["squashed_flush_mechanism"]),
        flush_triggers=s.flush_triggers - start["flush_triggers"],
        branch_mispredicts=s.branch_mispredicted - start["branch_mispredicted"],
        demand_llc_misses=demand_misses,
    )
