"""Aggregation helpers, following John's methodology as the paper does:

arithmetic mean for ABC and MLP, harmonic mean for IPC(-ratios), geometric
mean for MTTF(-ratios).
"""

import math
from typing import Iterable, List


def _as_list(values: Iterable[float]) -> List[float]:
    vals = list(values)
    if not vals:
        raise ValueError("cannot aggregate an empty sequence")
    return vals


def amean(values: Iterable[float]) -> float:
    """Arithmetic mean (ABC, MLP)."""
    vals = _as_list(values)
    return sum(vals) / len(vals)


def hmean(values: Iterable[float]) -> float:
    """Harmonic mean (IPC)."""
    vals = _as_list(values)
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (MTTF)."""
    vals = _as_list(values)
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
