"""Terminal (ASCII) plotting for quick, dependency-free visualisation.

The benchmark harness emits tabular rows; these helpers render them as
horizontal bar charts and scatter grids so the paper's figures can be
eyeballed straight from a terminal. Pure text, no plotting libraries.
"""

from typing import Dict, List, Sequence, Tuple


def bar_chart(
    data: Dict[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bars scaled to the maximum value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ████ 2.00
    b  ██   1.00
    """
    if not data:
        raise ValueError("nothing to plot")
    peak = max(data.values())
    if peak <= 0:
        raise ValueError("bar_chart needs at least one positive value")
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for key, value in data.items():
        n = max(0, round(width * value / peak))
        bar = "█" * n + " " * (width - n)
        lines.append(f"{key:<{label_w}}  {bar} {fmt.format(value)}")
    return "\n".join(lines)


def stacked_bars(
    rows: Dict[str, Dict[str, float]],
    segments: Sequence[str],
    width: int = 50,
    title: str = "",
) -> str:
    """Stacked horizontal bars (one glyph per segment, cycled).

    ``rows`` maps bar label → {segment: value}; segment order fixes the
    stacking order and the glyph assignment.
    """
    glyphs = "█▓▒░▞▚▐▍"
    totals = {k: sum(v.get(s, 0.0) for s in segments) for k, v in rows.items()}
    peak = max(totals.values())
    if peak <= 0:
        raise ValueError("stacked_bars needs positive totals")
    label_w = max(len(k) for k in rows)
    lines = [title] if title else []
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={s}"
                       for i, s in enumerate(segments))
    lines.append(f"{'':<{label_w}}  [{legend}]")
    for key, segs in rows.items():
        bar = ""
        for i, s in enumerate(segments):
            n = round(width * segs.get(s, 0.0) / peak)
            bar += glyphs[i % len(glyphs)] * n
        lines.append(f"{key:<{label_w}}  {bar[:width * 2]} "
                     f"{totals[key]:.3g}")
    return "\n".join(lines)


def scatter(
    points: Dict[str, Tuple[float, float]],
    width: int = 60,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
) -> str:
    """Character-grid scatter plot with labelled points.

    Each point is drawn as the first letter of its label; a side legend
    maps letters back to labels. Axes are linearly scaled to the data
    (with a small margin) and annotated with min/max.
    """
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xpad = (x1 - x0) * 0.08 or max(abs(x1), 1.0) * 0.08
    ypad = (y1 - y0) * 0.08 or max(abs(y1), 1.0) * 0.08
    x0, x1 = x0 - xpad, x1 + xpad
    y0, y1 = y0 - ypad, y1 + ypad

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend = []
    for label, (x, y) in points.items():
        col = round((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - round((y - y0) / (y1 - y0) * (height - 1))
        mark = label[0].upper()
        grid[row][col] = mark
        legend.append(f"{mark}={label}")

    lines = [title] if title else []
    lines.append(f"{ylabel} ({y1:.3g} top, {y0:.3g} bottom)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{xlabel}: {x0:.3g} .. {x1:.3g}    {'  '.join(legend)}")
    return "\n".join(lines)
