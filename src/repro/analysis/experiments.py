"""Memoised experiment runner.

Several figures reuse the same (workload, machine, policy) points — e.g.
Figures 7 and 8 plot reliability and performance of the *same* five runs.
:class:`ExperimentRunner` caches results in memory and optionally on disk
(JSON) so each point simulates exactly once per benchmark session.
"""

import json
import math
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.common.params import MachineParams
from repro.core.runahead import RunaheadPolicy, get_policy
from repro.sim import SimResult, simulate
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_workload


@dataclass(frozen=True)
class MultiSeedResult:
    """Mean ± sample-stddev of a metric across trace seeds.

    Synthetic workloads are stochastic realisations of a benchmark's
    character; re-running under different trace seeds quantifies how much
    of a result is the mechanism and how much is realisation noise.
    """

    metric: str
    values: tuple
    mean: float
    stddev: float

    @property
    def rel_stddev(self) -> float:
        return self.stddev / self.mean if self.mean else 0.0


def summarize_seeds(metric: str, values: Iterable[float]) -> MultiSeedResult:
    vals = tuple(values)
    if not vals:
        raise ValueError("no values to summarise")
    mean = sum(vals) / len(vals)
    var = (sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
           if len(vals) > 1 else 0.0)
    return MultiSeedResult(metric=metric, values=vals, mean=mean,
                           stddev=math.sqrt(var))


@dataclass(frozen=True)
class RunKey:
    """Cache key identifying one simulation point.

    ``config_digest`` covers the *full* machine configuration, so two
    machines that share a display name but differ in any parameter never
    collide in the cache.
    """

    workload: str
    machine: str
    policy: str
    instructions: int
    warmup: int
    config_digest: str = ""

    @staticmethod
    def digest(machine: MachineParams) -> str:
        import hashlib
        return hashlib.md5(repr(machine).encode()).hexdigest()[:10]

    def as_str(self) -> str:
        return (f"{self.workload}|{self.machine}|{self.policy}"
                f"|{self.instructions}|{self.warmup}|{self.config_digest}")


#: Bump when SimResult's schema changes: stale on-disk payloads would
#: otherwise deserialise with silently-defaulted new fields.
_CACHE_SCHEMA = 2


class ExperimentRunner:
    """Runs and caches simulation points.

    Args:
        instructions: measured committed instructions per point.
        warmup: warmup instructions per point.
        cache_path: optional JSON file for cross-process persistence.
    """

    def __init__(self, instructions: int = 30_000, warmup: int = 5_000,
                 cache_path: Optional[str] = None):
        self.instructions = instructions
        self.warmup = warmup
        self.cache_path = cache_path
        self._cache: Dict[str, SimResult] = {}
        self._machines: Dict[str, MachineParams] = {}
        if cache_path and os.path.exists(cache_path):
            self._load_disk_cache()

    # ------------------------------------------------------------------ api

    def run(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
    ) -> SimResult:
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        key = RunKey(spec.name, machine.name, pol.name,
                     self.instructions, self.warmup,
                     RunKey.digest(machine)).as_str()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = simulate(spec, machine, pol,
                          instructions=self.instructions, warmup=self.warmup)
        self._cache[key] = result
        self._machines[machine.name] = machine
        if self.cache_path:
            self._save_disk_cache()
        return result

    def run_seeds(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
        seeds: Iterable[int],
    ) -> List[SimResult]:
        """Uncached multi-seed runs (each seed is a fresh trace
        realisation of the same benchmark character)."""
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        return [
            simulate(spec, machine, pol, instructions=self.instructions,
                     warmup=self.warmup, seed=seed)
            for seed in seeds
        ]

    def run_matrix(
        self,
        workloads: Iterable[Union[str, WorkloadSpec]],
        machine: MachineParams,
        policies: Iterable[Union[str, RunaheadPolicy]],
    ) -> Dict[str, Dict[str, SimResult]]:
        """policy name -> workload name -> result."""
        out: Dict[str, Dict[str, SimResult]] = {}
        policies = list(policies)
        for w in workloads:
            for p in policies:
                r = self.run(w, machine, p)
                out.setdefault(r.policy, {})[r.workload] = r
        return out

    # ---------------------------------------------------------- disk cache

    def _load_disk_cache(self) -> None:
        try:
            with open(self.cache_path) as f:
                raw = json.load(f)
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("schema") != _CACHE_SCHEMA:
            return  # stale/legacy cache: recompute everything
        for key, payload in raw.get("data", {}).items():
            try:
                self._cache[key] = SimResult(**payload)
            except TypeError:
                continue  # stale schema: ignore and recompute

    def _save_disk_cache(self) -> None:
        payload = {
            "schema": _CACHE_SCHEMA,
            "data": {k: asdict(v) for k, v in self._cache.items()},
        }
        tmp = f"{self.cache_path}.tmp"
        try:
            with open(tmp, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, self.cache_path)
        except OSError:
            pass  # cache is an optimisation, never a failure


#: Shared module-level runner so all benchmark files reuse one cache.
_SHARED: Optional[ExperimentRunner] = None


def shared_runner(instructions: int = 30_000, warmup: int = 5_000,
                  cache_path: Optional[str] = None) -> ExperimentRunner:
    """Process-wide runner; the first caller fixes the run sizes."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentRunner(instructions=instructions, warmup=warmup,
                                   cache_path=cache_path)
    return _SHARED
