"""Memoised experiment runner.

Several figures reuse the same (workload, machine, policy) points — e.g.
Figures 7 and 8 plot reliability and performance of the *same* five runs.
:class:`ExperimentRunner` caches results in memory and optionally on disk
(JSON) so each point simulates exactly once per benchmark session.

:meth:`ExperimentRunner.run_matrix` additionally knows how to *sweep*:
points are grouped by workload, each group can share one warmed
checkpoint across its policies (``share_warmup=True``), and groups fan
out across the crash-tolerant farm scheduler
(:mod:`repro.analysis.farm`, ``jobs=N``) with the disk cache as the
merge point — flushed incrementally and idempotently as points land,
so a crash mid-sweep preserves every completed point. Failing points
are isolated and reported on the returned :class:`MatrixResult`
instead of tearing the sweep down.
"""

import json
import math
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, \
    Union

from repro.common.io import atomic_write_json
from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, \
    MachineParams
from repro.core.runahead import RunaheadPolicy, get_policy
from repro.obs import log as obs_log
from repro.sim import SimResult, simulate
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_workload

_log = obs_log.get_logger("sweep")


@dataclass(frozen=True)
class MultiSeedResult:
    """Mean ± sample-stddev of a metric across trace seeds.

    Synthetic workloads are stochastic realisations of a benchmark's
    character; re-running under different trace seeds quantifies how much
    of a result is the mechanism and how much is realisation noise.
    """

    metric: str
    values: tuple
    mean: float
    stddev: float

    @property
    def rel_stddev(self) -> float:
        return self.stddev / self.mean if self.mean else 0.0


def summarize_seeds(metric: str, values: Iterable[float]) -> MultiSeedResult:
    vals = tuple(values)
    if not vals:
        raise ValueError("no values to summarise")
    mean = sum(vals) / len(vals)
    var = (sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
           if len(vals) > 1 else 0.0)
    return MultiSeedResult(metric=metric, values=vals, mean=mean,
                           stddev=math.sqrt(var))


@dataclass(frozen=True)
class RunKey:
    """Cache key identifying one simulation point.

    ``config_digest`` covers the *full* machine configuration, so two
    machines that share a display name but differ in any parameter never
    collide in the cache. ``variant`` tags results produced by an
    approximate run mode — shared-warmup points carry ``"sw:<policy>"``
    (the policy warmup ran under) and fast-warmup points carry
    ``"wm:fast"`` (composed as ``"wm:fast+sw:<policy>"`` when both
    apply) so they can never poison the cache entries of exact
    per-policy runs.
    """

    workload: str
    machine: str
    policy: str
    instructions: int
    warmup: int
    config_digest: str = ""
    variant: str = ""

    @staticmethod
    def digest(machine: MachineParams) -> str:
        import hashlib
        return hashlib.md5(repr(machine).encode()).hexdigest()[:10]

    def as_str(self) -> str:
        base = (f"{self.workload}|{self.machine}|{self.policy}"
                f"|{self.instructions}|{self.warmup}|{self.config_digest}")
        return f"{base}|{self.variant}" if self.variant else base


#: Bump when SimResult's schema changes: stale on-disk payloads would
#: otherwise deserialise with silently-defaulted new fields.
_CACHE_SCHEMA = 2


def _variant(share_warmup: bool, policy: str, warmup_policy: str,
             warmup_mode: str = "detailed") -> str:
    """Cache-key variant for one point of a sweep.

    A detailed shared-warmup point measured under the *same* policy that
    warmed the checkpoint is bit-identical to a cold run, so it shares
    the exact-run cache slot; any other pairing is an approximation and
    gets its own tagged slot. A non-default ``warmup_mode`` always tags
    (``wm:fast``): fast-warmed results are approximate even when warmup
    and measurement policies match, so they must never alias exact runs.
    """
    parts = []
    if warmup_mode != "detailed":
        parts.append(f"wm:{warmup_mode}")
    if share_warmup and policy != warmup_policy:
        parts.append(f"sw:{warmup_policy}")
    return "+".join(parts)


def _pool_context():
    """Fork when the platform offers it: workers inherit ``sys.path``
    (pytest injects ``src/`` without setting PYTHONPATH) and the warmed
    import state. Falls back to the platform default elsewhere."""
    import multiprocessing as mp
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context()


#: Fault-injection hook: when this env var names a ``workload:policy``
#: pair, that point raises instead of simulating. It fires *inside* the
#: per-point isolation below, so tests and the CI farm smoke can force a
#: deterministic ``point_error`` through either execution path.
CHAOS_RAISE_ENV = "REPRO_FARM_RAISE"


def _chaos_maybe_raise(workload: str, policy: str) -> None:
    if os.environ.get(CHAOS_RAISE_ENV) == f"{workload}:{policy}":
        raise RuntimeError(
            f"chaos: injected failure for {workload}:{policy} "
            f"({CHAOS_RAISE_ENV})")


def _point_error(spec, machine, name: str, variant: str,
                 exc: BaseException, tb: str) -> Dict[str, Any]:
    return {"workload": spec.name, "machine": machine.name, "policy": name,
            "variant": variant, "error": repr(exc), "traceback": tb}


def _iter_group_points(task: Tuple) -> Iterator[Dict[str, Any]]:
    """Simulate one workload group, yielding one outcome per policy.

    Module-level so it pickles into pool/farm workers. The task carries
    only picklable inputs (spec, machine params, policy *names*, sizes,
    the ledger *path*) — traces and checkpoints are rebuilt inside the
    worker because a lazily-materialised
    :class:`~repro.isa.trace.Trace` buffers a generator and cannot
    cross a process boundary.

    Each yielded outcome is a plain dict: successful points carry the
    ``SimResult.to_dict()`` payload under ``"payload"``; a raising point
    is **isolated** — its outcome carries ``"error"``/``"traceback"``
    instead and the remaining policies of the group still run, so one
    bad point can no longer discard its siblings' completed work. The
    one group-level failure mode left is the shared warmup itself
    raising, which fails every point of the group (there is nothing to
    measure from) — still isolated from *other* groups.

    Shared warmups go through the process-local
    :class:`~repro.checkpoint.CheckpointCache`, so a long-lived farm
    worker warms each (workload, machine, policy, warmup) once across
    every request it serves.

    With a ledger path, the worker appends its own life-cycle events
    (``worker_heartbeat`` / ``warmup_shared`` / ``point_start`` /
    ``point_done`` / ``point_error``) — every terminal event carries the
    per-point provenance manifest, so the ledger explains failures post
    mortem.
    """
    (spec, machine, policy_names, instructions, warmup, share_warmup,
     warmup_policy, stats_dir, validate, oracle, ledger_path,
     warmup_mode) = task
    ledger = None
    if ledger_path:
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger_path)
        ledger.worker_heartbeat(workload=spec.name,
                                group_points=len(policy_names), done=0)
    checkpoint = None
    if share_warmup:
        from repro.checkpoint import process_checkpoint_cache
        try:
            checkpoint = process_checkpoint_cache().get_or_warm(
                spec, machine, warmup_policy, warmup=warmup,
                validate=validate, ledger=ledger,
                warmup_mode=warmup_mode)
        except Exception as e:
            import traceback
            tb = traceback.format_exc()
            _log.error("shared warmup failed", exc_info=True, extra={
                "data": {"workload": spec.name}})
            for name in policy_names:
                variant = _variant(share_warmup, name, warmup_policy,
                                   warmup_mode)
                if ledger is not None:
                    ledger.point_error(workload=spec.name,
                                       machine=machine.name, policy=name,
                                       variant=variant, error=repr(e),
                                       traceback_text=tb)
                yield _point_error(spec, machine, name, variant, e, tb)
            return
    for done, name in enumerate(policy_names):
        variant = _variant(share_warmup, name, warmup_policy, warmup_mode)
        manifest = None
        if ledger is not None or stats_dir:
            from repro.obs.manifest import point_manifest
            manifest = point_manifest(spec.name, machine, name,
                                      instructions, warmup, variant=variant,
                                      warmup_mode=warmup_mode)
        if ledger is not None:
            ledger.point_start(workload=spec.name, machine=machine.name,
                               policy=name, variant=variant)
        telemetry = None
        if stats_dir:
            from repro.obs import Telemetry
            telemetry = Telemetry(interval=1000, profile=True)
        t0 = time.perf_counter()
        try:
            _chaos_maybe_raise(spec.name, name)
            point_checkpoint = checkpoint
            if point_checkpoint is None and warmup_mode != "detailed":
                # Non-shared fast warmup: warm per measured policy (the
                # exact-policy shape of the default path) through the
                # fast walk, deduped by the process checkpoint cache. A
                # warmup failure here is isolated per point.
                from repro.checkpoint import process_checkpoint_cache
                point_checkpoint = process_checkpoint_cache().get_or_warm(
                    spec, machine, name, warmup=warmup,
                    validate=validate, ledger=ledger,
                    warmup_mode=warmup_mode)
            if point_checkpoint is not None:
                from repro.checkpoint import simulate_from
                result = simulate_from(point_checkpoint, name,
                                       instructions=instructions,
                                       telemetry=telemetry,
                                       validate=validate, oracle=oracle)
            else:
                result = simulate(spec, machine, name,
                                  instructions=instructions,
                                  warmup=warmup, telemetry=telemetry,
                                  validate=validate, oracle=oracle)
        except Exception as e:
            import traceback
            tb = traceback.format_exc()
            if ledger is not None:
                ledger.point_error(workload=spec.name,
                                   machine=machine.name, policy=name,
                                   variant=variant, error=repr(e),
                                   traceback_text=tb, manifest=manifest)
            _log.error("point failed", exc_info=True, extra={"data": {
                "workload": spec.name, "policy": name}})
            yield _point_error(spec, machine, name, variant, e, tb)
            continue
        wall_s = time.perf_counter() - t0
        if telemetry is not None:
            path = os.path.join(
                stats_dir,
                f"{result.workload}_{result.machine}_{result.policy}.json")
            telemetry.write_stats(path, result, manifest=manifest)
        if ledger is not None:
            kips = (result.instructions / wall_s / 1000.0) if wall_s else 0.0
            ledger.point_done(workload=result.workload,
                              machine=result.machine, policy=result.policy,
                              variant=variant, wall_s=wall_s,
                              kips=round(kips, 2),
                              ipc=round(result.ipc, 4), manifest=manifest)
            ledger.worker_heartbeat(workload=spec.name,
                                    group_points=len(policy_names),
                                    done=done + 1)
        _log.debug("point done", extra={"data": {
            "workload": spec.name, "policy": name,
            "wall_s": round(wall_s, 3)}})
        yield {"workload": result.workload, "machine": result.machine,
               "policy": result.policy, "variant": variant,
               "payload": result.to_dict()}


def _run_group(task: Tuple) -> List[Dict[str, Any]]:
    """One workload group, fully materialised (the serial path)."""
    return list(_iter_group_points(task))


class MatrixResult(Dict[str, Dict[str, "SimResult"]]):
    """``run_matrix``'s return value: policy name -> workload -> result.

    A plain dict — existing callers index it unchanged — plus the
    sweep's failure records. Failed points no longer raise through the
    pool and discard their siblings' completed work; each is reported
    here as a dict with the point coordinates
    (``workload``/``machine``/``policy``/``variant``), the ``error``
    and ``traceback``, and a ``quarantined`` flag for points the farm
    scheduler gave up on after repeated worker deaths. Callers that
    want the old fail-loudly behaviour chain
    :meth:`raise_if_failed`.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.failures: List[Dict[str, Any]] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> "MatrixResult":
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)} sweep point(s) failed; first: "
                f"{first['workload']}/{first['policy']}: {first['error']}")
        return self


class ExperimentRunner:
    """Runs and caches simulation points.

    Args:
        instructions: measured committed instructions per point.
        warmup: warmup instructions per point.
        cache_path: optional JSON file for cross-process persistence.
    """

    def __init__(self, instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 cache_path: Optional[str] = None):
        self.instructions = instructions
        self.warmup = warmup
        self.cache_path = cache_path
        self._cache: Dict[str, SimResult] = {}
        self._machines: Dict[str, MachineParams] = {}
        if cache_path and os.path.exists(cache_path):
            self._load_disk_cache()

    # ------------------------------------------------------------------ api

    def run(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
    ) -> SimResult:
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        key = self._point_key(spec.name, machine, pol.name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = simulate(spec, machine, pol,
                          instructions=self.instructions, warmup=self.warmup)
        self._cache[key] = result
        self._machines[machine.name] = machine
        if self.cache_path:
            self._save_disk_cache()
        return result

    def run_seeds(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
        seeds: Iterable[int],
    ) -> List[SimResult]:
        """Uncached multi-seed runs (each seed is a fresh trace
        realisation of the same benchmark character)."""
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        return [
            simulate(spec, machine, pol, instructions=self.instructions,
                     warmup=self.warmup, seed=seed)
            for seed in seeds
        ]

    def run_matrix(
        self,
        workloads: Iterable[Union[str, WorkloadSpec]],
        machine: MachineParams,
        policies: Iterable[Union[str, RunaheadPolicy]],
        *,
        jobs: int = 1,
        share_warmup: bool = False,
        warmup_policy: Union[str, RunaheadPolicy] = "OOO",
        warmup_mode: str = "detailed",
        stats_dir: Optional[str] = None,
        validate: bool = False,
        oracle: bool = False,
        ledger: Optional[Any] = None,
        scheduler: Optional[Any] = None,
    ) -> "MatrixResult":
        """Sweep the full matrix; returns policy name -> workload -> result.

        Points are grouped by workload. With ``share_warmup`` each group
        warms **once** under ``warmup_policy`` and forks the checkpoint
        for every measured policy — an explicit approximation (warmup
        behaviour is policy-dependent), cached under a ``sw:`` variant
        key so it never collides with exact per-policy runs.
        ``warmup_mode="fast"`` replaces the detailed warmup with the
        functional walk (:mod:`repro.core.fastfwd`) — warming per
        policy, or once per group when combined with ``share_warmup`` —
        and tags every result with a ``wm:fast`` variant so fast and
        exact points never share cache slots. ``validate``
        runs every point under the invariant sanitizer
        (:mod:`repro.validate`); sanitized results are bit-identical to
        unsanitized ones, so they share the same cache slots — but note
        cached points satisfied from the cache were not re-checked.
        ``oracle`` likewise lockstep-checks every point's retirement
        stream against the architectural oracle
        (:mod:`repro.validate.oracle`), also bit-identical.

        With ``jobs > 1`` groups fan out across the crash-tolerant farm
        scheduler (:class:`~repro.analysis.farm.FarmScheduler`): results
        stream back per point (no barrier at group boundaries), work
        held by a SIGKILLed worker is requeued with bounded retries, and
        points that repeatedly kill their worker are quarantined. A
        raising point is isolated by the group runner either way and
        reported in the returned :class:`MatrixResult`'s ``failures``
        instead of tearing the sweep down. ``scheduler`` accepts an
        already-running :class:`~repro.analysis.farm.FarmScheduler`
        (``repro serve`` passes its long-lived one so warm checkpoints
        survive across requests); otherwise an ephemeral scheduler is
        spun up for the call.

        The in-memory/disk cache is the merge point. Disk flushes are
        incremental — after every point in farm mode, after every group
        serially — and idempotent (keyed, read-merge-write), so a crash
        mid-sweep preserves every completed point and a requeued retry
        merges over its own partial flush harmlessly.

        ``ledger`` (a path or :class:`~repro.obs.ledger.RunLedger`)
        records the sweep's life cycle as an append-only JSONL event
        stream — sweep envelope, per-point terminal events with
        provenance manifests, worker heartbeats, requeue/quarantine
        records — tailable live with ``repro top``. Purely
        observational: results are bit-identical with the ledger on or
        off. Worker log records are routed back through the parent's
        handlers via a multiprocessing queue, so
        ``--log-json``/``--quiet`` apply to workers too.
        """
        from repro.core.fastfwd import validate_warmup_mode
        validate_warmup_mode(warmup_mode)
        specs = [get_workload(w) if isinstance(w, str) else w
                 for w in workloads]
        pols = [get_policy(p) if isinstance(p, str) else p for p in policies]
        wp = (get_policy(warmup_policy) if isinstance(warmup_policy, str)
              else warmup_policy)
        if stats_dir:
            os.makedirs(stats_dir, exist_ok=True)
        if isinstance(ledger, str):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        t_start = time.perf_counter()
        if ledger is not None:
            from repro.obs.manifest import host_manifest
            ledger.sweep_start(
                total_points=len(specs) * len(pols),
                machine=machine.name,
                workloads=[s.name for s in specs],
                policies=[p.name for p in pols],
                jobs=jobs, share_warmup=share_warmup,
                warmup_policy=wp.name, warmup_mode=warmup_mode,
                instructions=self.instructions,
                warmup=self.warmup, manifest=host_manifest())
            _log.info("sweep start", extra={"data": {
                "points": len(specs) * len(pols), "machine": machine.name,
                "jobs": jobs, "ledger": ledger.path}})

        out = MatrixResult()
        digest = RunKey.digest(machine)
        tasks: List[Tuple] = []
        n_cached = 0
        for spec in specs:
            missing: List[str] = []
            for pol in pols:
                variant = _variant(share_warmup, pol.name, wp.name,
                                   warmup_mode)
                key = self._point_key(spec.name, machine, pol.name,
                                      variant=variant, digest=digest)
                cached = self._cache.get(key)
                if cached is not None:
                    out.setdefault(pol.name, {})[spec.name] = cached
                    n_cached += 1
                    if stats_dir:
                        # Render the artifact from the cached result
                        # instead of silently re-simulating the point.
                        self._write_cached_stats(stats_dir, cached,
                                                 machine, variant,
                                                 warmup_mode)
                    if ledger is not None:
                        from repro.obs.manifest import point_manifest
                        ledger.point_cached(
                            workload=spec.name, machine=machine.name,
                            policy=pol.name, variant=variant, key=key,
                            manifest=point_manifest(
                                spec.name, machine, pol.name,
                                self.instructions, self.warmup,
                                variant=variant,
                                warmup_mode=warmup_mode))
                else:
                    missing.append(pol.name)
            if missing:
                tasks.append((spec, machine, tuple(missing),
                              self.instructions, self.warmup, share_warmup,
                              wp.name, stats_dir, validate, oracle,
                              ledger.path if ledger is not None else None,
                              warmup_mode))
        if not tasks:
            if ledger is not None:
                ledger.sweep_done(elapsed_s=time.perf_counter() - t_start,
                                  points_run=0, points_cached=n_cached)
            return out

        self._machines[machine.name] = machine
        seen_keys: set = set()
        n_run = 0

        def _absorb(outcome: Dict[str, Any]) -> None:
            """Merge one streamed point outcome (idempotent per key)."""
            nonlocal n_run
            if "payload" in outcome:
                result = SimResult.from_dict(outcome["payload"])
                key = self._point_key(result.workload, machine,
                                      result.policy,
                                      variant=outcome.get("variant", ""),
                                      digest=digest)
                if key not in seen_keys:
                    seen_keys.add(key)
                    n_run += 1
                self._cache[key] = result
                out.setdefault(result.policy, {})[result.workload] = result
            else:
                out.failures.append({
                    "workload": outcome["workload"],
                    "machine": outcome["machine"],
                    "policy": outcome["policy"],
                    "variant": outcome.get("variant", ""),
                    "error": outcome.get("error", ""),
                    "traceback": outcome.get("traceback", ""),
                    "quarantined": bool(outcome.get("quarantined")),
                })

        if scheduler is not None or (jobs > 1 and len(tasks) > 1):
            from repro.analysis.farm import FarmScheduler

            def _on_point(outcome: Dict[str, Any]) -> None:
                _absorb(outcome)
                if self.cache_path and "payload" in outcome:
                    self._save_disk_cache()

            if scheduler is not None:
                scheduler.run(tasks, on_point=_on_point)
            else:
                with FarmScheduler(min(jobs, len(tasks)),
                                   ledger=ledger) as farm:
                    farm.run(tasks, on_point=_on_point)
        else:
            for task in tasks:
                for outcome in _iter_group_points(task):
                    _absorb(outcome)
                if self.cache_path:
                    self._save_disk_cache()

        if self.cache_path:
            self._save_disk_cache()
        if ledger is not None:
            elapsed = time.perf_counter() - t_start
            ledger.sweep_done(elapsed_s=elapsed, points_run=n_run,
                              points_cached=n_cached,
                              points_failed=len(out.failures))
            _log.info("sweep done", extra={"data": {
                "run": n_run, "cached": n_cached,
                "failed": len(out.failures),
                "elapsed_s": round(elapsed, 3)}})
        return out

    # ------------------------------------------------------------- internal

    def _point_key(self, workload: str, machine: MachineParams, policy: str,
                   variant: str = "", digest: Optional[str] = None) -> str:
        return RunKey(workload, machine.name, policy, self.instructions,
                      self.warmup, digest or RunKey.digest(machine),
                      variant).as_str()

    def _write_cached_stats(self, stats_dir: str, result: SimResult,
                            machine: MachineParams, variant: str,
                            warmup_mode: str = "detailed") -> None:
        """Render a stats artifact for a cache-satisfied point.

        A cached point was historically re-simulated whenever
        ``stats_dir`` was set; now the artifact is rendered from the
        cached :class:`SimResult`. It carries the result and provenance
        manifests but no registry/timeline sections — those exist only
        on a live core — and its point manifest is tagged
        ``from_cache`` so a reader can tell the two apart.
        """
        from repro.obs import Telemetry
        from repro.obs.manifest import point_manifest
        manifest = point_manifest(result.workload, machine, result.policy,
                                  self.instructions, self.warmup,
                                  variant=variant, warmup_mode=warmup_mode)
        manifest["from_cache"] = True
        path = os.path.join(
            stats_dir,
            f"{result.workload}_{result.machine}_{result.policy}.json")
        Telemetry().write_stats(path, result, manifest=manifest)

    # ---------------------------------------------------------- disk cache

    def _read_disk_payloads(self) -> Dict[str, Any]:
        """The on-disk cache's raw ``key -> payload`` map (or empty)."""
        try:
            with open(self.cache_path) as f:
                raw = json.load(f)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("schema") != _CACHE_SCHEMA:
            return {}  # stale/legacy cache: recompute everything
        data = raw.get("data", {})
        return data if isinstance(data, dict) else {}

    def _load_disk_cache(self) -> None:
        for key, payload in self._read_disk_payloads().items():
            try:
                self._cache[key] = SimResult.from_dict(payload)
            except TypeError:
                continue  # stale schema: ignore and recompute

    def _save_disk_cache(self) -> None:
        """Merge this runner's results into the disk cache, atomically.

        Read-merge-write: the current file's entries are re-read and
        this runner's overlaid per key, so incremental flushes mid-sweep
        and several runners sharing one cache path union their points
        instead of clobbering whole files. Re-flushing after a retried
        point rewrites the same key with the same payload — idempotent
        by construction, which is what lets the farm requeue work
        without double-merge hazards.
        """
        from repro.obs.manifest import host_manifest
        merged = self._read_disk_payloads()
        merged.update({k: v.to_dict() for k, v in self._cache.items()})
        payload = {
            "schema": _CACHE_SCHEMA,
            # Provenance of the *last writer*: cached results are only
            # auditable if the cache records what produced them.
            "manifest": host_manifest(),
            "data": merged,
        }
        try:
            atomic_write_json(self.cache_path, payload)
        except OSError:
            pass  # cache is an optimisation, never a failure


#: Shared module-level runner so all benchmark files reuse one cache.
_SHARED: Optional[ExperimentRunner] = None


def shared_runner(instructions: Optional[int] = None,
                  warmup: Optional[int] = None,
                  cache_path: Optional[str] = None) -> ExperimentRunner:
    """Process-wide runner; the first caller fixes the run sizes.

    Later callers may omit the sizes (``None`` adopts whatever the
    shared runner already uses), but an explicit size that disagrees
    with the shared runner's raises ``ValueError`` — historically the
    mismatch was silently ignored, so a benchmark asking for 50k
    instructions could quietly measure 30k-instruction points. Callers
    that genuinely need different sizes construct their own
    :class:`ExperimentRunner`.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentRunner(
            instructions=(DEFAULT_INSTRUCTIONS if instructions is None
                          else instructions),
            warmup=DEFAULT_WARMUP if warmup is None else warmup,
            cache_path=cache_path)
        return _SHARED
    mismatches = []
    if instructions is not None and instructions != _SHARED.instructions:
        mismatches.append(f"instructions={instructions} != "
                          f"{_SHARED.instructions}")
    if warmup is not None and warmup != _SHARED.warmup:
        mismatches.append(f"warmup={warmup} != {_SHARED.warmup}")
    if mismatches:
        raise ValueError(
            "shared_runner run sizes are fixed by the first caller; "
            + ", ".join(mismatches)
            + " — use a private ExperimentRunner for different sizes")
    return _SHARED
