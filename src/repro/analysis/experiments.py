"""Memoised experiment runner.

Several figures reuse the same (workload, machine, policy) points — e.g.
Figures 7 and 8 plot reliability and performance of the *same* five runs.
:class:`ExperimentRunner` caches results in memory and optionally on disk
(JSON) so each point simulates exactly once per benchmark session.

:meth:`ExperimentRunner.run_matrix` additionally knows how to *sweep*:
points are grouped by workload, each group can share one warmed
checkpoint across its policies (``share_warmup=True``), and groups fan
out across a ``multiprocessing`` pool (``jobs=N``) with the disk cache
as the merge point.
"""

import json
import math
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.common.io import atomic_write_json
from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, \
    MachineParams
from repro.core.runahead import RunaheadPolicy, get_policy
from repro.obs import log as obs_log
from repro.sim import SimResult, simulate
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import get_workload

_log = obs_log.get_logger("sweep")


@dataclass(frozen=True)
class MultiSeedResult:
    """Mean ± sample-stddev of a metric across trace seeds.

    Synthetic workloads are stochastic realisations of a benchmark's
    character; re-running under different trace seeds quantifies how much
    of a result is the mechanism and how much is realisation noise.
    """

    metric: str
    values: tuple
    mean: float
    stddev: float

    @property
    def rel_stddev(self) -> float:
        return self.stddev / self.mean if self.mean else 0.0


def summarize_seeds(metric: str, values: Iterable[float]) -> MultiSeedResult:
    vals = tuple(values)
    if not vals:
        raise ValueError("no values to summarise")
    mean = sum(vals) / len(vals)
    var = (sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
           if len(vals) > 1 else 0.0)
    return MultiSeedResult(metric=metric, values=vals, mean=mean,
                           stddev=math.sqrt(var))


@dataclass(frozen=True)
class RunKey:
    """Cache key identifying one simulation point.

    ``config_digest`` covers the *full* machine configuration, so two
    machines that share a display name but differ in any parameter never
    collide in the cache. ``variant`` tags results produced by an
    approximate run mode — shared-warmup points carry ``"sw:<policy>"``
    (the policy warmup ran under) so they can never poison the cache
    entries of exact per-policy runs.
    """

    workload: str
    machine: str
    policy: str
    instructions: int
    warmup: int
    config_digest: str = ""
    variant: str = ""

    @staticmethod
    def digest(machine: MachineParams) -> str:
        import hashlib
        return hashlib.md5(repr(machine).encode()).hexdigest()[:10]

    def as_str(self) -> str:
        base = (f"{self.workload}|{self.machine}|{self.policy}"
                f"|{self.instructions}|{self.warmup}|{self.config_digest}")
        return f"{base}|{self.variant}" if self.variant else base


#: Bump when SimResult's schema changes: stale on-disk payloads would
#: otherwise deserialise with silently-defaulted new fields.
_CACHE_SCHEMA = 2


def _variant(share_warmup: bool, policy: str, warmup_policy: str) -> str:
    """Cache-key variant for one point of a sweep.

    A shared-warmup point measured under the *same* policy that warmed
    the checkpoint is bit-identical to a cold run, so it shares the
    exact-run cache slot; any other pairing is an approximation and gets
    its own tagged slot.
    """
    if share_warmup and policy != warmup_policy:
        return f"sw:{warmup_policy}"
    return ""


def _pool_context():
    """Fork when the platform offers it: workers inherit ``sys.path``
    (pytest injects ``src/`` without setting PYTHONPATH) and the warmed
    import state. Falls back to the platform default elsewhere."""
    import multiprocessing as mp
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context()


def _run_group(task: Tuple) -> List[Dict[str, Any]]:
    """Simulate one workload group (all its missing policies).

    Module-level so it pickles into pool workers. The task carries only
    picklable inputs (spec, machine params, policy *names*, sizes, the
    ledger *path*) — traces and checkpoints are rebuilt inside the
    worker because a lazily-materialised
    :class:`~repro.isa.trace.Trace` buffers a generator and cannot
    cross a process boundary. Results return as
    ``SimResult.to_dict()`` payloads for the same reason.

    With a ledger path, the worker appends its own life-cycle events
    (``worker_heartbeat`` / ``warmup_shared`` / ``point_start`` /
    ``point_done`` / ``point_error``) — every terminal event carries the
    per-point provenance manifest. A failing point is recorded with its
    traceback *before* the exception propagates and tears the sweep
    down, so the ledger explains a dead pool post mortem.
    """
    (spec, machine, policy_names, instructions, warmup, share_warmup,
     warmup_policy, stats_dir, validate, oracle, ledger_path) = task
    ledger = None
    if ledger_path:
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(ledger_path)
        ledger.worker_heartbeat(workload=spec.name,
                                group_points=len(policy_names), done=0)
    checkpoint = None
    if share_warmup:
        from repro.checkpoint import warm_checkpoint
        checkpoint = warm_checkpoint(spec, machine, warmup_policy,
                                     warmup=warmup, validate=validate,
                                     ledger=ledger)
    payloads: List[Dict[str, Any]] = []
    for done, name in enumerate(policy_names):
        variant = _variant(share_warmup, name, warmup_policy)
        manifest = None
        if ledger is not None or stats_dir:
            from repro.obs.manifest import point_manifest
            manifest = point_manifest(spec.name, machine, name,
                                      instructions, warmup, variant=variant)
        if ledger is not None:
            ledger.point_start(workload=spec.name, machine=machine.name,
                               policy=name, variant=variant)
        telemetry = None
        if stats_dir:
            from repro.obs import Telemetry
            telemetry = Telemetry(interval=1000, profile=True)
        t0 = time.perf_counter()
        try:
            if checkpoint is not None:
                from repro.checkpoint import simulate_from
                result = simulate_from(checkpoint, name,
                                       instructions=instructions,
                                       telemetry=telemetry,
                                       validate=validate, oracle=oracle)
            else:
                result = simulate(spec, machine, name,
                                  instructions=instructions,
                                  warmup=warmup, telemetry=telemetry,
                                  validate=validate, oracle=oracle)
        except Exception as e:
            if ledger is not None:
                import traceback
                ledger.point_error(workload=spec.name,
                                   machine=machine.name, policy=name,
                                   variant=variant, error=repr(e),
                                   traceback_text=traceback.format_exc(),
                                   manifest=manifest)
            _log.error("point failed", exc_info=True, extra={"data": {
                "workload": spec.name, "policy": name}})
            raise
        wall_s = time.perf_counter() - t0
        if telemetry is not None:
            path = os.path.join(
                stats_dir,
                f"{result.workload}_{result.machine}_{result.policy}.json")
            telemetry.write_stats(path, result, manifest=manifest)
        if ledger is not None:
            kips = (result.instructions / wall_s / 1000.0) if wall_s else 0.0
            ledger.point_done(workload=result.workload,
                              machine=result.machine, policy=result.policy,
                              variant=variant, wall_s=wall_s,
                              kips=round(kips, 2),
                              ipc=round(result.ipc, 4), manifest=manifest)
            ledger.worker_heartbeat(workload=spec.name,
                                    group_points=len(policy_names),
                                    done=done + 1)
        _log.debug("point done", extra={"data": {
            "workload": spec.name, "policy": name,
            "wall_s": round(wall_s, 3)}})
        payloads.append(result.to_dict())
    return payloads


class ExperimentRunner:
    """Runs and caches simulation points.

    Args:
        instructions: measured committed instructions per point.
        warmup: warmup instructions per point.
        cache_path: optional JSON file for cross-process persistence.
    """

    def __init__(self, instructions: int = DEFAULT_INSTRUCTIONS,
                 warmup: int = DEFAULT_WARMUP,
                 cache_path: Optional[str] = None):
        self.instructions = instructions
        self.warmup = warmup
        self.cache_path = cache_path
        self._cache: Dict[str, SimResult] = {}
        self._machines: Dict[str, MachineParams] = {}
        if cache_path and os.path.exists(cache_path):
            self._load_disk_cache()

    # ------------------------------------------------------------------ api

    def run(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
    ) -> SimResult:
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        key = self._point_key(spec.name, machine, pol.name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = simulate(spec, machine, pol,
                          instructions=self.instructions, warmup=self.warmup)
        self._cache[key] = result
        self._machines[machine.name] = machine
        if self.cache_path:
            self._save_disk_cache()
        return result

    def run_seeds(
        self,
        workload: Union[str, WorkloadSpec],
        machine: MachineParams,
        policy: Union[str, RunaheadPolicy],
        seeds: Iterable[int],
    ) -> List[SimResult]:
        """Uncached multi-seed runs (each seed is a fresh trace
        realisation of the same benchmark character)."""
        spec = get_workload(workload) if isinstance(workload, str) else workload
        pol = get_policy(policy) if isinstance(policy, str) else policy
        return [
            simulate(spec, machine, pol, instructions=self.instructions,
                     warmup=self.warmup, seed=seed)
            for seed in seeds
        ]

    def run_matrix(
        self,
        workloads: Iterable[Union[str, WorkloadSpec]],
        machine: MachineParams,
        policies: Iterable[Union[str, RunaheadPolicy]],
        *,
        jobs: int = 1,
        share_warmup: bool = False,
        warmup_policy: Union[str, RunaheadPolicy] = "OOO",
        stats_dir: Optional[str] = None,
        validate: bool = False,
        oracle: bool = False,
        ledger: Optional[Any] = None,
    ) -> Dict[str, Dict[str, SimResult]]:
        """Sweep the full matrix; returns policy name -> workload -> result.

        Points are grouped by workload. With ``share_warmup`` each group
        warms **once** under ``warmup_policy`` and forks the checkpoint
        for every measured policy — an explicit approximation (warmup
        behaviour is policy-dependent), cached under a ``sw:`` variant
        key so it never collides with exact per-policy runs. With
        ``jobs > 1`` whole groups fan out across a process pool; the
        in-memory/disk cache is the merge point, written once,
        atomically, after all groups land. ``validate`` runs every point
        under the invariant sanitizer (:mod:`repro.validate`); sanitized
        results are bit-identical to unsanitized ones, so they share the
        same cache slots — but note cached points satisfied from the
        cache were not re-checked. ``oracle`` likewise lockstep-checks
        every point's retirement stream against the architectural oracle
        (:mod:`repro.validate.oracle`), also bit-identical.

        ``ledger`` (a path or :class:`~repro.obs.ledger.RunLedger`)
        records the sweep's life cycle as an append-only JSONL event
        stream — sweep envelope, per-point terminal events with
        provenance manifests, worker heartbeats — tailable live with
        ``repro top``. Purely observational: results are bit-identical
        with the ledger on or off. Worker log records are routed back
        through the parent's handlers via a multiprocessing queue, so
        ``--log-json``/``--quiet`` apply to workers too.
        """
        specs = [get_workload(w) if isinstance(w, str) else w
                 for w in workloads]
        pols = [get_policy(p) if isinstance(p, str) else p for p in policies]
        wp = (get_policy(warmup_policy) if isinstance(warmup_policy, str)
              else warmup_policy)
        if stats_dir:
            os.makedirs(stats_dir, exist_ok=True)
        if isinstance(ledger, str):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        t_start = time.perf_counter()
        if ledger is not None:
            from repro.obs.manifest import host_manifest
            ledger.sweep_start(
                total_points=len(specs) * len(pols),
                machine=machine.name,
                workloads=[s.name for s in specs],
                policies=[p.name for p in pols],
                jobs=jobs, share_warmup=share_warmup,
                warmup_policy=wp.name, instructions=self.instructions,
                warmup=self.warmup, manifest=host_manifest())
            _log.info("sweep start", extra={"data": {
                "points": len(specs) * len(pols), "machine": machine.name,
                "jobs": jobs, "ledger": ledger.path}})

        out: Dict[str, Dict[str, SimResult]] = {}
        digest = RunKey.digest(machine)
        tasks: List[Tuple] = []
        n_cached = 0
        for spec in specs:
            missing: List[str] = []
            for pol in pols:
                variant = _variant(share_warmup, pol.name, wp.name)
                key = self._point_key(spec.name, machine, pol.name,
                                      variant=variant, digest=digest)
                cached = self._cache.get(key)
                if cached is not None and not stats_dir:
                    out.setdefault(pol.name, {})[spec.name] = cached
                    n_cached += 1
                    if ledger is not None:
                        from repro.obs.manifest import point_manifest
                        ledger.point_cached(
                            workload=spec.name, machine=machine.name,
                            policy=pol.name, variant=variant, key=key,
                            manifest=point_manifest(
                                spec.name, machine, pol.name,
                                self.instructions, self.warmup,
                                variant=variant))
                else:
                    missing.append(pol.name)
            if missing:
                tasks.append((spec, machine, tuple(missing),
                              self.instructions, self.warmup, share_warmup,
                              wp.name, stats_dir, validate, oracle,
                              ledger.path if ledger is not None else None))
        if not tasks:
            if ledger is not None:
                ledger.sweep_done(elapsed_s=time.perf_counter() - t_start,
                                  points_run=0, points_cached=n_cached)
            return out

        if jobs > 1 and len(tasks) > 1:
            ctx = _pool_context()
            queue = obs_log.worker_log_queue(ctx)
            with obs_log.start_listener(queue), \
                    ctx.Pool(min(jobs, len(tasks)),
                             initializer=obs_log.install_worker_handler,
                             initargs=(queue,)) as pool:
                groups = pool.map(_run_group, tasks)
        else:
            groups = [_run_group(t) for t in tasks]

        n_run = 0
        for group in groups:
            for payload in group:
                result = SimResult.from_dict(payload)
                key = self._point_key(
                    result.workload, machine, result.policy,
                    variant=_variant(share_warmup, result.policy, wp.name),
                    digest=digest)
                self._cache[key] = result
                out.setdefault(result.policy, {})[result.workload] = result
                n_run += 1
        self._machines[machine.name] = machine
        if self.cache_path:
            self._save_disk_cache()
        if ledger is not None:
            elapsed = time.perf_counter() - t_start
            ledger.sweep_done(elapsed_s=elapsed, points_run=n_run,
                              points_cached=n_cached)
            _log.info("sweep done", extra={"data": {
                "run": n_run, "cached": n_cached,
                "elapsed_s": round(elapsed, 3)}})
        return out

    # ------------------------------------------------------------- internal

    def _point_key(self, workload: str, machine: MachineParams, policy: str,
                   variant: str = "", digest: Optional[str] = None) -> str:
        return RunKey(workload, machine.name, policy, self.instructions,
                      self.warmup, digest or RunKey.digest(machine),
                      variant).as_str()

    # ---------------------------------------------------------- disk cache

    def _load_disk_cache(self) -> None:
        try:
            with open(self.cache_path) as f:
                raw = json.load(f)
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("schema") != _CACHE_SCHEMA:
            return  # stale/legacy cache: recompute everything
        for key, payload in raw.get("data", {}).items():
            try:
                self._cache[key] = SimResult.from_dict(payload)
            except TypeError:
                continue  # stale schema: ignore and recompute

    def _save_disk_cache(self) -> None:
        from repro.obs.manifest import host_manifest
        payload = {
            "schema": _CACHE_SCHEMA,
            # Provenance of the *last writer*: cached results are only
            # auditable if the cache records what produced them.
            "manifest": host_manifest(),
            "data": {k: v.to_dict() for k, v in self._cache.items()},
        }
        try:
            atomic_write_json(self.cache_path, payload)
        except OSError:
            pass  # cache is an optimisation, never a failure


#: Shared module-level runner so all benchmark files reuse one cache.
_SHARED: Optional[ExperimentRunner] = None


def shared_runner(instructions: int = DEFAULT_INSTRUCTIONS,
                  warmup: int = DEFAULT_WARMUP,
                  cache_path: Optional[str] = None) -> ExperimentRunner:
    """Process-wide runner; the first caller fixes the run sizes."""
    global _SHARED
    if _SHARED is None:
        _SHARED = ExperimentRunner(instructions=instructions, warmup=warmup,
                                   cache_path=cache_path)
    return _SHARED
