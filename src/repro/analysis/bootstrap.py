"""Bootstrap confidence intervals for benchmark-suite aggregates.

The paper reports single-number suite means (hmean IPC, amean ABC, geomean
MTTF). With 14-benchmark sets those means carry real sampling variability;
this module provides percentile-bootstrap confidence intervals over the
*benchmark* dimension — "if the suite had been a different draw of
benchmarks with these characteristics, how much would the mean move?" —
using a deterministic seeded resampler (no numpy dependency).
"""

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a (lo, hi) percentile interval."""

    estimate: float
    lo: float
    hi: float
    confidence: float
    resamples: int

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __contains__(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return (f"{self.estimate:.3f} "
                f"[{self.lo:.3f}, {self.hi:.3f}] ({pct}% CI)")


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[List[float]], float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 12345,
) -> BootstrapCI:
    """Percentile bootstrap for an arbitrary statistic.

    Args:
        values: per-benchmark observations (e.g. MTTF ratios).
        statistic: the aggregate (e.g. ``repro.analysis.stats.gmean``).
        confidence: two-sided coverage, in (0, 1).
        resamples: bootstrap iterations.
        seed: RNG seed — results are reproducible.
    """
    vals = list(values)
    if not vals:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    rng = random.Random(seed)
    n = len(vals)
    stats: List[float] = []
    for _ in range(resamples):
        sample = [vals[rng.randrange(n)] for _ in range(n)]
        stats.append(statistic(sample))
    stats.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_idx = max(0, int(alpha * resamples))
    hi_idx = min(resamples - 1, int((1.0 - alpha) * resamples) - 1)
    return BootstrapCI(
        estimate=statistic(vals),
        lo=stats[lo_idx],
        hi=stats[hi_idx],
        confidence=confidence,
        resamples=resamples,
    )


def paired_difference_ci(
    a: Sequence[float],
    b: Sequence[float],
    statistic: Callable[[List[float]], float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 12345,
) -> Tuple[BootstrapCI, bool]:
    """CI on statistic(a) − statistic(b) using *paired* resampling.

    Benchmarks are resampled as pairs (the same benchmark contributes to
    both sides), which is the right model for comparing two policies over
    one suite. Returns (ci, significant) where ``significant`` means the
    interval excludes zero.
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    pairs = list(zip(a, b))
    if not pairs:
        raise ValueError("cannot bootstrap an empty sample")
    rng = random.Random(seed)
    n = len(pairs)
    diffs: List[float] = []
    for _ in range(resamples):
        sample = [pairs[rng.randrange(n)] for _ in range(n)]
        diffs.append(statistic([x for x, _ in sample])
                     - statistic([y for _, y in sample]))
    diffs.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = diffs[max(0, int(alpha * resamples))]
    hi = diffs[min(resamples - 1, int((1.0 - alpha) * resamples) - 1)]
    ci = BootstrapCI(
        estimate=statistic([x for x, _ in pairs])
        - statistic([y for _, y in pairs]),
        lo=lo, hi=hi, confidence=confidence, resamples=resamples,
    )
    return ci, not (lo <= 0.0 <= hi)
