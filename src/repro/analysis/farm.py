"""The simulation farm: a crash-tolerant scheduler and sweep service.

ROADMAP's "sim-as-a-service" platform needs an execution layer that a
million-point matrix can trust: one failing point must not tear down a
sweep, a SIGKILLed/OOMed worker must not lose completed work, and every
completed point must survive an orchestrator crash. This module builds
that layer in two pieces:

:class:`FarmScheduler`
    A worker pool built on ``multiprocessing.Process`` + duplex pipes
    instead of ``Pool.map``. Workload groups are dispatched to workers
    which stream results back **per point** (no barrier at group
    boundaries — the ``imap_unordered`` streaming shape, plus liveness).
    Worker death is detected as EOF on the worker's pipe; the dead
    worker's *undelivered* points are requeued with a bounded retry
    budget, and a point that repeatedly kills its worker is quarantined
    (recorded in the run ledger as ``point_quarantined``, reported as a
    failure) instead of wedging the sweep. Workers are persistent
    across :meth:`FarmScheduler.run` calls, so each worker's
    process-local :class:`~repro.checkpoint.CheckpointCache` shares
    warm checkpoints across every request it serves.

:class:`FarmServer`
    A long-running front end (``repro serve``) over a spool directory:
    ``repro submit`` drops request JSONs into ``<spool>/queue/``, the
    server claims them into ``active/`` (crash-tolerant: orphaned
    active requests are requeued on startup), executes them through one
    persistent scheduler + the :class:`ExperimentRunner` RunKey cache
    (cross-request dedupe), and writes responses into ``done/``.

Delivery semantics are *at least once*: a worker killed in the instant
between finishing a point and the scheduler draining its pipe re-runs
that point, and the idempotent keyed cache merge absorbs the duplicate.
Results are bit-identical to the serial path — each point runs the very
same :func:`~repro.analysis.experiments._iter_group_points` code
whichever process executes it, which is what keeps the golden
fingerprints scheduling-independent.

Fault injection for tests and the CI farm-smoke job (all opt-in via
environment variables, inert otherwise):

- ``REPRO_FARM_CRASH_TOKEN=<file>``: the first worker about to run a
  point while ``<file>`` exists unlinks it and SIGKILLs itself — one
  injected crash per token file.
- ``REPRO_FARM_POISON=<workload>:<policy>``: every worker about to run
  that point SIGKILLs itself — a poison point that must end in
  quarantine.
- ``REPRO_FARM_RAISE=<workload>:<policy>`` (honoured inside the group
  runner, so it also works serially): the point raises and is isolated
  as a ``point_error``.
"""

import json
import os
import signal
import time
import traceback
import uuid
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis import experiments as _exp
from repro.common.io import atomic_write_json
from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
from repro.obs import log as obs_log

__all__ = [
    "CRASH_TOKEN_ENV",
    "POISON_ENV",
    "DEFAULT_MAX_RETRIES",
    "FarmReport",
    "FarmScheduler",
    "FarmServer",
    "SweepRequest",
    "new_request_id",
    "response_path",
    "submit_request",
    "wait_for_response",
]

_log = obs_log.get_logger("farm")

CRASH_TOKEN_ENV = "REPRO_FARM_CRASH_TOKEN"
POISON_ENV = "REPRO_FARM_POISON"

#: extra attempts a task gets after its worker died before the first
#: undelivered point is declared poison and quarantined
DEFAULT_MAX_RETRIES = 2


# --------------------------------------------------------------- worker

def _chaos_maybe_kill(workload: str, policy: str) -> None:
    """Opt-in crash injection, checked before each point (see module
    docstring). SIGKILL gives the scheduler a real dead worker — no
    atexit handlers, no cleanup — exactly like the OOM killer would."""
    token = os.environ.get(CRASH_TOKEN_ENV)
    if token:
        try:
            os.unlink(token)
        except OSError:
            pass  # already consumed by a sibling worker
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    if os.environ.get(POISON_ENV) == f"{workload}:{policy}":
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class GroupTask:
    """One dispatchable unit: a workload group (or requeued residue).

    ``base`` is the picklable task tuple
    :func:`~repro.analysis.experiments._iter_group_points` consumes;
    ``policies`` is this task's (possibly residual) slice of the
    group's policy list. ``attempts`` counts worker deaths while this
    task was in flight — the retry budget.
    """

    task_id: int
    base: Tuple
    policies: Tuple[str, ...]
    attempts: int = 0

    @property
    def workload(self) -> str:
        return self.base[0].name

    @property
    def machine_name(self) -> str:
        return self.base[1].name

    def group_tuple(self) -> Tuple:
        return self.base[:2] + (self.policies,) + self.base[3:]


def _worker_main(conn, log_queue) -> None:
    """Farm worker loop: recv a :class:`GroupTask`, stream outcomes.

    Runs until the ``None`` sentinel (clean shutdown) or EOF (the
    orchestrator vanished). Every message is sent over the duplex pipe
    synchronously — no feeder thread — so anything ``send`` returned
    for is readable by the parent even if this process is SIGKILLed a
    microsecond later.
    """
    if log_queue is not None:
        obs_log.install_worker_handler(log_queue)
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            try:
                points = _exp._iter_group_points(task.group_tuple())
                for policy in task.policies:
                    _chaos_maybe_kill(task.workload, policy)
                    conn.send(("point", task.task_id, next(points)))
                conn.send(("group_done", task.task_id))
            except Exception as e:  # scheduler-level fault, not a point's
                conn.send(("group_error", task.task_id, repr(e),
                           traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


# ------------------------------------------------------------ scheduler

@dataclass
class FarmReport:
    """What one :meth:`FarmScheduler.run` call did."""

    points: int = 0              # outcomes delivered (incl. errors)
    errors: int = 0              # isolated point_error outcomes
    worker_deaths: int = 0
    requeued: int = 0            # point attempts put back on the queue
    quarantined: List[str] = field(default_factory=list)
    group_errors: int = 0


class _Worker:
    __slots__ = ("proc", "conn", "task")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.task: Optional[GroupTask] = None


class FarmScheduler:
    """Crash-tolerant worker pool for sweep group tasks.

    Use as a context manager (or call :meth:`shutdown` explicitly).
    Workers persist across :meth:`run` calls — ``repro serve`` keeps
    one scheduler for its whole lifetime so worker-local checkpoint
    caches accumulate across requests.

    Args:
        jobs: worker process count.
        ledger: :class:`~repro.obs.ledger.RunLedger` (or path) for the
            scheduler's own events (``worker_dead`` /
            ``point_requeued`` / ``point_quarantined``); workers append
            their per-point events through the ledger path embedded in
            each task.
        max_retries: worker deaths a task survives before its first
            undelivered point is quarantined.
        poll_s: liveness/result poll period.
    """

    def __init__(self, jobs: int, ledger: Optional[Any] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 poll_s: float = 0.05):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.max_retries = max_retries
        self.poll_s = poll_s
        if isinstance(ledger, str):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        self.ledger = ledger
        self._ctx = _exp._pool_context()
        self._workers: List[_Worker] = []
        self._log_queue = None
        self._listener = None
        self._next_task_id = 0
        self._started = False

    # ------------------------------------------------------- lifecycle

    def __enter__(self) -> "FarmScheduler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        if self._started:
            return
        self._log_queue = obs_log.worker_log_queue(self._ctx)
        self._listener = obs_log.start_listener(self._log_queue)
        self._started = True

    def shutdown(self) -> None:
        for w in self._workers:
            try:
                w.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        for w in self._workers:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
            w.conn.close()
        self._workers.clear()
        if self._listener is not None:
            self._listener.stop()
            self._listener = None
        self._started = False

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child_conn, self._log_queue),
                                 daemon=True)
        proc.start()
        # Drop the parent's copy of the child end: EOF on parent_conn
        # then means exactly "the worker process is gone".
        child_conn.close()
        w = _Worker(proc, parent_conn)
        self._workers.append(w)
        return w

    def _cull_idle_dead(self) -> None:
        """Idle workers killed from outside never signal EOF through the
        busy-connection wait set; sweep them here."""
        keep: List[_Worker] = []
        for w in self._workers:
            if w.task is None and not w.proc.is_alive():
                w.proc.join(timeout=0.1)
                w.conn.close()
            else:
                keep.append(w)
        self._workers = keep

    # ------------------------------------------------------------- run

    def run(self, tasks: List[Tuple],
            on_point: Optional[Callable[[Dict[str, Any]], None]] = None,
            ) -> FarmReport:
        """Execute group-task tuples, streaming outcomes to ``on_point``.

        ``tasks`` are the picklable tuples ``run_matrix`` builds (the
        :func:`~repro.analysis.experiments._iter_group_points` input).
        ``on_point`` receives every outcome dict as it lands — payloads,
        isolated errors, and synthesized quarantine records — in
        completion order.
        """
        self.start()
        report = FarmReport()
        pending = deque(self._wrap(t) for t in tasks)
        delivered: Dict[int, set] = {}

        while pending or any(w.task is not None for w in self._workers):
            self._cull_idle_dead()
            needed = min(self.jobs, len(pending) + sum(
                1 for w in self._workers if w.task is not None))
            while len(self._workers) < needed:
                self._spawn_worker()
            for w in list(self._workers):
                if w.task is None and pending:
                    task = pending.popleft()
                    w.task = task
                    delivered.setdefault(task.task_id, set())
                    try:
                        w.conn.send(task)
                    except (OSError, BrokenPipeError, ValueError):
                        self._on_worker_death(w, pending, delivered,
                                              report, on_point)
            busy = {w.conn: w for w in self._workers
                    if w.task is not None}
            if not busy:
                continue
            for conn in mp_connection.wait(list(busy), timeout=self.poll_s):
                w = busy[conn]
                try:
                    while True:
                        self._on_message(w, w.conn.recv(), delivered,
                                         report, on_point)
                        if w.task is None or not w.conn.poll():
                            break
                except (EOFError, OSError):
                    self._on_worker_death(w, pending, delivered,
                                          report, on_point)
        return report

    def _wrap(self, base: Tuple) -> GroupTask:
        self._next_task_id += 1
        return GroupTask(task_id=self._next_task_id, base=base,
                         policies=tuple(base[2]))

    def _residual_task(self, task: GroupTask, policies: Tuple[str, ...],
                       attempts: int) -> GroupTask:
        self._next_task_id += 1
        return GroupTask(task_id=self._next_task_id, base=task.base,
                         policies=policies, attempts=attempts)

    def _on_message(self, w: _Worker, msg: Tuple, delivered, report,
                    on_point) -> None:
        kind, task_id = msg[0], msg[1]
        if kind == "point":
            outcome = msg[2]
            delivered.setdefault(task_id, set()).add(outcome["policy"])
            report.points += 1
            if "payload" not in outcome:
                report.errors += 1
            if on_point is not None:
                on_point(outcome)
        elif kind == "group_done":
            w.task = None
        elif kind == "group_error":
            # The group runner itself raised (it isolates per-point
            # failures, so this is a scheduler-layer fault). Determinist
            # -ic — fail the undelivered points rather than retry.
            report.group_errors += 1
            task, error, tb = w.task, msg[2], msg[3]
            w.task = None
            if task is None:
                return
            for policy in task.policies:
                if policy in delivered.get(task_id, set()):
                    continue
                report.points += 1
                report.errors += 1
                if on_point is not None:
                    on_point(self._failure_outcome(task, policy, error, tb))

    def _on_worker_death(self, w: _Worker, pending, delivered, report,
                         on_point) -> None:
        task = w.task
        w.task = None
        pid = w.proc.pid
        w.proc.join(timeout=0.5)
        w.conn.close()
        self._workers.remove(w)
        report.worker_deaths += 1
        label = (f"{task.workload}/{task.machine_name}"
                 if task is not None else "idle")
        _log.warning("worker died", extra={"data": {
            "pid": pid, "task": label}})
        if self.ledger is not None:
            self.ledger.worker_dead(
                dead_pid=pid,
                workload=task.workload if task is not None else None,
                attempt=task.attempts if task is not None else None)
        if task is None:
            return
        residual = tuple(p for p in task.policies
                         if p not in delivered.get(task.task_id, set()))
        if not residual:
            return  # every point delivered; only the group_done was lost
        attempts = task.attempts + 1
        if attempts > self.max_retries:
            poison, rest = residual[0], residual[1:]
            self._quarantine(task, poison, attempts, report, on_point)
            residual, attempts = rest, 0  # poison removed: fresh budget
        if residual:
            requeued = self._residual_task(task, residual, attempts)
            pending.appendleft(requeued)
            report.requeued += len(residual)
            if self.ledger is not None:
                for policy in residual:
                    self.ledger.point_requeued(
                        workload=task.workload,
                        machine=task.machine_name, policy=policy,
                        attempt=attempts)

    def _quarantine(self, task: GroupTask, policy: str, attempts: int,
                    report, on_point) -> None:
        error = (f"quarantined: point killed its worker "
                 f"{attempts} time(s) (max_retries={self.max_retries})")
        label = f"{task.workload}/{task.machine_name}/{policy}"
        report.quarantined.append(label)
        _log.error("point quarantined", extra={"data": {
            "point": label, "attempts": attempts}})
        if self.ledger is not None:
            self.ledger.point_quarantined(
                workload=task.workload, machine=task.machine_name,
                policy=policy, variant=self._task_variant(task, policy),
                error=error, attempts=attempts)
        report.points += 1
        report.errors += 1
        if on_point is not None:
            outcome = self._failure_outcome(task, policy, error, "")
            outcome["quarantined"] = True
            on_point(outcome)

    @staticmethod
    def _task_variant(task: GroupTask, policy: str) -> str:
        share_warmup, warmup_policy = task.base[5], task.base[6]
        warmup_mode = task.base[11]
        return _exp._variant(share_warmup, policy, warmup_policy,
                             warmup_mode)

    def _failure_outcome(self, task: GroupTask, policy: str, error: str,
                         tb: str) -> Dict[str, Any]:
        return {"workload": task.workload, "machine": task.machine_name,
                "policy": policy,
                "variant": self._task_variant(task, policy),
                "error": error, "traceback": tb}


# -------------------------------------------------------- spool service

REQUEST_SCHEMA = 1
RESPONSE_SCHEMA = 1


@dataclass
class SweepRequest:
    """One spooled sweep request (the ``repro submit`` payload)."""

    request_id: str
    workloads: List[str]
    policies: List[str]
    machine: str = "baseline"
    instructions: int = DEFAULT_INSTRUCTIONS
    warmup: int = DEFAULT_WARMUP
    share_warmup: bool = False
    warmup_policy: str = "OOO"
    warmup_mode: str = "detailed"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REQUEST_SCHEMA,
            "request_id": self.request_id,
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "machine": self.machine,
            "instructions": self.instructions,
            "warmup": self.warmup,
            "share_warmup": self.share_warmup,
            "warmup_policy": self.warmup_policy,
            "warmup_mode": self.warmup_mode,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SweepRequest":
        if payload.get("schema") != REQUEST_SCHEMA:
            raise ValueError(
                f"request schema {payload.get('schema')!r} != "
                f"{REQUEST_SCHEMA}")
        workloads = payload.get("workloads")
        policies = payload.get("policies")
        if not workloads or not policies:
            raise ValueError("request needs non-empty workloads+policies")
        return cls(
            request_id=str(payload["request_id"]),
            workloads=[str(w) for w in workloads],
            policies=[str(p) for p in policies],
            machine=str(payload.get("machine", "baseline")),
            instructions=int(payload.get("instructions",
                                         DEFAULT_INSTRUCTIONS)),
            warmup=int(payload.get("warmup", DEFAULT_WARMUP)),
            share_warmup=bool(payload.get("share_warmup", False)),
            warmup_policy=str(payload.get("warmup_policy", "OOO")),
            warmup_mode=str(payload.get("warmup_mode", "detailed")),
        )


def new_request_id() -> str:
    return uuid.uuid4().hex[:12]


def _spool_dirs(spool: str) -> Tuple[str, str, str]:
    dirs = tuple(os.path.join(spool, d) for d in ("queue", "active",
                                                  "done"))
    for d in dirs:
        os.makedirs(d, exist_ok=True)
    return dirs


def submit_request(spool: str, request: SweepRequest) -> str:
    """Atomically drop a request into ``<spool>/queue/``; returns path."""
    queue_dir, _, _ = _spool_dirs(spool)
    path = os.path.join(queue_dir, f"{request.request_id}.json")
    atomic_write_json(path, request.to_dict(), indent=1)
    return path


def response_path(spool: str, request_id: str) -> str:
    return os.path.join(spool, "done", f"{request_id}.json")


def wait_for_response(spool: str, request_id: str, timeout_s: float,
                      poll_s: float = 0.2) -> Optional[Dict[str, Any]]:
    """Poll for a request's response file; ``None`` on timeout."""
    deadline = time.monotonic() + timeout_s
    path = response_path(spool, request_id)
    while True:
        try:
            with open(path) as f:
                return json.load(f)
        except (OSError, ValueError):
            pass  # missing, or mid-rename — atomic writes make this rare
        if time.monotonic() >= deadline:
            return None
        time.sleep(poll_s)


class FarmServer:
    """``repro serve``: executes spooled sweep requests until told not to.

    One persistent :class:`FarmScheduler` serves every request (warm
    checkpoints survive in the workers across requests); one
    :class:`~repro.analysis.experiments.ExperimentRunner` per
    (instructions, warmup) pair dedupes repeated points against the
    RunKey cache, all sharing ``cache_path`` through the idempotent
    read-merge-write flush. A malformed or unresolvable request is
    answered with a ``rejected`` response instead of killing the
    server; an unexpected execution error answers ``error`` with the
    traceback. Requests found in ``active/`` at startup were claimed by
    a server that died mid-flight — they are requeued first.
    """

    def __init__(self, spool: str, machines: Dict[str, Any], *,
                 jobs: int = 2, cache_path: Optional[str] = None,
                 ledger: Optional[Any] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES):
        self.spool = spool
        self.machines = machines
        self.jobs = jobs
        self.cache_path = cache_path
        self.max_retries = max_retries
        if isinstance(ledger, str):
            from repro.obs.ledger import RunLedger
            ledger = RunLedger(ledger)
        self.ledger = ledger
        self.queue_dir, self.active_dir, self.done_dir = _spool_dirs(spool)
        self._runners: Dict[Tuple[int, int], Any] = {}

    # ------------------------------------------------------------ spool

    def recover_orphans(self) -> List[str]:
        """Requeue requests a dead server left claimed in ``active/``."""
        recovered = []
        for name in sorted(os.listdir(self.active_dir)):
            if not name.endswith(".json"):
                continue
            src = os.path.join(self.active_dir, name)
            dst = os.path.join(self.queue_dir, name)
            try:
                os.replace(src, dst)
            except OSError:
                continue
            recovered.append(dst)
        if recovered:
            _log.warning("recovered orphaned requests", extra={"data": {
                "count": len(recovered)}})
        return recovered

    def pending(self) -> List[str]:
        """Queued request paths, oldest first."""
        entries = []
        for name in os.listdir(self.queue_dir):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.queue_dir, name)
            try:
                entries.append((os.path.getmtime(path), name, path))
            except OSError:
                continue  # claimed by a sibling server mid-listing
        return [path for _, _, path in sorted(entries)]

    def _claim(self, queue_path: str) -> Optional[str]:
        active_path = os.path.join(self.active_dir,
                                   os.path.basename(queue_path))
        try:
            os.replace(queue_path, active_path)
        except OSError:
            return None  # another server won the claim
        return active_path

    # ------------------------------------------------------------ serve

    def serve_forever(self, max_requests: int = 0,
                      idle_exit_s: float = 0.0,
                      poll_s: float = 0.2) -> int:
        """Claim-and-execute loop; returns the number of requests served.

        ``max_requests`` bounds the run (0 = unbounded);
        ``idle_exit_s`` exits after that long with an empty queue
        (0 = wait forever) — both exist so tests and CI can run the
        server to completion.
        """
        self.recover_orphans()
        served = 0
        with FarmScheduler(self.jobs, ledger=self.ledger,
                           max_retries=self.max_retries) as scheduler:
            idle_since = time.monotonic()
            while True:
                queued = self.pending()
                if not queued:
                    if idle_exit_s and (time.monotonic() - idle_since
                                        >= idle_exit_s):
                        break
                    time.sleep(poll_s)
                    continue
                active_path = self._claim(queued[0])
                if active_path is None:
                    continue
                response = self.process_request(active_path, scheduler)
                atomic_write_json(
                    response_path(self.spool, response["request_id"]),
                    response, indent=1)
                try:
                    os.unlink(active_path)
                except OSError:
                    pass
                served += 1
                idle_since = time.monotonic()
                if max_requests and served >= max_requests:
                    break
        return served

    def process_request(self, path: str,
                        scheduler: FarmScheduler) -> Dict[str, Any]:
        """Execute one claimed request file; always returns a response."""
        request_id = os.path.splitext(os.path.basename(path))[0]
        t0 = time.perf_counter()
        try:
            with open(path) as f:
                payload = json.load(f)
            request = SweepRequest.from_dict(payload)
            request_id = request.request_id
            machine = self.machines[request.machine]
            from repro.core.runahead import get_policy
            from repro.workloads.catalog import get_workload
            for w in request.workloads:
                get_workload(w)
            for p in request.policies:
                get_policy(p)
            get_policy(request.warmup_policy)
            from repro.core.fastfwd import validate_warmup_mode
            validate_warmup_mode(request.warmup_mode)
        except Exception as e:
            _log.error("request rejected", exc_info=True, extra={"data": {
                "request_id": request_id}})
            return {"schema": RESPONSE_SCHEMA, "request_id": request_id,
                    "status": "rejected", "error": repr(e),
                    "results": [], "failures": []}
        if self.ledger is not None:
            self.ledger.request_received(
                request_id=request_id, machine=request.machine,
                points=len(request.workloads) * len(request.policies))
        try:
            runner = self._runner_for(request)
            matrix = runner.run_matrix(
                request.workloads, machine, request.policies,
                jobs=self.jobs, share_warmup=request.share_warmup,
                warmup_policy=request.warmup_policy,
                warmup_mode=request.warmup_mode, ledger=self.ledger,
                scheduler=scheduler)
            results = []
            for p in request.policies:
                for w in request.workloads:
                    result = matrix.get(p, {}).get(w)
                    if result is None:
                        from repro.core.runahead import get_policy
                        from repro.workloads.catalog import get_workload
                        result = matrix.get(get_policy(p).name, {}).get(
                            get_workload(w).name)
                    if result is not None:
                        results.append(result.to_dict())
            response = {
                "schema": RESPONSE_SCHEMA,
                "request_id": request_id,
                "status": "ok" if matrix.ok else "partial",
                "machine": request.machine,
                "instructions": request.instructions,
                "warmup": request.warmup,
                "warmup_mode": request.warmup_mode,
                "elapsed_s": round(time.perf_counter() - t0, 4),
                "results": results,
                "failures": matrix.failures,
            }
        except Exception as e:
            _log.error("request failed", exc_info=True, extra={"data": {
                "request_id": request_id}})
            response = {"schema": RESPONSE_SCHEMA,
                        "request_id": request_id, "status": "error",
                        "error": repr(e),
                        "traceback": traceback.format_exc(),
                        "results": [], "failures": []}
        if self.ledger is not None:
            self.ledger.request_done(
                request_id=request_id, status=response["status"],
                results=len(response["results"]),
                failures=len(response["failures"]))
        return response

    def _runner_for(self, request: SweepRequest):
        key = (request.instructions, request.warmup)
        runner = self._runners.get(key)
        if runner is None:
            runner = _exp.ExperimentRunner(
                instructions=request.instructions, warmup=request.warmup,
                cache_path=self.cache_path)
            self._runners[key] = runner
        return runner
