"""Experiment harness: aggregation, run matrix, statistics and reporting."""

from repro.analysis.bootstrap import BootstrapCI, bootstrap_ci, paired_difference_ci
from repro.analysis.energy import (
    DEFAULT_MODEL,
    EnergyModel,
    energy_delay_product,
    energy_per_instruction,
)
from repro.analysis.experiments import (
    ExperimentRunner,
    MultiSeedResult,
    RunKey,
    summarize_seeds,
)
from repro.analysis.plots import bar_chart, scatter, stacked_bars
from repro.analysis.stats import amean, gmean, hmean
from repro.analysis.tables import format_series, format_table

__all__ = [
    "ExperimentRunner",
    "RunKey",
    "MultiSeedResult",
    "summarize_seeds",
    "amean",
    "gmean",
    "hmean",
    "format_table",
    "format_series",
    "bar_chart",
    "stacked_bars",
    "scatter",
    "BootstrapCI",
    "bootstrap_ci",
    "paired_difference_ci",
    "EnergyModel",
    "DEFAULT_MODEL",
    "energy_per_instruction",
    "energy_delay_product",
]
