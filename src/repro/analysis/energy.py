"""First-order energy accounting (post-processing, simulation-neutral).

Lean runahead's original selling point (PRE, HPCA 2020) is that it reaches
PRE-class performance while *executing far fewer speculative instructions*
than traditional runahead — an energy argument. This module turns a
:class:`~repro.sim.SimResult`'s activity counters into a first-order
dynamic-energy estimate so that argument can be quantified alongside the
reliability/performance results.

The model is a classic activity-times-coefficient estimate (in arbitrary
energy units by default; substitute per-event pJ values for a technology
point of interest):

    E = commits·E_commit + (fetched-but-squashed + runahead-executed)·E_spec
        + llc_misses·E_dram + l1_accesses·E_l1 + static·cycles

It deliberately ignores second-order effects (clock gating, wrong-path
fetch power, DVFS); the point is *relative* energy across policies on the
same machine, where those terms largely cancel.
"""

from dataclasses import dataclass
from typing import Dict

from repro.sim import SimResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients (arbitrary units; ratios matter)."""

    commit: float = 1.0          # a committed instruction's full pipeline pass
    speculative: float = 0.8     # executed-then-discarded work (no commit)
    fetch_only: float = 0.25     # fetched/examined but never executed
    l1_access: float = 0.3
    llc_miss: float = 12.0       # DRAM access incl. row activation
    static_per_cycle: float = 0.5

    def energy(self, result: SimResult) -> Dict[str, float]:
        """Break a run's estimated dynamic+static energy into components."""
        # Executed-then-discarded work: runahead-executed slices plus
        # every squashed instance (wrong path, flush, runahead-exit).
        speculative_uops = result.runahead_uops_executed + result.squashed_uops
        # Examined-but-not-executed runahead uops only traverse the
        # front-end (lean runahead's energy advantage over TR).
        fetch_only_uops = max(
            0, result.runahead_uops_examined - result.runahead_uops_executed)
        components = {
            "commit": self.commit * result.instructions,
            "speculative": self.speculative * speculative_uops,
            "fetch_only": self.fetch_only * fetch_only_uops,
            "memory": self.llc_miss * result.demand_llc_misses,
            "static": self.static_per_cycle * result.cycles,
        }
        components["total"] = sum(components.values())
        return components


#: Default coefficients used by the harness.
DEFAULT_MODEL = EnergyModel()


def energy_per_instruction(result: SimResult,
                           model: EnergyModel = DEFAULT_MODEL) -> float:
    """Estimated energy per committed instruction (EPI)."""
    if result.instructions <= 0:
        raise ValueError("result has no committed instructions")
    return model.energy(result)["total"] / result.instructions


def energy_delay_product(result: SimResult,
                         model: EnergyModel = DEFAULT_MODEL) -> float:
    """EPI × cycles-per-instruction: the standard efficiency figure."""
    cpi = result.cycles / result.instructions
    return energy_per_instruction(result, model) * cpi
