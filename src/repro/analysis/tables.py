"""Plain-text table/series formatting for the benchmark harness.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and diff-friendly.
"""

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def _fmt(value, width: int, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{value!s:>{width}}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 3,
    min_width: int = 8,
) -> str:
    """Fixed-width table with a header rule."""
    rows = [list(r) for r in rows]
    widths: List[int] = []
    for col, h in enumerate(headers):
        w = max(min_width, len(h))
        for r in rows:
            cell = r[col]
            text = (f"{cell:.{precision}f}" if isinstance(cell, float)
                    else str(cell))
            w = max(w, len(text))
        widths.append(w)
    lines = ["  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(
            _fmt(cell, w, precision) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Dict[str, Number],
                  precision: int = 3) -> str:
    """One figure series as ``name: key=value key=value ...``."""
    body = " ".join(
        f"{k}={v:.{precision}f}" if isinstance(v, float) else f"{k}={v}"
        for k, v in points.items()
    )
    return f"{name}: {body}"
