"""Provenance manifests: who/what/where produced an artifact.

Simulator claims are only as trustworthy as the recorded provenance
behind them — a cached sweep point or a stats file with no record of
the code revision, parameters and host that produced it cannot be
audited or reproduced. Every stats/cache/ledger artifact therefore
carries a manifest:

- ``git_sha`` / ``git_dirty``: the repository revision (and whether the
  working tree had uncommitted changes — a dirty run is reproducible
  only by accident).
- ``params_digest``: :meth:`RunKey.digest` of the machine configuration,
  so a manifest pins the *full* parameter set, not just its display
  name.
- ``seed``, run sizes, and the package/interpreter versions, hostname
  and timestamp.

:func:`host_manifest` (expensive parts cached per process) describes
the environment once per sweep; :func:`point_manifest` derives the
small per-point record embedded in ledger events and stats files.
"""

import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any, Dict, Optional

__all__ = ["MANIFEST_SCHEMA", "git_state", "host_manifest", "point_manifest"]

MANIFEST_SCHEMA = "repro-manifest-v1"

_git_state: Optional[Dict[str, Any]] = None


def git_state(cwd: Optional[str] = None) -> Dict[str, Any]:
    """``{"sha": ..., "dirty": ...}``; cached after the first probe.

    The default probe anchors at this package's source directory — not
    the process cwd — so provenance names the revision of the *code*
    even when the CLI runs from an unrelated directory. Outside a git
    checkout (installed package, exported tarball) both fields degrade
    to ``None`` rather than failing — provenance is best-effort
    context, never a run blocker.
    """
    global _git_state
    if _git_state is not None and cwd is None:
        return _git_state
    probe_cwd = cwd if cwd is not None else os.path.dirname(
        os.path.abspath(__file__))
    state: Dict[str, Any] = {"sha": None, "dirty": None}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=probe_cwd,
            capture_output=True, text=True, timeout=5)
        if sha.returncode == 0:
            state["sha"] = sha.stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], cwd=probe_cwd,
                capture_output=True, text=True, timeout=5)
            if status.returncode == 0:
                state["dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    if cwd is None:
        _git_state = state
    return state


def host_manifest(extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The full environment record, stamped once per sweep/artifact."""
    from repro import __version__

    git = git_state()
    out: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git["sha"],
        "git_dirty": git["dirty"],
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }
    if extra:
        out.update(extra)
    return out


def point_manifest(workload: str, machine, policy: str,
                   instructions: int, warmup: int,
                   seed: Optional[int] = None,
                   variant: str = "",
                   warmup_mode: str = "detailed") -> Dict[str, Any]:
    """The per-point provenance record: run key coordinates + revision.

    ``machine`` may be a :class:`MachineParams` (digested via
    :meth:`RunKey.digest`) or an already-computed digest string.
    ``warmup_mode`` records how the point's warmup region was produced
    (``detailed`` pipeline vs ``fast`` functional walk) so mixed-mode
    sweeps stay auditable per point.
    """
    from repro.analysis.experiments import RunKey

    if isinstance(machine, str):
        machine_name, digest = machine, ""
    else:
        machine_name, digest = machine.name, RunKey.digest(machine)
    git = git_state()
    out = {
        "workload": workload,
        "machine": machine_name,
        "policy": policy,
        "instructions": instructions,
        "warmup": warmup,
        "warmup_mode": warmup_mode,
        "seed": seed,
        "variant": variant,
        "params_digest": digest,
        "git_sha": git["sha"],
        "git_dirty": git["dirty"],
    }
    out.update(_workload_provenance(workload))
    return out


def _workload_provenance(workload: str) -> Dict[str, Any]:
    """Scenario-specific provenance: phased workloads record their
    schedule length, trace-backed workloads the backing file + content
    hash (a re-imported or edited trace is a *different* experiment).
    Best-effort like git_state — never a run blocker."""
    try:
        from repro.workloads.catalog import get_workload
        from repro.workloads.tracewl import TraceWorkload
        wl = get_workload(workload)
        if isinstance(wl, TraceWorkload):
            return {"trace_file": wl.path,
                    "trace_sha256": wl.file_sha256(),
                    "trace_format_version": wl.version}
        phases = getattr(wl, "phases", ())
        if phases:
            return {"phase_count": len(phases),
                    "phase_schedule_iters": sum(p.duration for p in phases)}
    except Exception:
        pass
    return {}
