"""Render a ``--stats-out`` JSON file as human-readable tables.

Backs the ``repro report`` CLI command. Accepts the ``repro-stats-v1``
schema written by :meth:`repro.obs.telemetry.Telemetry.write_stats` and
degrades gracefully on partial files (stats only, no timeline, ...).
"""

import json
from typing import Any, Dict, List

from repro.analysis.tables import format_table
from repro.obs.registry import flatten_tree

__all__ = ["load_stats", "render_report"]


def load_stats(path: str) -> Dict[str, Any]:
    with open(path) as f:
        obj = json.load(f)
    if not isinstance(obj, dict):
        raise ValueError(f"{path}: not a stats object")
    return obj


def _render_counters(tree: Dict[str, Any]) -> str:
    flat = flatten_tree(tree)
    rows: List[List] = []
    dists: List[List] = []
    for name in sorted(flat):
        v = flat[name]
        if isinstance(v, dict) and v.get("kind") == "distribution":
            dists.append([name, v.get("count", 0), v.get("mean", 0.0),
                          v.get("min") or 0, v.get("max") or 0])
        else:
            rows.append([name, v])
    out = [format_table(["stat", "value"], rows, precision=4)]
    if dists:
        out.append("")
        out.append(format_table(
            ["distribution", "count", "mean", "min", "max"], dists,
            precision=2))
    return "\n".join(out)


def _render_timeline(timeline: Dict[str, Any], max_rows: int = 20) -> str:
    samples = timeline.get("samples", [])
    if not samples:
        return "timeline: no samples"
    headers = list(samples[0].keys())
    step = max(1, len(samples) // max_rows)
    shown = samples[::step]
    # The stride alone drops the tail of the run whenever the length is
    # not a multiple of step — always show the final sample: the end
    # state of a run is exactly what a reader scans the timeline for.
    if shown[-1] is not samples[-1]:
        shown = shown + [samples[-1]]
    elided = len(samples) - len(shown)
    rows = [[s.get(h, "") for h in headers] for s in shown]
    head = (f"timeline: {len(samples)} samples every "
            f"{timeline.get('interval', '?')} cycles"
            + (f" (showing every {step}th + last, {elided} rows elided)"
               if step > 1 else ""))
    return head + "\n" + format_table(headers, rows, precision=3)


def _render_manifest(mani: Dict[str, Any]) -> str:
    sha = (mani.get("git_sha") or "?")
    line = (f"provenance: git {sha[:12]}"
            f"{'+dirty' if mani.get('git_dirty') else ''} "
            f"repro {mani.get('repro_version', '?')} "
            f"py{mani.get('python', '?')} on {mani.get('hostname', '?')} "
            f"at {mani.get('timestamp', '?')}")
    point = mani.get("point")
    if point:
        line += (f"\n  point: {point.get('workload')}/"
                 f"{point.get('machine')}/{point.get('policy')} "
                 f"n={point.get('instructions')} w={point.get('warmup')} "
                 f"params={point.get('params_digest', '')}"
                 + (f" variant={point['variant']}"
                    if point.get("variant") else ""))
    return line


def render_report(obj: Dict[str, Any]) -> str:
    """Full human-readable report for one stats file."""
    sections: List[str] = []
    result = obj.get("result")
    if result:
        sections.append(
            f"{result.get('workload', '?')} on {result.get('machine', '?')} "
            f"under {result.get('policy', '?')}: "
            f"{result.get('instructions', 0)} instructions, "
            f"{result.get('cycles', 0)} cycles, "
            f"IPC {result.get('ipc', 0.0):.4f}, "
            f"ABC {result.get('abc_total', 0)}, "
            f"AVF {result.get('avf', 0.0):.4f}")
    stats = obj.get("stats")
    if stats:
        sections.append(_render_counters(stats))
    timeline = obj.get("timeline")
    if timeline:
        sections.append(_render_timeline(timeline))
    prof = obj.get("host_profile")
    if prof:
        line = (f"host: {prof.get('kips', 0.0):.1f} KIPS, "
                f"{prof.get('cycles_per_second', 0.0):.0f} cycles/s over "
                f"{prof.get('wall_seconds', 0.0):.3f}s")
        shares = prof.get("stage_shares")
        if shares:
            line += "\n  stage shares: " + " ".join(
                f"{k}={v:.1%}" for k, v in shares.items())
        sections.append(line)
    trace = obj.get("trace_summary")
    if trace:
        counts = " ".join(f"{k}={v}" for k, v in
                          sorted(trace.get("counts", {}).items()))
        sections.append(f"trace: {trace.get('emitted', 0)} events "
                        f"({trace.get('dropped', 0)} dropped) {counts}")
    manifest = obj.get("manifest")
    if manifest:
        sections.append(_render_manifest(manifest))
    if not sections:
        return "empty stats file"
    return "\n\n".join(sections)
