"""Structured pipeline event tracing with a Chrome trace-event exporter.

The tracer keeps a bounded ring buffer of typed events. Span events
(runahead intervals, FLUSH stalls, LLC misses) carry a duration; point
events (mispredict recovery, squashes, SST hits/training) are instants.
When the buffer overflows, the *oldest* events are dropped and counted —
a long run keeps its most recent window, which is what you want when
chasing a divergence at the end of a run.

:meth:`EventTracer.to_chrome` renders the buffer in the Chrome
trace-event JSON format (the ``{"traceEvents": [...]}`` object form), so
a ``--trace-out`` file loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``. Simulated cycles are mapped 1:1 to microseconds,
the only time unit the format natively displays.
"""

import json
from collections import Counter, deque
from typing import Any, Dict, List, NamedTuple, Optional

__all__ = ["TraceEvent", "EventTracer", "SPAN_EVENTS", "POINT_EVENTS"]


class TraceEvent(NamedTuple):
    """One typed pipeline event.

    ``dur`` is the span length in cycles for span events and ``-1`` for
    instants. ``args`` holds small JSON-serialisable payload details.
    """

    kind: str
    cycle: int
    dur: int
    args: Dict[str, Any]


#: kinds rendered as complete ("X") spans, mapped to a display track
SPAN_EVENTS = {
    "runahead": "mode",
    "flush_stall": "mode",
    "llc_miss": "memory",
}
#: kinds rendered as instant ("i") events, mapped to a display track
POINT_EVENTS = {
    "mispredict": "events",
    "squash": "events",
    "sst_hit": "events",
    "sst_train": "events",
    "runahead_prefetch": "memory",
}

_TRACKS = {"mode": 1, "memory": 2, "events": 3}


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.counts: Counter = Counter()
        #: kind -> entry cycle for currently-open spans
        self._open: Dict[str, Dict[str, Any]] = {}

    def __len__(self) -> int:
        return len(self._buf)

    def clear(self) -> None:
        """Drop buffered events and counts; spans still open survive so
        an interval straddling the measurement start is kept."""
        self._buf.clear()
        self.emitted = 0
        self.counts.clear()

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._buf)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buf)

    # ----------------------------------------------------------- emitting

    def emit(self, kind: str, cycle: int, dur: int = -1, **args) -> None:
        self._buf.append(TraceEvent(kind, cycle, dur, args))
        self.emitted += 1
        self.counts[kind] += 1

    def begin_span(self, kind: str, cycle: int, **args) -> None:
        """Open a span; closed (and emitted) by :meth:`end_span`."""
        self._open[kind] = {"cycle": cycle, "args": args}

    def end_span(self, kind: str, cycle: int, **extra) -> None:
        opened = self._open.pop(kind, None)
        if opened is None:
            return
        args = opened["args"]
        args.update(extra)
        self.emit(kind, opened["cycle"], max(0, cycle - opened["cycle"]),
                  **args)

    def close_open_spans(self, cycle: int) -> None:
        """Flush spans still open at end of run (e.g. an unfinished miss)."""
        for kind in list(self._open):
            self.end_span(kind, cycle, truncated=True)

    # ---------------------------------------------------------- exporting

    def to_chrome(self, label: str = "repro") -> Dict[str, Any]:
        """Render as a Chrome trace-event JSON object (Perfetto-loadable)."""
        events: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": label}},
        ]
        for track, tid in sorted(_TRACKS.items(), key=lambda kv: kv[1]):
            events.append({"name": "thread_name", "ph": "M", "pid": 0,
                           "tid": tid, "args": {"name": track}})
        for ev in self._buf:
            if ev.dur >= 0:
                track = SPAN_EVENTS.get(ev.kind, "events")
                events.append({
                    "name": ev.kind, "cat": track, "ph": "X",
                    "ts": ev.cycle, "dur": max(ev.dur, 1),
                    "pid": 0, "tid": _TRACKS[track], "args": ev.args,
                })
            else:
                track = POINT_EVENTS.get(ev.kind, "events")
                events.append({
                    "name": ev.kind, "cat": track, "ph": "i",
                    "ts": ev.cycle, "s": "t",
                    "pid": 0, "tid": _TRACKS[track], "args": ev.args,
                })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": label,
                "time_unit": "1 cycle = 1us",
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def write_chrome(self, path: str, label: str = "repro") -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome(label), f)

    def summary(self) -> Dict[str, int]:
        return dict(self.counts)


def validate_chrome_trace(obj: Any) -> Optional[str]:
    """Check an object against the trace-event schema we emit.

    Returns ``None`` when valid, else a human-readable reason. Used by the
    test suite and by ``repro report`` when pointed at a trace file.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return "missing traceEvents key"
    evs = obj["traceEvents"]
    if not isinstance(evs, list):
        return "traceEvents is not a list"
    for i, ev in enumerate(evs):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                return f"event {i} missing {key!r}"
        ph = ev["ph"]
        if ph in ("X", "i", "B", "E") and "ts" not in ev:
            return f"event {i} ({ph}) missing ts"
        if ph == "X" and "dur" not in ev:
            return f"event {i} (X) missing dur"
    return None
