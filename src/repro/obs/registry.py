"""Hierarchical stats registry (gem5-style).

Every statistic has a dotted hierarchical name (``core.commit.committed``,
``mem.llc.miss_latency``, ``ace.iq.bits``) and one of three kinds:

- :class:`Scalar` — a named counter. Either *owned* (incremented through
  the registry object) or *bound* (a zero-cost view onto an existing
  attribute of a simulator component via a getter, so hot paths keep
  bumping plain Python ints and pay nothing for observability).
- :class:`Distribution` — a bucketed histogram with running moments
  (ROB/IQ/LQ/SQ occupancy, LLC miss latency, ...).
- :class:`Formula` — a value derived from other stats at dump time
  (IPC, AVF). The formula receives a flat ``{name: value}`` dict, which
  for a measured-window dump contains *deltas*, so derived metrics are
  computed over exactly the window the caller marked.

The registry renders either a flat ``{name: value}`` snapshot (used for
interval deltas) or a nested tree (used for the ``--stats-out`` JSON and
``repro report``).
"""

from typing import Any, Callable, Dict, List, Optional

__all__ = ["Scalar", "Distribution", "Formula", "StatsRegistry"]


class Scalar:
    """A named integer/float counter, owned or bound to a getter.

    ``const`` scalars (configuration values like ``machine.total_bits``)
    are exempt from delta reporting: a measured-window dump shows their
    absolute value, not value-minus-mark.
    """

    __slots__ = ("name", "desc", "_value", "_getter", "const")

    def __init__(self, name: str, desc: str = "",
                 getter: Optional[Callable[[], Any]] = None,
                 const: bool = False):
        self.name = name
        self.desc = desc
        self._value = 0
        self._getter = getter
        self.const = const

    @property
    def value(self):
        if self._getter is not None:
            return self._getter()
        return self._value

    def inc(self, n=1) -> None:
        if self._getter is not None:
            raise TypeError(f"{self.name} is bound to a getter; read-only")
        self._value += n

    def set(self, v) -> None:
        if self._getter is not None:
            raise TypeError(f"{self.name} is bound to a getter; read-only")
        self._value = v


class Distribution:
    """Bucketed histogram with running count/sum/min/max.

    Values are grouped into fixed-width buckets (``bucket_size``), keyed by
    the bucket's lower edge. Weighted recording supports "occupancy held
    for N cycles" style samples.
    """

    __slots__ = ("name", "desc", "bucket_size", "count", "total",
                 "min", "max", "buckets")

    def __init__(self, name: str, desc: str = "", bucket_size: int = 1):
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.name = name
        self.desc = desc
        self.bucket_size = bucket_size
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def clear(self) -> None:
        """Forget all samples (e.g. at measurement-window start)."""
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def record(self, value, weight: int = 1) -> None:
        self.count += weight
        self.total += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = int(value // self.bucket_size) * self.bucket_size
        self.buckets[b] = self.buckets.get(b, 0) + weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile from bucket lower edges (p in [0, 1])."""
        if not self.count:
            return 0.0
        target = p * self.count
        seen = 0
        for edge in sorted(self.buckets):
            seen += self.buckets[edge]
            if seen >= target:
                return float(edge)
        return float(self.max if self.max is not None else 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "distribution",
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bucket_size": self.bucket_size,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Formula:
    """A derived stat computed from a flat value snapshot at dump time."""

    __slots__ = ("name", "desc", "fn")

    def __init__(self, name: str, fn: Callable[[Dict[str, Any]], float],
                 desc: str = ""):
        self.name = name
        self.desc = desc
        self.fn = fn

    def evaluate(self, values: Dict[str, Any]) -> float:
        return self.fn(values)


class StatsRegistry:
    """Ordered collection of named stats with hierarchical dumping."""

    def __init__(self) -> None:
        self._scalars: Dict[str, Scalar] = {}
        self._dists: Dict[str, Distribution] = {}
        self._formulas: Dict[str, Formula] = {}
        self._mark: Dict[str, Any] = {}

    # ------------------------------------------------------- registration

    def _check_free(self, name: str) -> None:
        if (name in self._scalars or name in self._dists
                or name in self._formulas):
            raise KeyError(f"duplicate stat name {name!r}")

    def scalar(self, name: str, desc: str = "",
               getter: Optional[Callable[[], Any]] = None,
               const: bool = False) -> Scalar:
        self._check_free(name)
        s = Scalar(name, desc, getter, const)
        self._scalars[name] = s
        return s

    def distribution(self, name: str, desc: str = "",
                     bucket_size: int = 1) -> Distribution:
        self._check_free(name)
        d = Distribution(name, desc, bucket_size)
        self._dists[name] = d
        return d

    def formula(self, name: str, fn: Callable[[Dict[str, Any]], float],
                desc: str = "") -> Formula:
        self._check_free(name)
        f = Formula(name, fn, desc)
        self._formulas[name] = f
        return f

    # ------------------------------------------------------------- lookup

    def __contains__(self, name: str) -> bool:
        return (name in self._scalars or name in self._dists
                or name in self._formulas)

    def names(self) -> List[str]:
        return (list(self._scalars) + list(self._dists)
                + list(self._formulas))

    def get(self, name: str):
        for table in (self._scalars, self._dists, self._formulas):
            if name in table:
                return table[name]
        raise KeyError(name)

    def value(self, name: str):
        if name in self._scalars:
            return self._scalars[name].value
        if name in self._formulas:
            return self._formulas[name].evaluate(self.flat())
        raise KeyError(name)

    # ----------------------------------------------------------- snapshot

    def flat(self) -> Dict[str, Any]:
        """Current scalar values, flat ``{name: value}``."""
        return {name: s.value for name, s in self._scalars.items()}

    def mark(self) -> None:
        """Record the current scalar values as the measurement baseline.

        A subsequent :meth:`dump` (or :meth:`deltas`) reports each scalar
        relative to this mark, so the stats file reconciles with a
        delta-based :class:`~repro.sim.SimResult`.
        """
        self._mark = self.flat()

    def deltas(self) -> Dict[str, Any]:
        """Flat scalar values relative to the last :meth:`mark` (or zero)."""
        mark = self._mark
        return {name: s.value if s.const else s.value - mark.get(name, 0)
                for name, s in self._scalars.items()}

    # --------------------------------------------------------------- dump

    def dump(self, since_mark: bool = True) -> Dict[str, Any]:
        """Nested-tree dump of every stat.

        Scalars report deltas since :meth:`mark` when ``since_mark`` (the
        default; falls back to raw values if no mark was set), formulas are
        evaluated over the same flat snapshot, and distributions render as
        summary dicts (distributions are not delta'd — reset or recreate
        them per measurement instead).
        """
        values = self.deltas() if since_mark else self.flat()
        tree: Dict[str, Any] = {}
        for name, v in values.items():
            _tree_set(tree, name, v)
        for name, f in self._formulas.items():
            _tree_set(tree, name, f.evaluate(values))
        for name, d in self._dists.items():
            _tree_set(tree, name, d.to_dict())
        return tree


def _tree_set(tree: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = tree
    for p in parts[:-1]:
        nxt = node.get(p)
        if not isinstance(nxt, dict) or nxt.get("kind") == "distribution":
            nxt = {}
            node[p] = nxt
        node = nxt
    leaf = parts[-1]
    if isinstance(node.get(leaf), dict):
        # A parent group already exists under this name (e.g. "ace" with
        # children and an "ace.total" scalar): store under "_value".
        node[leaf]["_value"] = value
    else:
        node[leaf] = value


def flatten_tree(tree: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Inverse of the nested dump: ``{dotted_name: leaf_value}``.

    Distribution nodes are kept whole (they are dicts tagged with
    ``kind == "distribution"``).
    """
    out: Dict[str, Any] = {}
    for k, v in tree.items():
        name = f"{prefix}.{k}" if prefix else k
        if isinstance(v, dict) and v.get("kind") != "distribution":
            out.update(flatten_tree(v, name))
        else:
            out[name] = v
    return out
