"""``repro top``: a live in-terminal view of a running sweep.

Tails a run ledger (:mod:`repro.obs.ledger`) and redraws a compact
status screen — progress bar, per-worker state, cache-hit rate, KIPS
trajectory and an ETA — every refresh period until the ledger records
``sweep_done`` (or forever with ``--follow``). Rendering is a pure
function of the :class:`~repro.obs.ledger.SweepStatus`, so the view is
testable without a terminal and doubles as the post-mortem summary
behind ``repro report <ledger>``.
"""

import sys
import time
from typing import Any, Dict, List

from repro.obs.ledger import (
    SweepStatus,
    check_complete,
    load_status,
    point_label,
    read_ledger,
)

__all__ = ["render_status", "render_ledger_report", "run_top"]

#: redraw: move home + clear to end of screen (no full clear: avoids
#: flicker on terminals that repaint slowly)
_ANSI_HOME_CLEAR = "\x1b[H\x1b[J"


def _bar(frac: float, width: int = 30) -> str:
    frac = min(1.0, max(0.0, frac))
    filled = int(round(frac * width))
    return "#" * filled + "-" * (width - filled)


def _dur(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    m, s = divmod(int(seconds), 60)
    if m < 60:
        return f"{m}m{s:02d}s"
    h, m = divmod(m, 60)
    return f"{h}h{m:02d}m"


def render_status(st: SweepStatus, now: float = None) -> str:
    """The ``repro top`` screen for one status snapshot (pure text)."""
    now = now if now is not None else time.time()
    lines: List[str] = []
    name = st.path or "<ledger>"
    state = ("done" if st.complete
             else "running" if st.started is not None else "waiting")
    lines.append(f"repro top — {name} [{state}]")

    if st.params:
        ctx = " ".join(f"{k}={v}" for k, v in sorted(st.params.items())
                       if not isinstance(v, (list, dict)))
        if ctx:
            lines.append(f"  sweep: {ctx}")
    mani = st.manifest
    if mani:
        sha = (mani.get("git_sha") or "?")[:12]
        dirty = "+dirty" if mani.get("git_dirty") else ""
        lines.append(f"  provenance: git {sha}{dirty} "
                     f"py{mani.get('python', '?')} "
                     f"host {mani.get('hostname', '?')}")

    total = st.total_points or max(st.terminal, 1)
    frac = st.terminal / total if total else 0.0
    counts = (f"done={st.done} cached={st.cached} errors={st.errors}")
    if st.quarantined:
        counts += f" quarantined={st.quarantined}"
    lines.append(f"  points: [{_bar(frac)}] {st.terminal}/{st.total_points}"
                 f"  {counts}")
    if st.worker_deaths or st.requeued:
        lines.append(f"  crash tolerance: {st.worker_deaths} worker "
                     f"death(s), {st.requeued} point(s) requeued")
    line = (f"  elapsed {_dur(st.elapsed_s)}"
            f"  cache-hit {st.cache_hit_rate:.0%}")
    if st.mean_kips:
        recent = [k for _, k in st.kips_trajectory[-8:]]
        line += (f"  KIPS mean {st.mean_kips:.1f}"
                 f" recent {sum(recent) / len(recent):.1f}")
    eta = st.eta_s()
    if eta is not None:
        line += f"  ETA {_dur(eta)}"
    lines.append(line)

    if st.workers:
        lines.append("  workers:")
        for pid in sorted(st.workers):
            w = st.workers[pid]
            age = max(0.0, now - w.last_ts)
            if w.dead:
                lines.append(f"    {pid:>8}  {w.points_done:>3} done  "
                             f"DEAD (work requeued)  [{_dur(age)} ago]")
                continue
            doing = w.current or f"idle after {w.last_event}"
            stale = "  (stale?)" if not st.complete and age > 60 else ""
            lines.append(f"    {pid:>8}  {w.points_done:>3} done  {doing}"
                         f"  [{_dur(age)} ago]{stale}")
    for label in st.error_points:
        lines.append(f"  ERROR {label} (see point_error in the ledger)")
    return "\n".join(lines)


def render_ledger_report(events: List[Dict[str, Any]],
                         path: str = "") -> str:
    """Post-mortem summary of a (finished) ledger for ``repro report``."""
    from repro.obs.ledger import summarize

    st = summarize(events, path=path)
    sections = [render_status(st, now=st.last_ts)]
    problems = check_complete(events)
    if problems:
        sections.append("ledger audit:")
        sections.extend(f"  {p}" for p in problems)
    else:
        sections.append("ledger audit: every point has exactly one "
                        "terminal event")
    errors = [e for e in events if e.get("ev") == "point_error"]
    for e in errors:
        tb = e.get("traceback", "").rstrip()
        sections.append(f"traceback for {point_label(e)}:\n{tb}")
    return "\n\n".join(sections)


def run_top(path: str, refresh_s: float = 1.0, once: bool = False,
            follow: bool = False, stream=None, max_wait_s: float = 0.0,
            ) -> int:
    """Tail ``path`` and redraw until the sweep completes.

    ``once`` renders a single snapshot (no ANSI control codes) — the CI
    and scripting mode. ``follow`` keeps tailing after ``sweep_done``
    (e.g. a ledger reused across sweeps). ``max_wait_s`` bounds the
    total watch time (0 = unbounded); exits 0 on a completed sweep,
    1 if any point errored or the wait timed out.
    """
    stream = stream if stream is not None else sys.stdout
    deadline = time.monotonic() + max_wait_s if max_wait_s else None
    while True:
        try:
            st = load_status(path)
        except FileNotFoundError:
            st = SweepStatus(path=path)
        if once:
            print(render_status(st), file=stream)
            return 1 if st.errors else 0
        print(_ANSI_HOME_CLEAR + render_status(st), file=stream, flush=True)
        if st.complete and not follow:
            return 1 if st.errors else 0
        if deadline is not None and time.monotonic() >= deadline:
            return 1
        time.sleep(refresh_s)
