"""The telemetry facade: one object bundling all observability pillars.

A :class:`Telemetry` instance is handed to :func:`repro.sim.simulate` (or
directly to :class:`~repro.core.core.OutOfOrderCore`) and wires itself
into the core's observer hook, the memory hierarchy's miss hook, and the
run loop's tick. Everything is a cheap no-op when a pillar is disabled;
a core built without telemetry pays a single ``is not None`` test per
run-loop iteration and per observer site.

Usage::

    from repro import simulate, BASELINE, RAR
    from repro.obs import Telemetry

    tele = Telemetry(interval=1000, trace=True, profile=True)
    result = simulate("mcf", BASELINE, RAR, telemetry=tele)
    tele.write_stats("stats.json", result)
    tele.write_trace("trace.json")        # open in ui.perfetto.dev
    print(tele.profiler.kips, "KIPS")
"""

import json
from typing import Any, Dict, Optional

from repro.obs.profiler import HostProfiler
from repro.obs.sampler import IntervalSampler
from repro.obs.tracer import EventTracer

__all__ = ["Telemetry"]


class Telemetry:
    """Bundles the stats registry view, sampler, tracer and profiler.

    Args:
        interval: interval-sampler period in cycles; 0 disables sampling.
        trace: enable the pipeline event tracer.
        trace_capacity: ring-buffer size for the tracer.
        profile: enable host-side throughput profiling.
        profile_stages: also instrument per-stage wall-clock shares
            (slows simulation; implies ``profile``).
        heartbeat_s: print a progress line every this many wall seconds
            (0 disables).
    """

    def __init__(self, interval: int = 0, trace: bool = False,
                 trace_capacity: int = 65536, profile: bool = False,
                 profile_stages: bool = False, heartbeat_s: float = 0.0,
                 stream=None):
        self.sampler = IntervalSampler(interval) if interval else None
        self.tracer = EventTracer(trace_capacity) if trace else None
        self.profiler = None
        if profile or profile_stages or heartbeat_s:
            self.profiler = HostProfiler(stages=profile_stages,
                                         heartbeat_s=heartbeat_s,
                                         stream=stream)
        self.registry = None
        self.core = None
        self.result = None
        self._chained_observer = None
        self._occ_dists = ()
        self._miss_latency = None

    # ------------------------------------------------------------ wiring

    def attach(self, core) -> None:
        """Bind to a core: registry, observer chain, hierarchy hook."""
        self.core = core
        self.registry = core.registry
        self._chained_observer = core.observer
        core.observer = self._on_event
        core.telemetry = self
        core.mem.observer = self._on_mem_event
        reg = self.registry
        self._miss_latency = reg.get("mem.llc.miss_latency")
        self._occ_dists = (
            (reg.get("core.rob.occupancy"), "rob_occ"),
            (reg.get("core.iq.occupancy"), "iq_occ"),
            (reg.get("core.lq.occupancy"), "lq_occ"),
            (reg.get("core.sq.occupancy"), "sq_occ"),
            (reg.get("mem.dram.queue_occupancy"), "dram_q"),
            (reg.get("mem.dram.bank_occupancy"), "dram_banks"),
        )
        if self.sampler is not None:
            self.sampler.reset(core)
        if self.profiler is not None:
            self.profiler.start(core)

    def begin_measurement(self, core) -> None:
        """Start the measured window (post-warmup): mark the registry and
        reset every pillar so dumps cover exactly the window."""
        core.registry.mark()
        for dist, _ in self._occ_dists:
            dist.clear()
        if self._miss_latency is not None:
            self._miss_latency.clear()
        if self.sampler is not None:
            self.sampler.reset(core)
        if self.tracer is not None:
            self.tracer.clear()
        if self.profiler is not None:
            self.profiler.reset()      # discard warmup from throughput
            self.profiler.start(core)

    def end_measurement(self, core, result=None) -> None:
        self.result = result
        if self.profiler is not None:
            self.profiler.stop(core)
        if self.tracer is not None:
            self.tracer.close_open_spans(core.cycle)

    # ----------------------------------------------------- run-loop tick

    def tick(self, core) -> None:
        """Called once per run-loop iteration by the core."""
        sampler = self.sampler
        if sampler is not None and core.cycle >= sampler.next_cycle:
            before = len(sampler.rows)
            sampler.sample(core)
            emitted = len(sampler.rows) - before
            row = sampler.rows[-1]
            for dist, key in self._occ_dists:
                dist.record(row[key], weight=emitted)
        if self.profiler is not None:
            self.profiler.maybe_heartbeat(core)

    # ------------------------------------------------------ event sinks

    def _on_event(self, event: str, cycle: int, **data) -> None:
        tracer = self.tracer
        if tracer is not None:
            if event == "runahead_enter":
                blocking = data.get("blocking")
                tracer.begin_span(
                    "runahead", cycle,
                    pc=getattr(getattr(blocking, "static", None), "pc", -1))
            elif event == "runahead_exit":
                tracer.end_span("runahead", cycle)
            elif event == "flush_enter":
                blocking = data.get("blocking")
                tracer.begin_span(
                    "flush_stall", cycle,
                    pc=getattr(getattr(blocking, "static", None), "pc", -1))
            elif event == "flush_exit":
                tracer.end_span("flush_stall", cycle)
            elif event == "mispredict":
                branch = data.get("branch")
                tracer.emit(
                    "mispredict", cycle,
                    pc=getattr(getattr(branch, "static", None), "pc", -1))
            elif event == "squash":
                tracer.emit("squash", cycle, count=len(data.get("uops", ())),
                            cause=str(data.get("cause")))
            elif event in ("sst_hit", "sst_train", "runahead_prefetch"):
                tracer.emit(event, cycle, **{
                    k: v for k, v in data.items()
                    if isinstance(v, (int, float, str, bool))})
        if self._chained_observer is not None:
            self._chained_observer(event, cycle, **data)

    def _on_mem_event(self, event: str, cycle: int, **data) -> None:
        if event == "llc_miss":
            done = data.get("done", cycle)
            if self._miss_latency is not None:
                self._miss_latency.record(done - cycle)
            if self.tracer is not None:
                self.tracer.emit("llc_miss", cycle, dur=done - cycle,
                                 addr=data.get("addr", -1),
                                 pc=data.get("pc", -1))

    # ---------------------------------------------------------- reports

    def stats_dict(self, result=None, manifest=None) -> Dict[str, Any]:
        """The full ``--stats-out`` payload: registry tree + extras.

        Every stats artifact carries a provenance ``manifest`` (git
        SHA/dirty flag, versions, hostname, timestamp — see
        :mod:`repro.obs.manifest`); ``manifest`` adds the caller's
        per-point record (run-key coordinates, params digest, seed)
        under its ``point`` key.
        """
        from repro.obs.manifest import host_manifest
        result = result if result is not None else self.result
        out: Dict[str, Any] = {"schema": "repro-stats-v1"}
        out["manifest"] = host_manifest(
            extra={"point": manifest} if manifest else None)
        if result is not None:
            out["result"] = _result_dict(result)
        if self.registry is not None:
            out["stats"] = self.registry.dump()
        if self.sampler is not None:
            out["timeline"] = {
                "interval": self.sampler.interval,
                "samples": self.sampler.rows,
            }
        if self.tracer is not None:
            out["trace_summary"] = {
                "emitted": self.tracer.emitted,
                "dropped": self.tracer.dropped,
                "counts": self.tracer.summary(),
            }
        if self.profiler is not None:
            out["host_profile"] = self.profiler.to_dict()
        return out

    def write_stats(self, path: str, result=None, manifest=None) -> None:
        with open(path, "w") as f:
            json.dump(self.stats_dict(result, manifest=manifest), f,
                      indent=1)

    def write_trace(self, path: str, label: Optional[str] = None) -> None:
        if self.tracer is None:
            raise RuntimeError("tracer not enabled (Telemetry(trace=True))")
        if label is None:
            label = "repro"
            if self.result is not None:
                label = (f"repro {self.result.workload}/"
                         f"{self.result.policy}")
        self.tracer.write_chrome(path, label)

    def write_timeline(self, path: str) -> int:
        if self.sampler is None:
            raise RuntimeError(
                "sampler not enabled (Telemetry(interval=N))")
        return self.sampler.write(path)


def _result_dict(result) -> Dict[str, Any]:
    d = {k: getattr(result, k) for k in (
        "workload", "machine", "policy", "instructions", "cycles", "ipc",
        "mlp", "mpki", "abc_total", "total_bits", "abc_head_blocked",
        "abc_full_stall", "runahead_triggers", "runahead_cycles",
        "runahead_prefetches", "flush_triggers", "branch_mispredicts",
        "demand_llc_misses")}
    d["abc"] = dict(result.abc)
    d["avf"] = result.avf
    return d
