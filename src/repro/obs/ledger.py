"""The run ledger: an append-only JSONL event stream for sweeps.

Every sweep (``ExperimentRunner.run_matrix`` / ``repro sweep
--ledger``) can record its full life cycle as typed events, one JSON
object per line, written via the multi-writer-safe
:func:`repro.common.io.append_jsonl` so the orchestrating process and
every pool worker append to the *same* file without interleaving:

========================  =================================================
event                     emitted when
========================  =================================================
``sweep_start``           the matrix is resolved; carries the point count,
                          sweep parameters and the full host manifest
``point_cached``          a point was satisfied from the result cache
``warmup_shared``         a worker finished the shared warmup checkpoint
                          for one workload group
``point_start``           a worker begins simulating one point
``point_done``            the point finished; wall seconds, KIPS, IPC and
                          the per-point provenance manifest
``point_error``           the point raised; the traceback rides along
``worker_heartbeat``      a worker reports liveness + per-group progress
``worker_dead``           the farm scheduler found a worker process dead
                          (SIGKILL/OOM/segfault); names the dead pid
``point_requeued``        an undelivered point of a dead worker went back
                          on the queue for another attempt
``point_quarantined``     a point exhausted its retry budget killing
                          workers and was quarantined (terminal)
``request_received``      ``repro serve`` claimed a spooled sweep request
``request_done``          the request's response file was written
``sweep_done``            the sweep returned; aggregate counts and wall
========================  =================================================

Every event carries ``ts`` (epoch seconds), ``pid`` and the ledger
``ev`` tag. Events are purely observational — simulation results are
bit-identical with the ledger on or off — and the terminal guarantee is
that every point of a completed sweep has exactly one terminal event
(``point_done`` / ``point_cached`` / ``point_error`` /
``point_quarantined``). A worker killed mid-point leaves a dangling
``point_start`` behind; the requeued attempt supplies the single
terminal event, so a crash-tolerant sweep still audits clean.

:func:`summarize` folds an event list into a :class:`SweepStatus` used
by ``repro top`` (live) and ``repro report`` (post-mortem).
"""

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.io import append_jsonl, read_jsonl

__all__ = [
    "EVENT_TYPES",
    "RunLedger",
    "SweepStatus",
    "WorkerState",
    "point_label",
    "read_ledger",
    "summarize",
]

EVENT_TYPES = (
    "sweep_start",
    "point_start",
    "point_done",
    "point_cached",
    "warmup_shared",
    "worker_heartbeat",
    "worker_dead",
    "point_requeued",
    "point_quarantined",
    "request_received",
    "request_done",
    "point_error",
    "sweep_done",
)

#: terminal events — a completed sweep has exactly one per point
TERMINAL_EVENTS = ("point_done", "point_cached", "point_error",
                   "point_quarantined")

#: scheduler-side events: emitted by the orchestrating process *about*
#: a worker or request, so they never mark the emitting pid as a worker
SCHEDULER_EVENTS = ("worker_dead", "point_requeued", "point_quarantined",
                    "request_received", "request_done")


def point_label(event: Dict[str, Any]) -> str:
    """``workload/machine/policy`` display key of a point event."""
    return (f"{event.get('workload', '?')}/{event.get('machine', '?')}/"
            f"{event.get('policy', '?')}")


class RunLedger:
    """Appends typed events to a JSONL file (multi-writer safe).

    Constructed from a path; pool workers re-create it from the same
    path (the object itself is trivially picklable state: one string).
    ``emit`` is the single write seam — every event method funnels
    through it, stamping ``ts`` and ``pid``.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)

    def emit(self, ev: str, **fields: Any) -> None:
        if ev not in EVENT_TYPES:
            raise ValueError(f"unknown ledger event {ev!r}")
        record = {"ev": ev, "ts": round(time.time(), 4),
                  "pid": os.getpid()}
        record.update(fields)
        append_jsonl(self.path, record)

    # ------------------------------------------------------ typed events

    def sweep_start(self, *, total_points: int, manifest: Dict[str, Any],
                    **fields: Any) -> None:
        self.emit("sweep_start", total_points=total_points,
                  manifest=manifest, **fields)

    def point_start(self, **fields: Any) -> None:
        self.emit("point_start", **fields)

    def point_done(self, *, wall_s: float, manifest: Dict[str, Any],
                   **fields: Any) -> None:
        self.emit("point_done", wall_s=round(wall_s, 4),
                  manifest=manifest, **fields)

    def point_cached(self, *, manifest: Dict[str, Any],
                     **fields: Any) -> None:
        self.emit("point_cached", manifest=manifest, **fields)

    def warmup_shared(self, *, wall_s: float, **fields: Any) -> None:
        self.emit("warmup_shared", wall_s=round(wall_s, 4), **fields)

    def worker_heartbeat(self, **fields: Any) -> None:
        self.emit("worker_heartbeat", **fields)

    def worker_dead(self, *, dead_pid: int, **fields: Any) -> None:
        self.emit("worker_dead", dead_pid=dead_pid, **fields)

    def point_requeued(self, *, attempt: int, **fields: Any) -> None:
        self.emit("point_requeued", attempt=attempt, **fields)

    def point_quarantined(self, *, error: str, **fields: Any) -> None:
        self.emit("point_quarantined", error=error, **fields)

    def request_received(self, *, request_id: str, **fields: Any) -> None:
        self.emit("request_received", request_id=request_id, **fields)

    def request_done(self, *, request_id: str, **fields: Any) -> None:
        self.emit("request_done", request_id=request_id, **fields)

    def point_error(self, *, error: str, traceback_text: str,
                    **fields: Any) -> None:
        self.emit("point_error", error=error,
                  traceback=traceback_text, **fields)

    def sweep_done(self, *, elapsed_s: float, **fields: Any) -> None:
        self.emit("sweep_done", elapsed_s=round(elapsed_s, 4), **fields)


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """All events of a ledger file; tolerant of a torn final line."""
    return [e for e in read_jsonl(path) if isinstance(e, dict)]


# ------------------------------------------------------------- summaries

@dataclass
class WorkerState:
    """Last-known activity of one worker pid."""

    pid: int
    last_event: str = ""
    last_ts: float = 0.0
    current: str = ""            # point label while between start/done
    points_done: int = 0
    dead: bool = False           # scheduler recorded a worker_dead for it


@dataclass
class SweepStatus:
    """Aggregated view of a ledger — the model behind ``repro top``."""

    path: str = ""
    started: Optional[float] = None
    finished: Optional[float] = None
    last_ts: float = 0.0
    total_points: int = 0
    done: int = 0
    cached: int = 0
    errors: int = 0
    quarantined: int = 0
    requeued: int = 0
    worker_deaths: int = 0
    requests: int = 0
    warmups: int = 0
    manifest: Dict[str, Any] = field(default_factory=dict)
    params: Dict[str, Any] = field(default_factory=dict)
    workers: Dict[int, WorkerState] = field(default_factory=dict)
    #: (ts, kips) per point_done, in ledger order — the KIPS trajectory
    kips_trajectory: List[Tuple[float, float]] = field(default_factory=list)
    point_walls: List[float] = field(default_factory=list)
    error_points: List[str] = field(default_factory=list)

    @property
    def terminal(self) -> int:
        """Points with a terminal event so far."""
        return self.done + self.cached + self.errors + self.quarantined

    @property
    def remaining(self) -> int:
        return max(0, self.total_points - self.terminal)

    @property
    def complete(self) -> bool:
        return self.finished is not None

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.terminal if self.terminal else 0.0

    @property
    def elapsed_s(self) -> float:
        if self.started is None:
            return 0.0
        end = self.finished if self.finished is not None else self.last_ts
        return max(0.0, end - self.started)

    @property
    def mean_kips(self) -> float:
        if not self.kips_trajectory:
            return 0.0
        vals = [k for _, k in self.kips_trajectory]
        return sum(vals) / len(vals)

    def eta_s(self) -> Optional[float]:
        """Remaining wall estimate from the per-point wall trajectory.

        Recent points dominate (simple mean over the last 8) so the
        estimate tracks a drifting KIPS trajectory; divided by the
        number of workers seen simulating, since points land in
        parallel. ``None`` until the first point has finished.
        """
        if self.complete or not self.point_walls or not self.remaining:
            return None
        recent = self.point_walls[-8:]
        per_point = sum(recent) / len(recent)
        active = max(1, len([w for w in self.workers.values()
                             if not w.dead and (w.points_done or w.current)]))
        return per_point * self.remaining / active


def summarize(events: List[Dict[str, Any]],
              path: str = "") -> SweepStatus:
    """Fold ledger events into a :class:`SweepStatus` (pure function)."""
    st = SweepStatus(path=path)
    for e in events:
        ev = e.get("ev")
        ts = float(e.get("ts", 0.0))
        st.last_ts = max(st.last_ts, ts)
        pid = int(e.get("pid", 0))
        if ev == "sweep_start":
            st.started = ts
            st.total_points = int(e.get("total_points", 0))
            st.manifest = e.get("manifest") or {}
            st.params = {k: v for k, v in e.items()
                         if k not in ("ev", "ts", "pid", "total_points",
                                      "manifest")}
            continue
        if ev == "sweep_done":
            st.finished = ts
            continue
        if ev not in EVENT_TYPES or ev is None:
            continue
        if ev in SCHEDULER_EVENTS:
            if ev == "worker_dead":
                st.worker_deaths += 1
                dead = st.workers.get(int(e.get("dead_pid", 0)))
                if dead is not None:
                    dead.dead = True
                    dead.current = ""
            elif ev == "point_requeued":
                st.requeued += 1
            elif ev == "point_quarantined":
                st.quarantined += 1
                st.error_points.append(
                    f"{point_label(e)} (quarantined)")
            elif ev == "request_received":
                st.requests += 1
            continue
        w = st.workers.setdefault(pid, WorkerState(pid=pid))
        w.last_event, w.last_ts = ev, ts
        if ev == "point_start":
            w.current = point_label(e)
        elif ev == "point_done":
            st.done += 1
            w.points_done += 1
            w.current = ""
            if "wall_s" in e:
                st.point_walls.append(float(e["wall_s"]))
            if "kips" in e:
                st.kips_trajectory.append((ts, float(e["kips"])))
        elif ev == "point_cached":
            st.cached += 1
        elif ev == "point_error":
            st.errors += 1
            w.current = ""
            st.error_points.append(point_label(e))
        elif ev == "warmup_shared":
            st.warmups += 1
            mode = e.get("mode", "detailed")
            w.current = (f"warmup {e.get('workload', '?')}"
                         + (f" ({mode})" if mode != "detailed" else ""))
    if st.total_points == 0:
        st.total_points = st.terminal
    return st


def load_status(path: str) -> SweepStatus:
    """Read + summarize in one call (the ``repro top`` refresh path)."""
    return summarize(read_ledger(path), path=path)


def check_complete(events: List[Dict[str, Any]]) -> List[str]:
    """Audit a finished ledger: every announced point must have exactly
    one terminal event. Returns human-readable problem lines (empty
    means the terminal guarantee held)."""
    problems: List[str] = []
    terminal: Dict[str, int] = {}
    for e in events:
        if e.get("ev") in TERMINAL_EVENTS:
            label = point_label(e)
            terminal[label] = terminal.get(label, 0) + 1
    st = summarize(events)
    for label, n in sorted(terminal.items()):
        if n != 1:
            problems.append(f"{label}: {n} terminal events (expected 1)")
    if st.total_points and len(terminal) != st.total_points:
        problems.append(f"{len(terminal)} distinct points have terminal "
                        f"events, sweep announced {st.total_points}")
    if not st.complete and not problems:
        problems.append("no sweep_done event (sweep crashed or still "
                        "running)")
    return problems
