"""Interval timeline sampling.

Every ``interval`` cycles the sampler snapshots the live pipeline — IPC
over the elapsed interval, ROB/IQ/LQ/SQ occupancy, outstanding LLC
misses, the controller mode (normal / runahead / flush-stall), and the
ACE-bit accumulation rate — into an append-only timeline. Because the
core fast-forwards idle stretches, a single wakeup can cross several
interval boundaries; one row is emitted per crossed boundary (pipeline
state is constant across a fast-forwarded span by construction, so the
repeated occupancies are exact, and per-interval rates are pro-rated).

The timeline exports as JSONL (one object per row) or CSV, and also rides
along inside the ``--stats-out`` JSON.
"""

import csv
import json
from typing import Any, Dict, List

__all__ = ["IntervalSampler", "TIMELINE_FIELDS"]

TIMELINE_FIELDS = (
    "cycle", "committed", "ipc", "rob_occ", "iq_occ", "lq_occ", "sq_occ",
    "outstanding_misses", "dram_q", "dram_banks", "mode", "runahead_frac",
    "abc_rate", "phase",
)


class IntervalSampler:
    """Fixed-interval pipeline snapshots over a run."""

    def __init__(self, interval: int = 1000):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.rows: List[Dict[str, Any]] = []
        self.next_cycle = interval
        self._last_cycle = 0
        self._last_committed = 0
        self._last_abc = 0
        self._last_ra_cycles = 0

    def reset(self, core) -> None:
        """Restart the timeline at the core's current state (post-warmup).

        Boundaries align to the global cycle grid (multiples of
        ``interval``) so timelines from different runs line up.
        """
        self.rows = []
        self._last_cycle = core.cycle
        self._last_committed = core.stats.committed
        self._last_abc = core.ace.total
        self._last_ra_cycles = core.stats.runahead_cycles
        self.next_cycle = (core.cycle // self.interval + 1) * self.interval

    def sample(self, core) -> None:
        """Emit one row per interval boundary crossed since the last call."""
        cycle = core.cycle
        if cycle < self.next_cycle:
            return
        s = core.stats
        committed, abc = s.committed, core.ace.total
        ra_cycles = s.runahead_cycles
        span = cycle - self._last_cycle
        d_committed = committed - self._last_committed
        d_abc = abc - self._last_abc
        d_ra = ra_cycles - self._last_ra_cycles
        ipc = d_committed / span if span else 0.0
        abc_rate = d_abc / span if span else 0.0
        ra_frac = min(1.0, d_ra / span) if span else 0.0
        dram = core.mem.dram
        occ = {
            "rob_occ": len(core.rob),
            "iq_occ": len(core.iq),
            "lq_occ": core.lsq.lq_used,
            "sq_occ": core.lsq.sq_used,
            "outstanding_misses": core._out_misses,
            "dram_q": dram.queue_depth(cycle),
            "dram_banks": dram.busy_banks(cycle),
            "mode": core.mode.name,
            # Workload phase at the fetch frontier (0 for stationary
            # workloads): an approximation of "the phase being executed"
            # — commit lags fetch by at most the window, far below the
            # thousands of instructions a phase segment spans.
            "phase": core.trace.phase_of(core.fetch_idx),
        }
        rows = self.rows
        while self.next_cycle <= cycle:
            row = {"cycle": self.next_cycle,
                   "committed": committed,
                   "ipc": ipc,
                   "abc_rate": abc_rate,
                   "runahead_frac": ra_frac}
            row.update(occ)
            rows.append(row)
            self.next_cycle += self.interval
        self._last_cycle = cycle
        self._last_committed = committed
        self._last_abc = abc
        self._last_ra_cycles = ra_cycles

    # ---------------------------------------------------------- exporting

    def to_jsonl(self, path: str) -> int:
        with open(path, "w") as f:
            for row in self.rows:
                f.write(json.dumps(row) + "\n")
        return len(self.rows)

    def to_csv(self, path: str) -> int:
        with open(path, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=list(TIMELINE_FIELDS))
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return len(self.rows)

    def write(self, path: str) -> int:
        """Dispatch on extension: ``.csv`` → CSV, anything else → JSONL."""
        if path.endswith(".csv"):
            return self.to_csv(path)
        return self.to_jsonl(path)
