"""Host-side (wall-clock) profiling of the simulator itself.

Three facilities for future performance work:

- **Throughput**: simulated KIPS (committed kilo-instructions per wall
  second) and cycles/second over a measured region — the baseline number
  every perf PR should move.
- **Per-stage shares**: opt-in instrumentation that wraps the core's
  pipeline-stage methods with ``perf_counter`` timers, reporting which
  stage the host CPU actually spends its time in. Adds ~2x overhead, so
  it is never on by default.
- **Heartbeat**: a periodic one-line progress report for long runs
  (cycle, committed, live KIPS), throttled by wall time. Routed through
  the central logging layer (:mod:`repro.obs.log`) so ``--quiet``
  silences it and ``--log-json`` structures it; when logging was never
  configured (bare library use) it falls back to a plain stderr line,
  and an explicitly passed ``stream`` always wins (tests, embedding).
"""

import sys
import time
from typing import Any, Dict, Optional

from repro.obs import log as obs_log

__all__ = ["HostProfiler"]

_log = obs_log.get_logger("profiler")

#: pipeline stage methods wrapped by ``profile_stages``, as
#: (core attribute holding the owning component, method name, report key)
_STAGES = (
    ("engine", "process_events", "events"),
    ("commit_unit", "step", "commit"),
    ("runahead_ctl", "step", "controller"),
    ("backend", "_do_issue", "issue"),
    ("backend", "_do_dispatch", "dispatch"),
    ("frontend_stage", "step", "fetch"),
    ("engine", "fast_forward", "fast_forward"),
)


class HostProfiler:
    """Wall-clock throughput, optional stage breakdown, heartbeat."""

    def __init__(self, stages: bool = False, heartbeat_s: float = 0.0,
                 stream=None):
        self.stages_enabled = stages
        self.heartbeat_s = heartbeat_s
        #: None routes heartbeats through the logging layer; a stream
        #: pins them to that stream regardless of log configuration.
        self.stream = stream
        self.stage_seconds: Dict[str, float] = {}
        self.wall_seconds = 0.0
        self.instructions = 0
        self.cycles = 0
        self._t0: Optional[float] = None
        self._start_committed = 0
        self._start_cycle = 0
        self._hb_next = 0.0
        self._hb_calls = 0
        self.heartbeats = 0

    # ------------------------------------------------------------ region

    def reset(self) -> None:
        """Zero accumulated throughput totals (stage timings are kept:
        they describe the host, not the measured window)."""
        self.wall_seconds = 0.0
        self.instructions = 0
        self.cycles = 0
        self._t0 = None

    def start(self, core) -> None:
        """Begin the measured region (idempotent per region)."""
        if self.stages_enabled:
            self.profile_stages(core)
        self._start_committed = core.stats.committed
        self._start_cycle = core.cycle
        self._t0 = time.perf_counter()
        self._hb_next = self._t0 + self.heartbeat_s

    def stop(self, core) -> None:
        if self._t0 is None:
            return
        self.wall_seconds += time.perf_counter() - self._t0
        self.instructions += core.stats.committed - self._start_committed
        self.cycles += core.cycle - self._start_cycle
        self._t0 = None

    @property
    def kips(self) -> float:
        """Simulated kilo-instructions committed per wall second."""
        if not self.wall_seconds:
            return 0.0
        return self.instructions / self.wall_seconds / 1000.0

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    # ------------------------------------------------------------ stages

    def profile_stages(self, core) -> None:
        """Wrap the pipeline components' stage methods with wall-clock
        timers (instance-level shadowing, so only this core is slowed)."""
        shares = self.stage_seconds
        for owner_attr, name, key in _STAGES:
            owner = getattr(core, owner_attr)
            bound = getattr(owner, name)
            shares.setdefault(key, 0.0)

            def timed(*args, _fn=bound, _key=key, **kw):
                t = time.perf_counter()
                try:
                    return _fn(*args, **kw)
                finally:
                    shares[_key] += time.perf_counter() - t

            setattr(owner, name, timed)

    def stage_shares(self) -> Dict[str, float]:
        """Per-stage fraction of the total instrumented wall time."""
        total = sum(self.stage_seconds.values())
        if not total:
            return {}
        return {k: v / total
                for k, v in sorted(self.stage_seconds.items(),
                                   key=lambda kv: -kv[1])}

    # --------------------------------------------------------- heartbeat

    def maybe_heartbeat(self, core) -> None:
        """Called from the run loop; prints at most once per period.

        ``perf_counter`` is only consulted every 256 calls so the check
        is nearly free on the simulation hot path.
        """
        if not self.heartbeat_s:
            return
        self._hb_calls += 1
        if self._hb_calls & 255:
            return
        now = time.perf_counter()
        if now < self._hb_next or self._t0 is None:
            return
        self._hb_next = now + self.heartbeat_s
        elapsed = now - self._t0
        done = core.stats.committed - self._start_committed
        kips = done / elapsed / 1000.0 if elapsed else 0.0
        self.heartbeats += 1
        message = (f"cycle {core.cycle} committed {core.stats.committed} "
                   f"({kips:.1f} KIPS)")
        if self.stream is not None:
            print(f"[repro] {message}", file=self.stream)
        elif obs_log.is_configured():
            _log.info("heartbeat", extra={"data": {
                "cycle": core.cycle, "committed": core.stats.committed,
                "kips": round(kips, 1)}})
        else:
            # Library use with no logging configured: keep the legacy
            # plain stderr line rather than swallowing the progress.
            print(f"[repro] {message}", file=sys.stderr)

    # ------------------------------------------------------------ report

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "wall_seconds": self.wall_seconds,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "kips": self.kips,
            "cycles_per_second": self.cycles_per_second,
        }
        shares = self.stage_shares()
        if shares:
            out["stage_shares"] = shares
        return out
