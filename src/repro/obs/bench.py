"""Bench history: append KIPS/speedup records, diff for regressions.

The ``BENCH_*.json`` trajectory files at the repo root are JSON lists
of records, one appended per CI run. This module centralises what
``benchmarks/perf_smoke.py`` previously hand-rolled:

- :func:`append_entry` — read-modify-write a history file atomically
  (via :func:`~repro.common.io.atomic_write_json`), stamping the
  standard timestamp/python/host header plus the current git SHA so a
  bench record is attributable to a revision.
- :func:`ledger_kips` — aggregate the KIPS trajectory out of a run
  ledger's ``point_done`` events, so a sweep's bench entry is derived
  from the same event stream that ``repro top`` monitors.
- :func:`check_regression` — compare numeric fields of the newest entry
  against the previous one and report any that dropped below ``floor``
  (default 0.8, i.e. a >20% regression) — the CI gate.
- :func:`diff_entries` — human-readable table of the last N entries for
  a metric, for postmortems and PR descriptions.
"""

import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.common.io import atomic_write_json

__all__ = [
    "REGRESSION_FLOOR",
    "append_entry",
    "check_regression",
    "diff_entries",
    "ledger_kips",
    "load_history",
]

#: a metric may drop to this fraction of the previous committed entry
#: before the gate fails (hosted-runner wall clocks are noisy)
REGRESSION_FLOOR = 0.8


def load_history(path: str) -> List[Dict[str, Any]]:
    """The history list; an unreadable/absent file is an empty history."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            history = json.load(f)
    except (json.JSONDecodeError, OSError):
        return []
    return history if isinstance(history, list) else []


def base_record() -> Dict[str, Any]:
    """The standard header every bench record starts from."""
    from repro.obs.manifest import git_state

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "host": platform.machine(),
        "git_sha": git_state()["sha"],
    }


def append_entry(path: str, record: Dict[str, Any],
                 stamp: bool = True) -> int:
    """Append ``record`` to the history at ``path``; returns its length.

    ``stamp`` merges :func:`base_record` under the caller's fields
    (caller wins on conflicts). The write is atomic, so a crashed CI
    step never leaves a torn history behind.
    """
    history = load_history(path)
    if stamp:
        merged = base_record()
        merged.update(record)
        record = merged
    history.append(record)
    atomic_write_json(path, history, indent=1)
    return len(history)


def ledger_kips(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """KIPS aggregates of a ledger's ``point_done`` events.

    Returns ``points`` (label -> KIPS), the mean across points, total
    simulated wall and the sweep elapsed/speedup when the ledger has
    the sweep envelope events (speedup = serial cost, i.e. the sum of
    per-point walls, over the actual sweep wall).
    """
    from repro.obs.ledger import point_label, summarize

    st = summarize(list(events))
    points: Dict[str, float] = {}
    wall_sum = 0.0
    for e in events:
        if e.get("ev") != "point_done":
            continue
        if "kips" in e:
            points[point_label(e)] = round(float(e["kips"]), 2)
        wall_sum += float(e.get("wall_s", 0.0))
    out: Dict[str, Any] = {
        "points": points,
        "mean_kips": round(st.mean_kips, 2),
        "points_done": st.done,
        "points_cached": st.cached,
        "point_wall_s": round(wall_sum, 3),
    }
    if st.started is not None and st.elapsed_s:
        out["elapsed_s"] = round(st.elapsed_s, 3)
        if wall_sum:
            out["speedup"] = round(wall_sum / st.elapsed_s, 3)
    return out


def _numeric_leaves(record: Dict[str, Any],
                    prefix: str = "") -> Dict[str, float]:
    """Flatten numeric fields (incl. one nested ``points`` dict level);
    header fields never participate in regression checks."""
    skip = {"timestamp", "python", "host", "git_sha", "instructions",
            "warmup", "cycles", "jobs", "cpus", "elapsed_s", "serial_s",
            "parallel_s", "wall_seconds", "point_wall_s", "points_done",
            "points_cached"}
    out: Dict[str, float] = {}
    for k, v in record.items():
        if k in skip:
            continue
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)):
            out[prefix + k] = float(v)
        elif isinstance(v, dict) and not prefix:
            out.update(_numeric_leaves(v, prefix=f"{k}."))
    return out


def check_regression(history: Sequence[Dict[str, Any]],
                     floor: float = REGRESSION_FLOOR,
                     fields: Optional[Sequence[str]] = None) -> List[str]:
    """Compare the last entry against the previous; list regressions.

    Higher-is-better semantics (KIPS, speedup, IPC). ``fields`` limits
    the check to specific flattened keys (e.g. ``["kips"]`` or
    ``["points.mcf/OOO"]``); by default every shared numeric field is
    gated. Returns human-readable lines, empty when clean.
    """
    if len(history) < 2:
        return []
    prev = _numeric_leaves(history[-2])
    last = _numeric_leaves(history[-1])
    keys = fields if fields is not None else sorted(set(prev) & set(last))
    problems: List[str] = []
    for key in keys:
        ref, got = prev.get(key), last.get(key)
        if not ref or got is None:
            continue
        if got < floor * ref:
            problems.append(
                f"{key}: {got:g} < {floor:.0%} of the previous committed "
                f"{ref:g}")
    return problems


def diff_entries(history: Sequence[Dict[str, Any]], n: int = 5,
                 ) -> str:
    """Render the last ``n`` entries' numeric fields side by side."""
    from repro.analysis.tables import format_table

    tail = list(history[-n:])
    if not tail:
        return "no bench entries"
    keys: List[str] = []
    flats = [_numeric_leaves(r) for r in tail]
    for flat in flats:
        for k in flat:
            if k not in keys:
                keys.append(k)
    headers = ["entry"] + keys
    rows = []
    for r, flat in zip(tail, flats):
        label = (r.get("timestamp", "?")[:16]
                 + (f" @{r['git_sha'][:8]}" if r.get("git_sha") else ""))
        rows.append([label] + [flat.get(k, "") for k in keys])
    return format_table(headers, rows, precision=2)
