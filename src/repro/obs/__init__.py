"""Observability: stats registry, interval timelines, event tracing.

Three pillars (see ``docs/metrics.md`` for the naming scheme):

- :class:`~repro.obs.registry.StatsRegistry` — hierarchical named
  counters, distributions and formulas, one per core.
- :class:`~repro.obs.sampler.IntervalSampler` — per-N-cycle pipeline
  snapshots exportable as JSONL/CSV.
- :class:`~repro.obs.tracer.EventTracer` — bounded ring buffer of typed
  pipeline events with a Chrome trace-event (Perfetto) exporter.

Plus :class:`~repro.obs.profiler.HostProfiler` for host-side wall-clock
profiling, all bundled by :class:`~repro.obs.telemetry.Telemetry`.

The sweep/orchestration layer (see ``docs/observability.md``) adds:

- :class:`~repro.obs.ledger.RunLedger` — append-only JSONL event
  stream recording a sweep's full life cycle, one terminal event per
  point, tailable live with ``repro top``.
- :mod:`~repro.obs.manifest` — provenance manifests (git SHA, params
  digest, versions, host) embedded in stats/cache/ledger artifacts.
- :mod:`~repro.obs.log` — the central stdlib-logging layer behind
  ``--log-json`` / ``--quiet`` / ``--verbose``, multiprocessing-safe.
- :mod:`~repro.obs.bench` — bench-history records and the CI
  regression gate over them.
"""

from repro.obs import log
from repro.obs.ledger import RunLedger, SweepStatus, read_ledger, summarize
from repro.obs.manifest import host_manifest, point_manifest
from repro.obs.profiler import HostProfiler
from repro.obs.registry import (
    Distribution,
    Formula,
    Scalar,
    StatsRegistry,
    flatten_tree,
)
from repro.obs.report import load_stats, render_report
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.obs.tracer import EventTracer, TraceEvent, validate_chrome_trace

__all__ = [
    "Telemetry",
    "StatsRegistry",
    "Scalar",
    "Distribution",
    "Formula",
    "IntervalSampler",
    "EventTracer",
    "TraceEvent",
    "HostProfiler",
    "RunLedger",
    "SweepStatus",
    "flatten_tree",
    "host_manifest",
    "load_stats",
    "log",
    "point_manifest",
    "read_ledger",
    "render_report",
    "summarize",
    "validate_chrome_trace",
]
