"""Observability: stats registry, interval timelines, event tracing.

Three pillars (see ``docs/metrics.md`` for the naming scheme):

- :class:`~repro.obs.registry.StatsRegistry` — hierarchical named
  counters, distributions and formulas, one per core.
- :class:`~repro.obs.sampler.IntervalSampler` — per-N-cycle pipeline
  snapshots exportable as JSONL/CSV.
- :class:`~repro.obs.tracer.EventTracer` — bounded ring buffer of typed
  pipeline events with a Chrome trace-event (Perfetto) exporter.

Plus :class:`~repro.obs.profiler.HostProfiler` for host-side wall-clock
profiling, all bundled by :class:`~repro.obs.telemetry.Telemetry`.
"""

from repro.obs.profiler import HostProfiler
from repro.obs.registry import (
    Distribution,
    Formula,
    Scalar,
    StatsRegistry,
    flatten_tree,
)
from repro.obs.report import load_stats, render_report
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.obs.tracer import EventTracer, TraceEvent, validate_chrome_trace

__all__ = [
    "Telemetry",
    "StatsRegistry",
    "Scalar",
    "Distribution",
    "Formula",
    "IntervalSampler",
    "EventTracer",
    "TraceEvent",
    "HostProfiler",
    "flatten_tree",
    "load_stats",
    "render_report",
    "validate_chrome_trace",
]
