"""Central logging layer for the simulator and the sweep orchestrator.

All diagnostic output — profiler heartbeats, sweep progress, worker
health — goes through stdlib :mod:`logging` under the ``"repro"``
namespace so one configuration point controls verbosity and format:

- :func:`configure` wires the root ``repro`` logger to **stderr**
  (human output stays on stdout) with either a compact human formatter
  or a JSON-lines formatter (``--log-json``); ``--quiet`` raises the
  threshold to WARNING, ``--verbose`` lowers it to DEBUG.
- Structured fields ride on the standard ``extra`` mechanism under a
  single ``data`` key: ``log.info("point done", extra={"data":
  {"kips": 12.3}})``. The human formatter renders them as trailing
  ``key=value`` pairs, the JSON formatter embeds them verbatim.
- Multiprocessing safety: pool workers must not write to one stderr
  stream concurrently (interleaved lines) nor inherit file handlers.
  :func:`worker_log_queue` + :func:`install_worker_handler` route every
  worker record through a ``multiprocessing`` queue drained by a
  ``QueueListener`` in the parent — the pattern from the stdlib logging
  cookbook. ``ExperimentRunner.run_matrix`` installs this automatically
  around its pool.

When :func:`configure` was never called (library use), the ``repro``
logger carries a ``NullHandler`` so records vanish silently instead of
triggering the root logger's "no handlers" warning; callers that need
output without configuration (the profiler heartbeat's legacy stream
mode) can check :func:`is_configured`.
"""

import io
import json
import logging
import logging.handlers
import sys
import time
from typing import Any, Dict, Optional

__all__ = [
    "JsonLineFormatter",
    "configure",
    "get_logger",
    "install_worker_handler",
    "is_configured",
    "start_listener",
    "worker_log_queue",
]

ROOT_NAME = "repro"

_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    root = logging.getLogger(ROOT_NAME)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
    return root.getChild(name) if name else root


def is_configured() -> bool:
    """True once :func:`configure` has installed a real handler."""
    return _configured


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg, data."""

    def format(self, record: logging.LogRecord) -> str:
        out: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        data = getattr(record, "data", None)
        if data:
            out["data"] = data
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, separators=(",", ":"), default=str)


class HumanFormatter(logging.Formatter):
    """``[repro] msg key=value ...`` — terse, grep-friendly stderr."""

    def format(self, record: logging.LogRecord) -> str:
        msg = record.getMessage()
        data = getattr(record, "data", None)
        if data:
            msg += " " + " ".join(f"{k}={_fmt(v)}" for k, v in data.items())
        prefix = f"[{ROOT_NAME}]"
        if record.levelno >= logging.WARNING:
            prefix = f"[{ROOT_NAME}:{record.levelname.lower()}]"
        line = f"{prefix} {msg}"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.3g}"
    return str(v)


def configure(json_lines: bool = False, quiet: bool = False,
              verbose: bool = False, stream: Optional[io.IOBase] = None,
              ) -> logging.Logger:
    """(Re)configure the ``repro`` logger; returns it.

    Idempotent: the previous configuration's handlers are replaced, so
    tests and repeated CLI entry calls never stack duplicate handlers.
    ``quiet`` wins over ``verbose`` when both are passed.
    """
    global _configured
    root = logging.getLogger(ROOT_NAME)
    for h in list(root.handlers):
        root.removeHandler(h)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLineFormatter() if json_lines
                         else HumanFormatter())
    root.addHandler(handler)
    if quiet:
        root.setLevel(logging.WARNING)
    elif verbose:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)
    root.propagate = False
    _configured = True
    return root


def reset() -> None:
    """Undo :func:`configure` (tests): drop handlers, mark unconfigured."""
    global _configured
    root = logging.getLogger(ROOT_NAME)
    for h in list(root.handlers):
        root.removeHandler(h)
    root.addHandler(logging.NullHandler())
    root.setLevel(logging.NOTSET)
    _configured = False


# ------------------------------------------------------- multiprocessing

def worker_log_queue(ctx=None):
    """A queue for shipping worker log records to the parent."""
    if ctx is None:
        import multiprocessing as mp
        ctx = mp
    return ctx.Queue()


def install_worker_handler(queue) -> None:
    """Called inside a pool worker (initializer): replace the inherited
    handlers with a ``QueueHandler`` so records cross the process
    boundary as pickled records, serialised by the parent's listener."""
    root = logging.getLogger(ROOT_NAME)
    for h in list(root.handlers):
        root.removeHandler(h)
    root.addHandler(logging.handlers.QueueHandler(queue))
    root.propagate = False


class _ListenerHandle:
    """Context manager stopping the listener (and flushing the queue)."""

    def __init__(self, listener):
        self._listener = listener

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._listener is not None:
            self._listener.stop()
            self._listener = None


def start_listener(queue) -> _ListenerHandle:
    """Drain ``queue`` through the parent's configured handlers.

    Records re-enter the parent's ``repro`` logger handlers directly
    (level-filtered at the worker side already), so quiet/verbose/json
    settings apply to worker output exactly as to local output.
    """
    root = logging.getLogger(ROOT_NAME)
    listener = logging.handlers.QueueListener(
        queue, *root.handlers, respect_handler_level=True)
    listener.start()
    return _ListenerHandle(listener)


def now() -> float:
    """Wall-clock timestamp helper (one seam for tests to patch)."""
    return time.time()
