"""Load and store queues.

Occupancy-only model: entries are allocated at dispatch (dispatch stalls
when the relevant queue is full) and released at commit or squash. Timing
of the memory accesses themselves is handled by the hierarchy; the LSQ's
simulator role is (a) back-pressure and (b) the ACE-vulnerable state its
entries hold between execute and commit (120 b/entry LQ, 184 b/entry SQ).

Store-to-load forwarding and memory-order checking are not modelled: the
synthetic workloads keep load and store footprints on distinct lines, so
forwarding would never fire (documented substitution, DESIGN.md §2).
"""

from repro.isa.uop import DynUop


class LoadStoreQueues:
    def __init__(self, lq_size: int, sq_size: int):
        self.lq_size = lq_size
        self.sq_size = sq_size
        self.lq_used = 0
        self.sq_used = 0

    @property
    def lq_full(self) -> bool:
        return self.lq_used >= self.lq_size

    @property
    def sq_full(self) -> bool:
        return self.sq_used >= self.sq_size

    def can_allocate(self, uop: DynUop) -> bool:
        if uop.static.is_load:
            return not self.lq_full
        if uop.static.is_store:
            return not self.sq_full
        return True

    def allocate(self, uop: DynUop) -> None:
        if uop.static.is_load:
            if self.lq_full:
                raise OverflowError("LQ full")
            self.lq_used += 1
            uop.in_lq = True
        elif uop.static.is_store:
            if self.sq_full:
                raise OverflowError("SQ full")
            self.sq_used += 1
            uop.in_sq = True

    def release(self, uop: DynUop) -> None:
        """Release the entry held by a dispatched load/store.

        Releasing a load/store whose flags are already cleared is a
        double release (commit + squash double-accounting) and raises
        instead of silently no-opping — a silent no-op would leave the
        occupancy counters permanently high and mask the caller's bug.
        """
        st = uop.static
        if st.is_load:
            if not uop.in_lq:
                raise RuntimeError(f"LQ double release: {uop!r}")
            self.lq_used -= 1
            uop.in_lq = False
        elif st.is_store:
            if not uop.in_sq:
                raise RuntimeError(f"SQ double release: {uop!r}")
            self.sq_used -= 1
            uop.in_sq = False
        if self.lq_used < 0 or self.sq_used < 0:
            raise RuntimeError("LSQ underflow")
