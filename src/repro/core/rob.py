"""Reorder buffer with the RAR head countdown timer.

The ROB is a bounded FIFO of in-flight :class:`DynUop`. The 4-bit countdown
timer of Section III-D lives here: it is reset to ``timer_init`` whenever a
new uop becomes the oldest, decremented once per cycle the same uop stays
at the head, and reports expiry — the early-start trigger uses
``head_timer_expired`` together with "head is an outstanding LLC-missing
load" to initiate runahead.
"""

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.isa.uop import DynUop


class ReorderBuffer:
    def __init__(self, size: int, timer_init: int = 15):
        self.size = size
        self.timer_init = timer_init
        self._q: Deque[DynUop] = deque()
        self._head_seq = -1
        self._timer = timer_init

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[DynUop]:
        return iter(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.size

    @property
    def head(self) -> Optional[DynUop]:
        return self._q[0] if self._q else None

    def push(self, uop: DynUop) -> None:
        if self.full:
            raise OverflowError("ROB full")
        self._q.append(uop)

    def pop_head(self) -> DynUop:
        return self._q.popleft()

    def tick_timer(self) -> None:
        """Advance the head countdown timer by one cycle.

        Must be called exactly once per simulated cycle (fast-forwarded
        spans call :meth:`advance_timer` with the span length instead).
        """
        self.advance_timer(1)

    def advance_timer(self, cycles: int) -> None:
        q = self._q
        head = q[0] if q else None
        if head is None:
            self._head_seq = -1
            self._timer = self.timer_init
            return
        if head.seq != self._head_seq:
            self._head_seq = head.seq
            self._timer = self.timer_init
            cycles -= 1  # the reset cycle itself counts as residency
        if cycles > 0:
            self._timer = max(0, self._timer - cycles)

    @property
    def timer_remaining(self) -> int:
        return self._timer

    @property
    def head_timer_expired(self) -> bool:
        head = self.head
        return head is not None and head.seq == self._head_seq and self._timer == 0

    def squash_younger(self, seq: int) -> List[DynUop]:
        """Remove and return every uop younger than ``seq`` (exclusive)."""
        out: List[DynUop] = []
        q = self._q
        while q and q[-1].seq > seq:
            out.append(q.pop())
        out.reverse()
        return out

    def squash_all(self) -> List[DynUop]:
        out = list(self._q)
        self._q.clear()
        self._head_seq = -1
        self._timer = self.timer_init
        return out
