"""Precise Register Deallocation Queue (PRE, Naithani et al. HPCA 2020).

During runahead, slice uops borrow *free* physical registers; the PRDQ
tracks those speculative allocations in order and releases a register as
soon as its value is dead (here: when the borrowing uop's execution
completes — slices are short, so consumers have captured the value by
then). The queue bounds how many runahead allocations can be outstanding;
when full, runahead dispatch stalls until an entry retires.
"""

import heapq
from typing import List, Tuple

from repro.core.regfile import RegisterFiles


class Prdq:
    def __init__(self, size: int, regs: RegisterFiles):
        self.size = size
        self._regs = regs
        #: (release_cycle, is_fp) min-heap — releases are NOT monotonic in
        #: allocation order (a slice op waiting on an in-flight miss holds
        #: its register for the full miss latency), so a FIFO would suffer
        #: head-of-line blocking and starve the pool.
        self._q: List[Tuple[int, bool]] = []
        self.allocations = 0
        self.releases = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.size

    def can_allocate(self, fp: bool) -> bool:
        return not self.full and self._regs.runahead_available(fp)

    def allocate(self, fp: bool, release_cycle: int) -> None:
        if self.full:
            raise OverflowError("PRDQ full")
        self._regs.runahead_borrow(fp)
        heapq.heappush(self._q, (release_cycle, fp))
        self.allocations += 1

    def drain(self, cycle: int) -> int:
        """Release every allocation whose value is dead by ``cycle``."""
        released = 0
        q = self._q
        while q and q[0][0] <= cycle:
            _, fp = heapq.heappop(q)
            self._regs.runahead_return(fp)
            released += 1
        self.releases += released
        return released

    def next_release(self):
        """Cycle of the next pending release, or None when empty."""
        return self._q[0][0] if self._q else None

    def flush(self) -> None:
        """Runahead over: return everything still borrowed."""
        self._q.clear()
        self._regs.runahead_return_all()
