"""Stalling Slice Table (PRE, Naithani et al. HPCA 2020).

Fully-associative, LRU-replaced table of PCs known to belong to the
backward slice of a stall-causing (LLC-missing) load. During lean runahead
only uops whose PC hits in the SST are executed; everything else is skipped
at fetch bandwidth. The table is trained whenever a load turns out to be an
LLC miss: the load's PC and the PCs of its address-generating backward
slice are inserted.
"""

from collections import OrderedDict
from typing import Iterable


class StallingSliceTable:
    def __init__(self, size: int = 128):
        self.size = size
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.lookups = 0
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    def lookup(self, pc: int) -> bool:
        self.lookups += 1
        if pc in self._entries:
            self._entries.move_to_end(pc)
            self.hits += 1
            return True
        return False

    def insert(self, pc: int) -> None:
        if pc in self._entries:
            self._entries.move_to_end(pc)
            return
        if len(self._entries) >= self.size:
            self._entries.popitem(last=False)
        self._entries[pc] = None
        self.insertions += 1

    def train_slice(self, pcs: Iterable[int]) -> None:
        for pc in pcs:
            self.insert(pc)
