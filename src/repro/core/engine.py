"""Cycle engine: the clock, the event heap and fast-forwarding.

:class:`SimEngine` owns everything about *time* — the cycle counter, the
completion-event heap and the idle-cycle fast-forward — while the pipeline
itself is decomposed into :class:`Component` instances (front-end,
window/back-end, runahead controller, commit; see
``repro.core.components``) that the engine steps in stage order every
cycle.

The split is what makes warm-state checkpointing possible: every component
declares the mutable state it owns (``state_attrs``) and exposes
``snapshot_state()``/``restore_state()``, so ``repro.checkpoint`` can
capture a consistently deep-copied image of a warmed core and fork many
measurement runs from it (see docs/architecture.md).
"""

import heapq
from typing import Callable, Dict, Iterable, List, Tuple

from repro.common.enums import Mode

#: Event kinds carried on the engine's heap.
EV_WB = 0        # writeback: a dispatched uop's result is ready
EV_RA_ISSUE = 1  # a runahead uop's memory access reaches the hierarchy
EV_RA_DONE = 2   # a runahead-initiated LLC miss completed (MLP counter)


class TraceExhausted(Exception):
    """Internal control-flow signal: a finite trace fully drained.

    Raised by :meth:`SimEngine.fast_forward` when the simulator goes
    idle *because the architectural stream ended* (trace exhausted at
    the fetch cursor, front-end and window empty, no events, NORMAL
    mode) and caught by :meth:`SimEngine.run`, which ends the run
    cleanly with everything committed — a finite trace terminates with
    a clean terminal commit instead of a deadlock error, even when the
    requested instruction budget exceeds the stream's length.
    """


class Component:
    """One pipeline piece stepped by the :class:`SimEngine`.

    Subclasses override what they need:

    - :meth:`step` — simulate the current cycle; return an activity count
      (0 = nothing happened, which lets the engine fast-forward).
    - :meth:`wake_candidates` — future cycles at which this component can
      next make progress (used to bound a fast-forward jump).
    - :meth:`skip` — account a fast-forwarded idle span (e.g. advance the
      ROB head timer by ``span`` cycles at once).
    - :attr:`state_attrs` — names of the mutable attributes this component
      owns; the default :meth:`snapshot_state`/:meth:`restore_state` pair
      round-trips exactly those for checkpointing.
    - :attr:`quiesced` — set (by the component itself, or by whoever owns
      the condition, e.g. the runahead controller on a mode switch) when
      :meth:`step` is guaranteed to do nothing until an external event
      re-arms it; the engine then skips the call entirely. Quiescing is
      per-component, generalizing the all-or-nothing fast-forward: the
      commit unit keeps stepping (head-timer clock) while a gated
      front-end or a drained issue window costs nothing.
    """

    name = "component"
    state_attrs: Tuple[str, ...] = ()
    #: True ⇒ step() would provably make no progress this cycle; must be
    #: cleared by the event that can make the component runnable again.
    quiesced = False

    def bind(self) -> None:
        """Cache cross-component references after all components exist."""

    def step(self, cycle: int) -> int:
        return 0

    def wake_candidates(self, cycle: int) -> Iterable[int]:
        return ()

    def skip(self, span: int) -> None:
        pass

    def snapshot_state(self) -> Dict[str, object]:
        """The component's mutable state, by attribute name (not copied —
        the checkpoint layer deep-copies all components with one shared
        memo so cross-component object identity is preserved)."""
        return {attr: getattr(self, attr) for attr in self.state_attrs}

    def restore_state(self, state: Dict[str, object]) -> None:
        for attr, value in state.items():
            setattr(self, attr, value)


class SimEngine(Component):
    """Owns the cycle loop, the event heap and fast-forward logic.

    A cycle with no activity fast-forwards to the next cycle at which
    anything *can* happen (completion event, front-end arrival, fetch
    gate, head-timer expiry, runahead resume) — this is what makes a
    pure-Python model viable for memory-bound workloads that spend
    hundreds of consecutive cycles draining one miss.
    """

    name = "engine"
    state_attrs = ("cycle", "_events", "_ev_count")

    def __init__(self, core) -> None:
        self.core = core
        self.cycle = 0
        #: True once a finite trace drained and ended a run early; the
        #: oracle's terminal-commit check keys off this. Status, not
        #: architectural state — deliberately outside ``state_attrs``.
        self.exhausted = False
        self._ev_count = 0
        self._events: List[Tuple[int, int, int, object]] = []
        self._handlers: Dict[int, Callable[[object, int], None]] = {}
        self._pipeline: Tuple[Component, ...] = ()

    def wire(self, pipeline: Iterable[Component]) -> None:
        """Fix the stage order and cache hot cross-references."""
        self._pipeline = tuple(pipeline)
        core = self.core
        self._backend = core.backend
        self._ra = core.runahead_ctl
        self._stats = core.stats

    def on_event(self, kind: int,
                 handler: Callable[[object, int], None]) -> None:
        self._handlers[kind] = handler

    # ================================================================ run

    def run(self, max_instructions: int) -> None:
        """Simulate until ``max_instructions`` have committed."""
        core = self.core
        stats = self._stats
        target = stats.committed + max_instructions
        telemetry = core.telemetry
        # Two loop bodies so the common telemetry-off path pays neither the
        # per-cycle ``is not None`` test nor the ``stats.cycles`` store;
        # the clock is published once on every exit path instead.
        try:
            if telemetry is None:
                # Inlined step() body: the per-cycle loop is the hottest
                # code in the simulator, so the cross-component references
                # are hoisted out of it entirely. process_events and
                # fast_forward stay dynamic lookups — the host profiler
                # shadows them on the instance.
                pipeline = self._pipeline
                backend = self._backend
                ra = self._ra
                flush_stall = Mode.FLUSH_STALL
                while stats.committed < target:
                    c = self.cycle
                    ev = self._events
                    progress = (self.process_events(c)
                                if ev and ev[0][0] <= c else 0)
                    for comp in pipeline:
                        if comp.quiesced:
                            continue
                        progress += comp.step(c)
                    out_misses = backend._out_misses
                    if out_misses > 0:
                        stats.mlp_sum += out_misses
                        stats.mlp_cycles += 1
                    if ra.mode is flush_stall:
                        stats.flush_stall_cycles += 1
                    if progress:
                        self.cycle = c + 1
                    else:
                        self.fast_forward()
            else:
                while stats.committed < target:
                    if self.step():
                        self.cycle += 1
                    else:
                        self.fast_forward()
                    stats.cycles = self.cycle
                    telemetry.tick(core)
        except TraceExhausted:
            pass  # finite stream drained: end the run cleanly
        finally:
            stats.cycles = self.cycle

    # =============================================================== step

    def step(self) -> int:
        """Simulate the current cycle; returns activity count (0 = idle).

        Does *not* advance :attr:`cycle` — :meth:`run` owns the clock so
        that idle stretches can fast-forward.
        """
        c = self.cycle
        ev = self._events
        progress = self.process_events(c) if ev and ev[0][0] <= c else 0
        for comp in self._pipeline:
            if comp.quiesced:
                continue
            progress += comp.step(c)
        stats = self._stats
        out_misses = self._backend._out_misses
        if out_misses > 0:
            stats.mlp_sum += out_misses
            stats.mlp_cycles += 1
        if self._ra.mode == Mode.FLUSH_STALL:
            stats.flush_stall_cycles += 1
        return progress

    def fast_forward(self) -> None:
        """Jump from an idle cycle to the next cycle anything can happen.

        The current cycle has already been simulated (and accounted) by
        :meth:`step`; candidates are therefore strictly in the future.
        """
        c = self.cycle
        candidates: List[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        for comp in self._pipeline:
            candidates.extend(comp.wake_candidates(c))
        candidates = [x for x in candidates if x > c]
        if not candidates:
            core = self.core
            if self._stream_drained():
                self.exhausted = True
                raise TraceExhausted
            raise RuntimeError(
                f"simulator deadlock at cycle {c} "
                f"(mode={self._ra.mode.name}, rob={len(core.rob)}, "
                f"iq={len(core.iq)}, committed={self._stats.committed})"
            )
        target = min(candidates)
        # Cycle c itself was accounted by step(); account the skipped span
        # (c+1 .. target-1) here, then land on `target`.
        span = target - c - 1
        if span > 0:
            for comp in self._pipeline:
                comp.skip(span)
            stats = self._stats
            out_misses = self._backend._out_misses
            if out_misses > 0:
                stats.mlp_sum += out_misses * span
                stats.mlp_cycles += span
            if self._ra.mode == Mode.FLUSH_STALL:
                stats.flush_stall_cycles += span
            stats.fast_forwarded_cycles += span
        self.cycle = target

    def _stream_drained(self) -> bool:
        """True when the idle state is the *end of a finite trace*: the
        fetch cursor is past the stream, nothing is queued, in flight or
        pending, and the machine is back in NORMAL mode — i.e. every
        architectural instruction the trace carries has committed. Any
        other candidate-less idle state is a genuine deadlock."""
        core = self.core
        fe = core.frontend_stage
        return (
            self._ra.mode == Mode.NORMAL
            and not self._events
            and len(core.rob) == 0
            and len(core.frontend) == 0
            and fe.pending_branch is None
            and core.trace.get(fe.fetch_idx) is None
        )

    # ============================================================= events

    def schedule(self, cycle: int, kind: int, payload: object) -> None:
        self._ev_count += 1
        heapq.heappush(self._events, (cycle, self._ev_count, kind, payload))

    def process_events(self, c: int) -> int:
        n = 0
        ev = self._events
        handlers = self._handlers
        while ev and ev[0][0] <= c:
            when, _, kind, payload = heapq.heappop(ev)
            n += 1
            handlers[kind](payload, when)
        return n
