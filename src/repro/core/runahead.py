"""Runahead policy definitions — the paper's Table IV design space.

A policy is a point on three axes:

- ``early``: initiate runahead as soon as a long-latency load blocks commit
  at the ROB head (4-bit countdown timer), instead of waiting for a
  full-ROB stall.
- ``flush_at_exit``: squash the whole back-end when the blocking load
  returns and refetch from the blocking load's PC. Everything squashed is
  un-ACE — this is the reliability optimisation.
- ``lean``: execute only the backward slices of future long-latency loads
  (SST-filtered, PRDQ register management) instead of every future
  instruction.

``FLUSH`` (Weaver et al.) is not a runahead technique: it flushes *before*
the memory access is serviced and idles until the data returns, so it is
represented with ``kind="flush"``.
"""

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class RunaheadPolicy:
    name: str
    #: "ooo" (baseline, no mechanism), "flush" (Weaver), "runahead"
    kind: str
    early: bool = False
    flush_at_exit: bool = False
    lean: bool = False
    #: Runahead-buffer mode (Hashemi & Patt, MICRO 2015): instead of
    #: re-fetching the whole future stream through the front-end, replay
    #: only the stalling load's dependence chain out of a small buffer —
    #: non-chain uops cost no fetch bandwidth at all, but a mispredicted
    #: branch ends the replay (the buffer assumes a straight loop).
    buffer: bool = False
    #: Vector-runahead batching factor (Naithani et al., ISCA 2021):
    #: slice instances from consecutive loop iterations are vectorised,
    #: so ``vector`` slice executions share one issue/IQ slot. 0 = scalar.
    vector: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("ooo", "flush", "runahead", "throttle"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.kind != "runahead" and (self.early or self.flush_at_exit
                                        or self.lean or self.buffer
                                        or self.vector):
            raise ValueError(f"{self.name}: axes only apply to runahead")
        if (self.buffer or self.vector) and not self.lean:
            raise ValueError(f"{self.name}: buffer/vector modes are "
                             "slice-based and require lean=True")
        if self.vector < 0:
            raise ValueError("vector width must be >= 0")

    @property
    def is_runahead(self) -> bool:
        return self.kind == "runahead"


OOO = RunaheadPolicy("OOO", "ooo")
FLUSH = RunaheadPolicy("FLUSH", "flush")
TR = RunaheadPolicy("TR", "runahead", early=False, flush_at_exit=True,
                    lean=False)
TR_EARLY = RunaheadPolicy("TR-EARLY", "runahead", early=True,
                          flush_at_exit=True, lean=False)
PRE = RunaheadPolicy("PRE", "runahead", early=False, flush_at_exit=False,
                     lean=True)
PRE_EARLY = RunaheadPolicy("PRE-EARLY", "runahead", early=True,
                           flush_at_exit=False, lean=True)
RAR_LATE = RunaheadPolicy("RAR-LATE", "runahead", early=False,
                          flush_at_exit=True, lean=True)
RAR = RunaheadPolicy("RAR", "runahead", early=True, flush_at_exit=True,
                     lean=True)

#: Extension: the runahead buffer (Hashemi & Patt, MICRO 2015) — replay
#: the stalling dependence chain from a small buffer. Like PRE it keeps
#: the window at exit; unlike PRE it spends no front-end bandwidth on
#: non-chain instructions (but cannot cross a mispredicted branch).
RA_BUFFER = RunaheadPolicy("RA-BUFFER", "runahead", early=False,
                           flush_at_exit=False, lean=True, buffer=True)

#: Extension: reliability-aware *vector* runahead — RAR's early+flush
#: optimisations on top of vectorised slice execution (Naithani et al.,
#: ISCA 2021): consecutive iterations' slice instances share issue slots.
VEC_RAR = RunaheadPolicy("VEC-RAR", "runahead", early=True,
                         flush_at_exit=True, lean=True, vector=8)

#: Extension beyond the paper's evaluated set: dispatch throttling
#: (Soundararajan et al., discussed in Section VI-C) — when a long-latency
#: miss blocks the head, dispatch is rate-limited instead of flushed, so
#: less vulnerable state accumulates at a smaller performance cost than
#: FLUSH but with a weaker reliability gain.
THROTTLE = RunaheadPolicy("THROTTLE", "throttle")

#: The paper's eight evaluated configurations (Section V).
ALL_POLICIES: List[RunaheadPolicy] = [
    OOO, FLUSH, TR, TR_EARLY, PRE, PRE_EARLY, RAR_LATE, RAR,
]

#: Extra design points implemented on top of the paper's set.
EXTENSION_POLICIES: List[RunaheadPolicy] = [THROTTLE, RA_BUFFER, VEC_RAR]

_BY_NAME: Dict[str, RunaheadPolicy] = {
    p.name: p for p in ALL_POLICIES + EXTENSION_POLICIES
}


def get_policy(name: str) -> RunaheadPolicy:
    """Look up a policy by its paper name (case-insensitive, '_'≡'-')."""
    key = name.upper().replace("_", "-")
    try:
        return _BY_NAME[key]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def policy_names() -> List[str]:
    return [p.name for p in ALL_POLICIES]
