"""Functional fast-warmup: train long-lived state without the pipeline.

Warmup exists to charge the structures whose state outlives any single
instruction — cache tags/LRU at every level (plus the prefetcher's
stream table), the TAGE tables and folded histories, the BTB, and the
SST — before measurement begins. The detailed core pays full
out-of-order cost for that region: ROB allocation, issue-queue wakeup,
FU scheduling, the event heap. :func:`functional_warmup` walks the
trace in program order instead, one static uop at a time, applying only
the state updates the detailed pipeline would make to those long-lived
structures:

- **branches** run the exact front-end training sequence
  (``predictor.observe`` → ``btb.lookup`` → ``btb.update``), so TAGE
  tables, folded histories and the BTB end up trained on the same
  correct-path stream;
- **loads** probe the memory hierarchy (``mem.access``), which moves
  tags/LRU at L1/L2/L3, trains the stride prefetcher, and allocates
  MSHRs against a nominal one-uop-per-cycle clock; an MSHR-full
  rejection jumps the clock to the next completion, mirroring the
  detailed retry loop; dram-level loads train the SST with their
  backward slice exactly as writeback does;
- **stores** write-allocate (``mem.access(is_write=True)``) as the
  commit unit would.

What is *deliberately not* modelled, and why it is safe (validated by
``repro warmval``, documented in docs/performance.md):

- **no wrong-path fetch**: the wrong-path source's RNG is not advanced
  and no wrong-path pollution enters the caches. Wrong-path state is
  short-lived by construction.
- **no runahead episodes**: a fast warmup under a runahead policy
  trains the same structures as under OOO; runahead's extra prefetches
  during *warmup* are a second-order effect on measured-region IPC.
- **compressed timing**: the nominal clock advances one cycle per uop,
  so miss overlap and DRAM bank state differ from detailed warmup.
  Tags, LRU order and predictor tables — the state that matters — see
  the same access sequence.
- **cold pipeline at the boundary**: the functional walk leaves an
  empty ROB/IQ/LSQ (the detailed warmup hands over a full window).

The short-lived state the walk skips is recency-dominated: the pipeline
window, the runahead controller's PRDQ/interval state, and the runahead
prefetches covering the first few hundred measured instructions. Fast
mode therefore finishes with a **detailed tail** — the last
``warmup // DETAILED_TAIL_DIVISOR`` instructions run on the full core
(the functional-warming + detailed-warmup-window split of SMARTS-style
sampled simulation). The tail restores the boundary state the measured
region actually feels, while the functional walk still covers ~90% of
the region, keeping the warmup-phase speedup above the 5x target.

Because the walk mutates the structures of a real
:class:`~repro.core.core.OutOfOrderCore` in place,
:meth:`~repro.checkpoint.Checkpoint.capture` snapshots a fast-warmed
core through the identical code path as a detailed one — the blob
schema, ``fork()`` semantics, farm workers and the
:class:`~repro.checkpoint.CheckpointCache` are shared by construction.
Results measured from a fast checkpoint are still an approximation and
are cache-tagged with a ``wm:fast`` variant (see
:func:`repro.analysis.experiments._variant`) so they never mix with
exact runs.
"""

from repro.common.enums import UopClass

__all__ = ["WARMUP_MODES", "DEFAULT_WARMUP_MODE", "DETAILED_TAIL_DIVISOR",
           "detailed_tail", "functional_warmup", "validate_warmup_mode"]

#: Recognised warmup modes: ``detailed`` runs the full core over the
#: warmup region (exact, the default); ``fast`` runs this module's
#: functional walk (approximate, validated by ``repro warmval``).
WARMUP_MODES = ("detailed", "fast")
DEFAULT_WARMUP_MODE = "detailed"

_LOAD = int(UopClass.LOAD)
_STORE = int(UopClass.STORE)
_BRANCH = int(UopClass.BRANCH)


#: In fast mode the last ``warmup // DETAILED_TAIL_DIVISOR``
#: instructions run on the detailed core (see module docstring). At the
#: measured detailed/functional KIPS ratio a one-twentieth tail keeps
#: the end-to-end warmup speedup above the 5x target while still
#: covering the recency-dominated boundary state (pipeline fill is
#: ~2 x ROB; runahead's prefetch horizon is a few hundred uops).
DETAILED_TAIL_DIVISOR = 20


def detailed_tail(warmup: int) -> int:
    """Detailed-core instructions at the end of a fast warmup region."""
    return warmup // DETAILED_TAIL_DIVISOR


def validate_warmup_mode(mode: str) -> str:
    if mode not in WARMUP_MODES:
        raise ValueError(
            f"unknown warmup_mode {mode!r}; expected one of {WARMUP_MODES}")
    return mode


def functional_warmup(core, warmup: int) -> int:
    """Warm ``core`` over trace[0:warmup] functionally; returns uops seen.

    The core must be freshly constructed (nothing fetched yet). On
    return the core sits at the same architectural boundary a detailed
    warmup reaches — fetch/dispatch cursors and the committed counter
    all at ``warmup`` — with trained caches/predictor/BTB/SST but an
    empty pipeline window. :class:`~repro.core.engine.SimEngine.run`
    targets ``stats.committed + n``, and measurement is delta-based
    (:func:`repro.sim._snapshot`), so the measured region runs
    unchanged from this state.
    """
    if core.stats.committed or core.frontend_stage.fetch_idx:
        raise ValueError("functional_warmup needs a freshly built core")
    trace = core.trace
    mem = core.mem
    predictor = core.predictor
    btb = core.btb
    ra = core.runahead_ctl
    access = mem.access
    observe = predictor.observe
    cycle = 0
    idx = 0
    while idx < warmup:
        st = trace.get(idx)
        if st is None:
            break  # trace shorter than the warmup region
        cls = st.cls
        if cls == _BRANCH:
            observe(st.pc, st.taken)
            btb.lookup(st.pc)
            btb.update(st.pc, st.target)
        elif cls == _LOAD:
            result = access(st.addr, cycle, pc=st.pc)
            while result is None:  # MSHRs full: jump to next completion
                cycle = max(cycle + 1, mem._mshr_min)
                result = access(st.addr, cycle, pc=st.pc)
            if result.level == "dram":
                ra.train_sst(idx, st.pc)
        elif cls == _STORE:
            # Write-allocate as commit would; an MSHR-full rejection
            # drops the allocation, same as the detailed commit path
            # (which ignores the access result).
            access(st.addr, cycle, is_write=True, pc=st.pc)
        idx += 1
        cycle += 1
    # Land the core on the post-warmup architectural boundary.
    core.frontend_stage.fetch_idx = idx
    core.frontend_stage._seq = idx
    core.backend.next_dispatch_idx = idx
    core.stats.committed = idx
    core.stats.cycles = cycle
    core.engine.cycle = cycle
    return idx
