"""Physical register files and rename back-pressure.

Counter-based rename model: the architectural mappings permanently hold
``arch_regs`` physical registers per class; every dispatched uop with a
destination claims one more from the free pool and returns one at commit
(the previous mapping of its architectural destination) or at squash (its
own allocation). Dispatch stalls when a class' free pool is empty.

A RAT checkpoint (taken at runahead entry) is modelled as restoring the
free-pool levels recorded at checkpoint time minus registers still held by
surviving (older) uops — with counters, restoring is just handing back
everything the squashed uops held, which the squash path already does.
RAT checkpoints themselves are assumed ECC-protected (Section IV-A).
"""

from repro.isa.uop import DynUop


class RegisterFiles:
    def __init__(self, int_regs: int, fp_regs: int, arch_regs: int = 32):
        if int_regs <= arch_regs or fp_regs <= arch_regs:
            raise ValueError("physical registers must exceed architectural")
        self.int_total = int_regs
        self.fp_total = fp_regs
        self.int_free = self._int_max_free = int_regs - arch_regs
        self.fp_free = self._fp_max_free = fp_regs - arch_regs
        #: registers lent to runahead slice uops (PRDQ-managed)
        self.runahead_int = 0
        self.runahead_fp = 0

    @staticmethod
    def _is_fp_dest(uop: DynUop) -> bool:
        return uop.static.is_fp

    def can_allocate(self, uop: DynUop) -> bool:
        if not uop.static.has_dest:
            return True
        return (self.fp_free if self._is_fp_dest(uop) else self.int_free) > 0

    def allocate(self, uop: DynUop) -> None:
        if not uop.static.has_dest:
            return
        if self._is_fp_dest(uop):
            if self.fp_free <= 0:
                raise OverflowError("fp register file exhausted")
            self.fp_free -= 1
        else:
            if self.int_free <= 0:
                raise OverflowError("int register file exhausted")
            self.int_free -= 1

    def release(self, uop: DynUop) -> None:
        if not uop.static.has_dest:
            return
        if self._is_fp_dest(uop):
            self.fp_free += 1
            if self.fp_free > self._fp_max_free:
                raise RuntimeError("fp free-list overflow")
        else:
            self.int_free += 1
            if self.int_free > self._int_max_free:
                raise RuntimeError("int free-list overflow")

    # -------------------------------------------------- runahead lending

    def runahead_available(self, fp: bool) -> bool:
        return (self.fp_free if fp else self.int_free) > 0

    def runahead_borrow(self, fp: bool) -> None:
        if fp:
            if self.fp_free <= 0:
                raise OverflowError("no free fp registers for runahead")
            self.fp_free -= 1
            self.runahead_fp += 1
        else:
            if self.int_free <= 0:
                raise OverflowError("no free int registers for runahead")
            self.int_free -= 1
            self.runahead_int += 1

    def runahead_return(self, fp: bool) -> None:
        if fp:
            if self.runahead_fp <= 0:
                raise RuntimeError("returning unborrowed fp register")
            self.runahead_fp -= 1
            self.fp_free += 1
        else:
            if self.runahead_int <= 0:
                raise RuntimeError("returning unborrowed int register")
            self.runahead_int -= 1
            self.int_free += 1

    def runahead_return_all(self) -> None:
        self.fp_free += self.runahead_fp
        self.int_free += self.runahead_int
        self.runahead_fp = 0
        self.runahead_int = 0
