"""Pipeline components stepped by the :class:`~repro.core.engine.SimEngine`.

The monolithic core is decomposed into four stages behind the
:class:`~repro.core.engine.Component` protocol, stepped in program-order
retirement-first sequence each cycle::

    process completion events → CommitUnit → RunaheadController →
    WindowBackEnd (issue, dispatch) → FrontEndStage (fetch)

Each component *owns* a disjoint slice of the mutable architectural state
(declared in ``state_attrs``) and caches direct references to the shared
hardware structures (ROB, IQ, LSQ, register files, caches, …) in
:meth:`bind` for hot-path speed. The structures themselves are owned by
the :class:`~repro.core.core.OutOfOrderCore` facade; components never
replace a structure object, only mutate it — which is what lets the
checkpoint layer restore state in place without invalidating these
cached references.

Mechanism summary (see DESIGN.md §4 for the full matrix):

- **FLUSH** (Weaver et al.): when a long-latency load blocks the ROB head,
  squash everything younger and idle; refetch when the data returns.
- **Runahead** (TR/PRE/RAR families): freeze the ROB, let a speculative
  cursor run ahead of the blocked window, execute (all | slice-only) future
  uops with spare resources, prefetching their misses. On the blocking
  load's return either keep the frozen window (PRE) or flush the whole
  back-end and refetch from the blocking load (TR/RAR) — flushed residency
  is un-ACE, which is RAR's reliability win.
"""

import heapq
from typing import Dict, List, Optional, Set

from repro.common.enums import Mode, SquashCause, UopClass
from repro.core.engine import EV_RA_DONE, EV_RA_ISSUE, EV_WB, Component
from repro.isa.uop import DynUop

_LOAD = int(UopClass.LOAD)
_STORE = int(UopClass.STORE)
_BRANCH = int(UopClass.BRANCH)
_NOP = int(UopClass.NOP)


class FrontEndStage(Component):
    """Fetch: correct-path trace cursor + wrong-path synthesis.

    Owns the fetch cursor, the oldest unresolved mispredicted branch
    (``pending_branch``) and the dynamic-uop sequence counter.
    """

    name = "frontend_stage"
    state_attrs = ("fetch_idx", "pending_branch", "_seq")

    def __init__(self, core) -> None:
        self.core = core
        self.fetch_idx = 0          # next correct-path static uop to fetch
        self.pending_branch: Optional[DynUop] = None
        self._seq = 0

    def bind(self) -> None:
        core = self.core
        self.trace = core.trace
        self.frontend = core.frontend
        self.predictor = core.predictor
        self.btb = core.btb
        self.wrong_path_src = core.wrong_path_src
        self.width = core.width
        self.ra = core.runahead_ctl

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def step(self, c: int) -> int:
        if self.ra.mode != Mode.NORMAL:
            return 0
        frontend = self.frontend
        n = 0
        while n < self.width and frontend.can_fetch(c):
            if self.pending_branch is not None:
                st = self.wrong_path_src.next_uop(self.fetch_idx)
                u = DynUop(st, self.next_seq(), wrong_path=True)
            else:
                st = self.trace.get(self.fetch_idx)
                if st is None:
                    break
                u = DynUop(st, self.next_seq())
                if st.cls == _BRANCH:
                    predicted = self.predictor.observe(st.pc, st.taken)
                    target = self.btb.lookup(st.pc)
                    self.btb.update(st.pc, st.target)
                    if st.taken and target < 0:
                        # BTB miss on a taken branch: fetch cannot follow.
                        predicted = not st.taken
                    u.predicted_taken = predicted
                    if predicted != st.taken:
                        self.pending_branch = u
                self.fetch_idx += 1
            frontend.push(u, c)
            n += 1
        return n

    def wake_candidates(self, cycle: int):
        if self.ra.mode != Mode.NORMAL:
            return ()
        out = []
        arrival = self.frontend.next_arrival()
        if arrival is not None:
            out.append(arrival)
        if len(self.frontend) == 0 and self.frontend.resume_cycle > cycle:
            out.append(self.frontend.resume_cycle)
        return out


class CommitUnit(Component):
    """In-order retirement from the ROB head (plus the head timer clock).

    Stateless beyond the structures it drives: retirement releases LSQ /
    register resources, charges ACE residency, performs store writes and
    counts MPKI-qualifying LLC-missing loads.
    """

    name = "commit"

    def __init__(self, core) -> None:
        self.core = core

    def bind(self) -> None:
        core = self.core
        self.rob = core.rob
        self.lsq = core.lsq
        self.regs = core.regs
        self.ace = core.ace
        self.mem = core.mem
        self.stats = core.stats
        self.width = core.width
        self.ra = core.runahead_ctl
        self.backend = core.backend

    def step(self, c: int) -> int:
        n = 0
        if self.ra.mode == Mode.NORMAL:
            rob = self.rob
            stats = self.stats
            inflight = self.backend.inflight
            observer = self.core.observer
            while n < self.width:
                head = rob.head
                if head is None or not head.completed:
                    break
                rob.pop_head()
                if head.wrong_path:
                    raise RuntimeError("wrong-path uop reached commit")
                head.commit_cycle = c
                self.lsq.release(head)
                self.regs.release(head)
                self.ace.charge_commit(head)
                st = head.static
                if head.llc_miss and st.cls == _LOAD:
                    # MPKI counts committed loads whose instance missed
                    # the LLC.
                    stats.demand_llc_misses += 1
                if st.cls == _STORE:
                    # Write-allocate at retirement; never blocks commit.
                    self.mem.access(st.addr, c, is_write=True, pc=st.pc)
                if inflight.get(st.idx) is head:
                    del inflight[st.idx]
                if observer:
                    observer("commit", c, uop=head)
                stats.committed += 1
                n += 1
        self.rob.advance_timer(1)
        return n

    def wake_candidates(self, cycle: int):
        if self.ra.mode == Mode.NORMAL and self.rob.head is not None \
                and not self.rob.head_timer_expired:
            return (cycle + max(1, self.rob.timer_remaining),)
        return ()

    def skip(self, span: int) -> None:
        self.rob.advance_timer(span)


class WindowBackEnd(Component):
    """Issue + dispatch, writeback, and recovery (squash) paths.

    Owns the dispatch cursor, the in-flight producer map (idx → newest
    correct-path instance), the outstanding-LLC-miss counter feeding MLP,
    and the rename-stall recency used by the late runahead trigger.
    """

    name = "backend"
    state_attrs = ("next_dispatch_idx", "inflight", "_out_misses",
                   "_regstall_cycle")

    def __init__(self, core) -> None:
        self.core = core
        self.next_dispatch_idx = 0  # next correct-path static uop to dispatch
        self.inflight: Dict[int, DynUop] = {}
        self._out_misses = 0
        #: last cycle dispatch was blocked by a rename-register shortage —
        #: treated as a full-window stall for the late runahead trigger
        #: (the window cannot extend further, exactly like a full ROB)
        self._regstall_cycle = -2

    def bind(self) -> None:
        core = self.core
        self.engine = core.engine
        self.frontend = core.frontend
        self.rob = core.rob
        self.iq = core.iq
        self.lsq = core.lsq
        self.regs = core.regs
        self.fus = core.fus
        self.mem = core.mem
        self.stats = core.stats
        self.width = core.width
        self.machine = core.machine
        self.fe = core.frontend_stage
        self.ra = core.runahead_ctl

    def step(self, c: int) -> int:
        return self._do_issue(c) + self._do_dispatch(c)

    # ========================================================== writeback

    def writeback(self, uop: DynUop, when: int) -> None:
        if uop.counted_miss:
            self._out_misses -= 1
        if uop.squashed:
            return
        uop.completed = True
        uop.done_cycle = when
        for consumer in uop.consumers:
            consumer.pending -= 1
            self.iq.wakeup(consumer)
        uop.consumers = []
        st = uop.static
        if st.cls == _LOAD and uop.mem_level == "dram" and not uop.wrong_path:
            self.ra.train_sst(st.idx, st.pc)
        if st.cls == _BRANCH and not uop.wrong_path:
            self.stats.branch_resolved += 1
            if uop.mispredicted:
                self.resolve_mispredict(uop, when)

    def ra_miss_done(self, payload, when: int) -> None:
        self._out_misses -= 1

    # ======================================================== mispredicts

    def resolve_mispredict(self, branch: DynUop, when: int) -> None:
        """A correct-path mispredicted branch resolved: recover."""
        self.stats.branch_mispredicted += 1
        observer = self.core.observer
        if observer:
            observer("mispredict", when, branch=branch)
        squashed = self.rob.squash_younger(branch.seq)
        self.release_squashed(squashed, SquashCause.BRANCH_MISPREDICT)
        self.stats.squashed_mispredict += len(squashed)
        # Undispatched queued uops are all younger: drop them.
        self.frontend.redirect(when)
        fe = self.fe
        fe.fetch_idx = branch.static.idx + 1
        self.next_dispatch_idx = branch.static.idx + 1
        if fe.pending_branch is branch or (
                fe.pending_branch is not None and fe.pending_branch.squashed):
            fe.pending_branch = None
        ra = self.ra
        if ra.mode == Mode.RUNAHEAD:
            # Runahead was chasing the wrong path; re-steer the cursor.
            ra._ra_diverged = False
            ra._ra_fetch_idx = branch.static.idx + 1
            ra._ra_resume = max(ra._ra_resume,
                                when + self.machine.core.frontend_depth)

    def release_squashed(self, uops: List[DynUop],
                         cause: SquashCause) -> None:
        observer = self.core.observer
        if observer and uops:
            observer("squash", self.engine.cycle, uops=uops, cause=cause)
        inflight = self.inflight
        for u in uops:
            u.squashed = True
            u.squash_cause = int(cause)
            self.lsq.release(u)
            self.regs.release(u)
            if inflight.get(u.static.idx) is u:
                del inflight[u.static.idx]
        self.iq.squash(lambda x: x.squashed)

    # ============================================================== issue

    def _do_issue(self, c: int) -> int:
        iq = self.iq
        attempts = iq.ready_count
        if attempts == 0:
            return 0
        issued = 0
        blocked: List[DynUop] = []
        fus = self.fus
        while attempts > 0 and issued < self.width and iq.ready_count > 0:
            attempts -= 1
            u = iq.pop_ready()
            st = u.static
            cls = st.cls
            if not fus.can_issue(cls, c):
                blocked.append(u)
                continue
            if cls == _LOAD:
                result = self.mem.access(st.addr, c, pc=st.pc)
                if result is None:  # MSHRs full
                    blocked.append(u)
                    continue
                fus.issue(cls, c)  # AGU slot
                done = result.done_cycle
                u.mem_level = result.level
                u.mem_issue_cycle = c
                if result.level == "dram":
                    u.llc_miss = True
                    # MLP counts useful (correct-path) outstanding misses;
                    # wrong-path misses still consume MSHRs and bandwidth.
                    if not result.merged and not u.wrong_path:
                        u.counted_miss = True
                        self._out_misses += 1
            elif cls == _STORE:
                fus.issue(cls, c)
                u.mem_issue_cycle = c
                done = c + 1  # address/data capture; write happens at commit
            else:
                done = fus.issue(cls, c)
            u.issue_cycle = c
            self.engine.schedule(done, EV_WB, u)
            issued += 1
        for u in reversed(blocked):
            iq.requeue(u)
        return issued

    # =========================================================== dispatch

    def _dispatch_budget(self, c: int) -> int:
        """Per-cycle dispatch width; the THROTTLE policy rate-limits it to
        one uop every 4 cycles while an LLC miss blocks the head."""
        if self.core.policy.kind == "throttle" \
                and self.ra.head_blocked_by_miss() is not None:
            return 1 if (c & 3) == 0 else 0
        return self.width

    def _do_dispatch(self, c: int) -> int:
        if self.ra.mode != Mode.NORMAL:
            return 0
        n = 0
        frontend = self.frontend
        inflight = self.inflight
        while n < self._dispatch_budget(c):
            u = frontend.peek_ready(c)
            if u is None:
                break
            if not self.regs.can_allocate(u):
                self._regstall_cycle = c
                break
            if self.rob.full or not self.lsq.can_allocate(u):
                break
            if u.static.cls != _NOP and self.iq.full:
                break
            frontend.pop()
            u.dispatch_cycle = c
            self.rob.push(u)
            self.lsq.allocate(u)
            self.regs.allocate(u)
            if u.static.cls == _NOP:
                u.completed = True
                u.done_cycle = c
            else:
                for src in u.static.srcs:
                    producer = inflight.get(src)
                    if producer is not None and not producer.completed \
                            and not producer.squashed:
                        u.pending += 1
                        producer.consumers.append(u)
                self.iq.insert(u)
            if not u.wrong_path:
                inflight[u.static.idx] = u
                self.next_dispatch_idx = u.static.idx + 1
            n += 1
        return n


class RunaheadController(Component):
    """Mode transitions and the runahead interval state machine.

    Owns the core's :class:`~repro.common.enums.Mode`, the blocking load,
    every ``_ra_*`` interval register, and the Figure 5 attribution-window
    bookkeeping.
    """

    name = "runahead_ctl"
    state_attrs = ("mode", "blocking", "_ra_interval", "_ra_fetch_idx",
                   "_ra_resume", "_ra_entry_cycle", "_ra_diverged",
                   "_ra_hist_ckpt", "_ra_inv", "_ra_ready",
                   "_ra_iq_releases", "_ra_vec_fill", "_hb_seq", "_fs_seq")

    def __init__(self, core) -> None:
        self.core = core
        self.mode = Mode.NORMAL
        self.blocking: Optional[DynUop] = None
        self._ra_interval = 0
        self._ra_fetch_idx = 0
        self._ra_resume = 0
        self._ra_entry_cycle = 0
        self._ra_diverged = False
        self._ra_hist_ckpt = 0
        self._ra_inv: Set[int] = set()
        self._ra_ready: Dict[int, int] = {}
        self._ra_iq_releases: List[int] = []  # min-heap of release cycles
        self._ra_vec_fill = 0  # vector-runahead group fill counter
        # Attribution window bookkeeping (Figure 5)
        self._hb_seq = -1
        self._fs_seq = -1

    def bind(self) -> None:
        core = self.core
        self.engine = core.engine
        self.trace = core.trace
        self.rob = core.rob
        self.iq = core.iq
        self.prdq = core.prdq
        self.fus = core.fus
        self.sst = core.sst
        self.predictor = core.predictor
        self.frontend = core.frontend
        self.mem = core.mem
        self.ace = core.ace
        self.stats = core.stats
        self.width = core.width
        self.machine = core.machine
        self.fe = core.frontend_stage
        self.backend = core.backend
        self._est_latency = core._est_latency

    def step(self, c: int) -> int:
        self.update_windows(c)
        mode = self.mode
        if mode == Mode.NORMAL:
            return self.check_triggers(c)
        if mode == Mode.FLUSH_STALL:
            blocking = self.blocking
            if blocking is not None and blocking.completed:
                # Data returned: head will commit; refetch the rest.
                self.mode = Mode.NORMAL
                self.blocking = None
                self.fe.fetch_idx = self.backend.next_dispatch_idx
                self.frontend.resume_cycle = \
                    c + self.machine.core.frontend_depth
                observer = self.core.observer
                if observer:
                    observer("flush_exit", c)
                return 1
            return 0
        # Mode.RUNAHEAD
        blocking = self.blocking
        if blocking is not None and blocking.completed:
            self.exit_runahead(c)
            return 1
        return self.runahead_advance(c)

    def wake_candidates(self, cycle: int):
        if self.mode != Mode.RUNAHEAD:
            return ()
        out = []
        if self._ra_resume > cycle:
            out.append(self._ra_resume)
        if self._ra_iq_releases and self._ra_iq_releases[0] > cycle:
            out.append(self._ra_iq_releases[0])
        nxt = self.prdq.next_release()
        if nxt is not None and nxt > cycle:
            out.append(nxt)
        return out

    # ============================================== attribution windows

    def update_windows(self, c: int) -> None:
        """Maintain the Figure 5 attribution windows."""
        head = self.rob.head
        ace = self.ace
        blocked = (
            head is not None
            and head.static.cls == _LOAD
            and head.llc_miss
            and not head.completed
            and not head.wrong_path
        )
        if blocked:
            if ace.head_blocked.is_open and self._hb_seq != head.seq:
                ace.head_blocked.close(c)
            if not ace.head_blocked.is_open:
                ace.head_blocked.open(c)
                self._hb_seq = head.seq
            if ace.full_stall.is_open and self._fs_seq != head.seq:
                ace.full_stall.close(c)
            # "Full-window stall": the window cannot grow — ROB full or
            # renaming out of registers (same condition as the late
            # runahead trigger).
            window_stalled = self.rob.full \
                or self.backend._regstall_cycle >= c - 1
            if not ace.full_stall.is_open and window_stalled:
                ace.full_stall.open(c)
                self._fs_seq = head.seq
        else:
            if ace.head_blocked.is_open:
                ace.head_blocked.close(c)
            if ace.full_stall.is_open:
                ace.full_stall.close(c)

    def head_blocked_by_miss(self) -> Optional[DynUop]:
        head = self.rob.head
        if (
            head is not None
            and head.static.cls == _LOAD
            and not head.completed
            and not head.wrong_path
            and head.mem_issue_cycle >= 0
            and head.llc_miss
        ):
            return head
        return None

    # =========================================================== triggers

    def check_triggers(self, c: int) -> int:
        policy = self.core.policy
        if policy.kind in ("ooo", "throttle"):
            return 0  # throttling acts in dispatch, not via mode changes
        head = self.head_blocked_by_miss()
        if head is None:
            return 0
        if policy.kind == "flush":
            if not self.rob.head_timer_expired:
                return 0
            self.enter_flush_stall(head, c)
            return 1
        # Runahead variants
        if policy.early:
            if not self.rob.head_timer_expired:
                return 0
        else:
            # Full-window stall: the ROB is full, or renaming ran out of
            # physical registers (the window cannot grow either way). An
            # IQ-full stall does NOT count — that is precisely the case
            # the late-triggering variants miss (Section II-C).
            if not (self.rob.full or self.backend._regstall_cycle >= c - 1):
                return 0
            if (policy.name == "TR"
                    and c - head.mem_issue_cycle
                    >= self.machine.core.tr_recency_cycles):
                return 0
        self.enter_runahead(head, c)
        return 1

    def enter_flush_stall(self, head: DynUop, c: int) -> None:
        backend = self.backend
        fe = self.fe
        squashed = self.rob.squash_younger(head.seq)
        backend.release_squashed(squashed, SquashCause.FLUSH_MECHANISM)
        self.stats.squashed_flush_mechanism += len(squashed)
        self.stats.flush_triggers += 1
        self.frontend.redirect(c, penalty=1 << 60)  # gated until data returns
        if fe.pending_branch is not None and (
                fe.pending_branch.squashed
                or fe.pending_branch.dispatch_cycle < 0):
            fe.pending_branch = None
        backend.next_dispatch_idx = head.static.idx + 1
        self.blocking = head
        self.mode = Mode.FLUSH_STALL
        observer = self.core.observer
        if observer:
            observer("flush_enter", c, blocking=head)

    # =========================================================== runahead

    def enter_runahead(self, head: DynUop, c: int) -> None:
        fe = self.fe
        self.stats.runahead_triggers += 1
        self.stats.ra_trigger_rob_sum += len(self.rob)
        self.blocking = head
        self.mode = Mode.RUNAHEAD
        self._ra_interval += 1
        self._ra_entry_cycle = c
        self._ra_resume = c + 1  # checkpoint RAT, redirect front-end
        # Seed the INV set with everything whose value cannot materialise
        # during the interval: the blocking load itself plus every
        # in-flight, incomplete instruction (transitively) dependent on it.
        # Without this, a trace-driven simulator would leak statically
        # known addresses of data-dependent loads to the prefetcher —
        # letting runahead "prefetch" pointer chains no real runahead can.
        blocked = {head.static.idx}
        for u in self.rob:
            if u is head or u.wrong_path or u.completed:
                continue
            for src in u.static.srcs:
                if src in blocked:
                    blocked.add(u.static.idx)
                    break
        self._ra_inv = blocked
        self._ra_ready = {}
        self._ra_vec_fill = 0
        self._ra_diverged = fe.pending_branch is not None
        self._ra_fetch_idx = self.backend.next_dispatch_idx
        #: branch history is checkpointed with the RAT and restored at exit
        self._ra_hist_ckpt = self.predictor.hist
        observer = self.core.observer
        if observer:
            observer("runahead_enter", c, blocking=head)
        # The front-end is reused by runahead: queued uops are dropped and
        # will be refetched after exit.
        if fe.pending_branch is not None and \
                fe.pending_branch.dispatch_cycle < 0:
            fe.pending_branch = None
            self._ra_diverged = False
        self.frontend.redirect(c, penalty=1 << 60)  # normal fetch off

    def runahead_advance(self, c: int) -> int:
        if c < self._ra_resume:
            self.stats.ra_stall_resume += 1
            return 0
        if self._ra_diverged:
            self.stats.ra_stall_diverged += 1
            return 0
        self.drain_ra_iq(c)
        self.prdq.drain(c)
        policy = self.core.policy
        trace = self.trace
        inflight = self.backend.inflight
        budget = self.width
        progress = 0
        #: runahead-buffer replay skips non-chain uops for free, but the
        #: scan per cycle is still bounded (buffer index hardware).
        free_skips = 16 * self.width if policy.buffer else 0
        while budget > 0:
            st = trace.get(self._ra_fetch_idx)
            if st is None:
                break
            self.stats.runahead_uops_examined += 1
            idx = st.idx
            inv = False
            for src in st.srcs:
                if src in self._ra_inv:
                    inv = True
                    break
            if inv:
                self._ra_inv.add(idx)
            cls = st.cls
            if cls == _BRANCH and policy.buffer:
                # The runahead buffer replays a straight chain: it cannot
                # re-steer. Correctly-predicted branches are invisible to
                # it; a mispredicted one ends the replay.
                predicted = self.predictor.predict(st.pc)
                self.predictor.shift_history(predicted)
                if predicted != st.taken:
                    self._ra_diverged = True
                    self._ra_fetch_idx += 1
                    return progress + 1
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            if cls == _BRANCH:
                if inv:
                    # Miss-dependent branch: cannot execute, follow the
                    # prediction (speculative history shift, no training).
                    predicted = self.predictor.predict(st.pc)
                    self.predictor.shift_history(predicted)
                    if predicted != st.taken:
                        # Went the wrong way and cannot be repaired: the
                        # rest of the interval is diverged.
                        self._ra_diverged = True
                        self._ra_fetch_idx += 1
                        return progress + 1
                else:
                    # Runahead executes valid branches: predictor trains
                    # and history advances, exactly like normal fetch (a
                    # known side benefit of runahead execution).
                    predicted = self.predictor.observe(st.pc, st.taken)
                    if predicted != st.taken:
                        # Resolve and re-steer the cursor.
                        self._ra_resume = c + self.machine.core.frontend_depth
                        self._ra_fetch_idx += 1
                        return progress + 1
                self._ra_fetch_idx += 1
                budget -= 1
                progress += 1
                continue
            execute = not inv and (not policy.lean or self.sst_hit(st))
            if not execute:
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    # Buffer replay: non-chain uops never enter the engine.
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            # Vector runahead: consecutive slice instances share one
            # issue/IQ slot per `vector`-wide group.
            vector_free = False
            if policy.vector:
                vector_free = (self._ra_vec_fill % policy.vector) != 0
                self._ra_vec_fill += 1
            # Acquire runahead resources: a free IQ entry, and a register
            # via the PRDQ when the uop writes a destination.
            if not vector_free and self.iq.free <= 0:
                self.stats.ra_stall_iq += 1
                break
            ready = c
            for src in st.srcs:
                t = self._ra_ready.get(src)
                if t is None:
                    producer = inflight.get(src)
                    if producer is not None and producer.completed:
                        t = producer.done_cycle
                    else:
                        t = c
                if t > ready:
                    ready = t
            ready += self.fus.latency(cls)
            if st.has_dest and not vector_free:
                if not self.prdq.can_allocate(st.is_fp):
                    self.stats.ra_stall_prdq += 1
                    break
                self.prdq.allocate(st.is_fp, ready)
            if not vector_free:
                self.iq.runahead_used += 1
                heapq.heappush(self._ra_iq_releases, ready)
            self.stats.runahead_uops_executed += 1
            if cls == _LOAD or cls == _STORE:
                self.engine.schedule(max(ready, c + 1), EV_RA_ISSUE,
                                     (self._ra_interval, st, 0))
                est = self._est_latency[self.mem.probe_level(st.addr)]
                self._ra_ready[idx] = ready + est
            else:
                self._ra_ready[idx] = ready
            self._ra_fetch_idx += 1
            if vector_free:
                pass  # batched into the group leader's slot
            elif free_skips > 0 and not execute:
                free_skips -= 1
            else:
                budget -= 1
            progress += 1
        return progress

    def sst_hit(self, st) -> bool:
        hit = self.sst.lookup(st.pc)
        if hit:
            observer = self.core.observer
            if observer:
                observer("sst_hit", self.engine.cycle, pc=st.pc)
        return hit

    def train_sst(self, idx: int, pc: int) -> None:
        """Insert the LLC-missing load's backward slice into the SST."""
        if self.sst.lookup(pc):
            return
        trace = self.trace
        pcs = []
        for i in trace.slice_producers(idx):
            producer = trace.get(i)
            if producer is not None:
                pcs.append(producer.pc)
        pcs.append(pc)
        self.sst.train_slice(pcs)
        observer = self.core.observer
        if observer:
            observer("sst_train", self.engine.cycle, pc=pc,
                     slice_len=len(pcs))

    def drain_ra_iq(self, c: int) -> None:
        rel = self._ra_iq_releases
        while rel and rel[0] <= c:
            heapq.heappop(rel)
            if self.iq.runahead_used > 0:
                self.iq.runahead_used -= 1

    def ra_memory_issue(self, payload, when: int) -> None:
        interval, st, retry = payload
        if interval != self._ra_interval or self.mode != Mode.RUNAHEAD:
            return
        result = self.mem.access(st.addr, when, is_write=(st.cls == _STORE),
                                 pc=st.pc)
        if result is None:
            # MSHRs full: retry with backoff — runahead keeps the MSHRs
            # saturated by design, so an eager retry loop would spin.
            backoff = min(32, 4 << min(retry, 3))
            self.engine.schedule(when + backoff, EV_RA_ISSUE,
                                 (interval, st, retry + 1))
            return
        self.stats.runahead_prefetches += 1
        self._ra_ready[st.idx] = result.done_cycle
        observer = self.core.observer
        if observer:
            observer("runahead_prefetch", when, pc=st.pc,
                     level=result.level)
        if result.level == "dram":
            if st.cls == _LOAD and not self.sst.lookup(st.pc):
                self.train_sst(st.idx, st.pc)
            if not result.merged:
                self.backend._out_misses += 1
                self.engine.schedule(result.done_cycle, EV_RA_DONE, None)

    def exit_runahead(self, c: int) -> None:
        backend = self.backend
        fe = self.fe
        self.stats.runahead_cycles += c - self._ra_entry_cycle
        depth = self.machine.core.frontend_depth
        if self.core.policy.flush_at_exit:
            squashed = self.rob.squash_all()
            backend.release_squashed(squashed,
                                     SquashCause.RUNAHEAD_EXIT_FLUSH)
            self.stats.squashed_runahead_flush += len(squashed)
            blocking_idx = self.blocking.static.idx
            fe.fetch_idx = blocking_idx
            backend.next_dispatch_idx = blocking_idx
            fe.pending_branch = None
            # RAT restore + full refetch from the blocking load.
            self.frontend.redirect(c, penalty=depth)
        else:
            # PRE: the frozen window is kept; refetch only beyond it.
            fe.fetch_idx = backend.next_dispatch_idx
            self.frontend.redirect(c, penalty=depth)
            if fe.pending_branch is not None and \
                    fe.pending_branch.dispatch_cycle < 0:
                fe.pending_branch = None
        self.iq.runahead_used = 0
        self._ra_iq_releases = []
        self.prdq.flush()
        self.predictor.hist = self._ra_hist_ckpt
        self._ra_ready = {}
        self._ra_inv = set()
        self._ra_diverged = False
        observer = self.core.observer
        if observer:
            observer("runahead_exit", c, blocking=self.blocking)
        self.blocking = None
        self.mode = Mode.NORMAL
