"""Pipeline components stepped by the :class:`~repro.core.engine.SimEngine`.

The monolithic core is decomposed into four stages behind the
:class:`~repro.core.engine.Component` protocol, stepped in program-order
retirement-first sequence each cycle::

    process completion events → CommitUnit → RunaheadController →
    WindowBackEnd (issue, dispatch) → FrontEndStage (fetch)

Each component *owns* a disjoint slice of the mutable architectural state
(declared in ``state_attrs``) and caches direct references to the shared
hardware structures (ROB, IQ, LSQ, register files, caches, …) in
:meth:`bind` for hot-path speed. The structures themselves are owned by
the :class:`~repro.core.core.OutOfOrderCore` facade; components never
replace a structure object, only mutate it — which is what lets the
checkpoint layer restore state in place without invalidating these
cached references.

Mechanism summary (see DESIGN.md §4 for the full matrix):

- **FLUSH** (Weaver et al.): when a long-latency load blocks the ROB head,
  squash everything younger and idle; refetch when the data returns.
- **Runahead** (TR/PRE/RAR families): freeze the ROB, let a speculative
  cursor run ahead of the blocked window, execute (all | slice-only) future
  uops with spare resources, prefetching their misses. On the blocking
  load's return either keep the frozen window (PRE) or flush the whole
  back-end and refetch from the blocking load (TR/RAR) — flushed residency
  is un-ACE, which is RAR's reliability win.
"""

import heapq
from typing import Dict, List, Optional, Set

from repro.common.enums import Mode, SquashCause, UopClass
from repro.core.engine import EV_RA_DONE, EV_RA_ISSUE, EV_WB, Component
from repro.isa.uop import DynUop

_LOAD = int(UopClass.LOAD)
_STORE = int(UopClass.STORE)
_BRANCH = int(UopClass.BRANCH)
_NOP = int(UopClass.NOP)


class FrontEndStage(Component):
    """Fetch: correct-path trace cursor + wrong-path synthesis.

    Owns the fetch cursor, the oldest unresolved mispredicted branch
    (``pending_branch``) and the dynamic-uop sequence counter.
    """

    name = "frontend_stage"
    state_attrs = ("fetch_idx", "pending_branch", "_seq", "quiesced")
    # Fetch is gated whenever the core leaves NORMAL mode; the runahead
    # controller flips `quiesced` in RunaheadController.set_mode so the
    # engine skips this stage entirely during runahead/flush intervals.

    def __init__(self, core) -> None:
        self.core = core
        self.fetch_idx = 0          # next correct-path static uop to fetch
        self.pending_branch: Optional[DynUop] = None
        self._seq = 0

    def bind(self) -> None:
        core = self.core
        self.trace = core.trace
        self.frontend = core.frontend
        self.predictor = core.predictor
        self.btb = core.btb
        self.wrong_path_src = core.wrong_path_src
        self.width = core.width
        self.ra = core.runahead_ctl

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def step(self, c: int) -> int:
        if self.ra.mode != Mode.NORMAL:
            return 0
        frontend = self.frontend
        if c < frontend.resume_cycle:
            return 0
        # Inlined push/can_fetch: neither the gate nor the capacity can
        # change while fetching, so hoist them out of the loop.
        pipe = frontend._pipe
        cap = frontend.capacity
        arrival = c + frontend.depth
        width = self.width
        trace = self.trace
        seq = self._seq
        n = 0
        while n < width and len(pipe) < cap:
            if self.pending_branch is not None:
                st = self.wrong_path_src.next_uop(self.fetch_idx)
                seq += 1
                u = DynUop(st, seq, True)
            else:
                st = trace.get(self.fetch_idx)
                if st is None:
                    break
                seq += 1
                u = DynUop(st, seq)
                if st.cls == _BRANCH:
                    predicted = self.predictor.observe(st.pc, st.taken)
                    target = self.btb.lookup(st.pc)
                    self.btb.update(st.pc, st.target)
                    if st.taken and target < 0:
                        # BTB miss on a taken branch: fetch cannot follow.
                        predicted = not st.taken
                    u.predicted_taken = predicted
                    if predicted != st.taken:
                        self.pending_branch = u
                self.fetch_idx += 1
            pipe.append((u, arrival))
            n += 1
        self._seq = seq
        return n

    def wake_candidates(self, cycle: int):
        if self.ra.mode != Mode.NORMAL:
            return ()
        out = []
        arrival = self.frontend.next_arrival()
        if arrival is not None:
            out.append(arrival)
        if len(self.frontend) == 0 and self.frontend.resume_cycle > cycle:
            out.append(self.frontend.resume_cycle)
        return out


class CommitUnit(Component):
    """In-order retirement from the ROB head (plus the head timer clock).

    Stateless beyond the structures it drives: retirement releases LSQ /
    register resources, charges ACE residency, performs store writes and
    counts MPKI-qualifying LLC-missing loads.
    """

    name = "commit"

    def __init__(self, core) -> None:
        self.core = core
        #: called as ``commit_hook(uop, cycle)`` for every retiring uop,
        #: *before* the commit releases LSQ/register resources — so a
        #: lockstep checker (the commit-stream oracle) can reconcile the
        #: entry this commit is about to free. Wiring, not architectural
        #: state: never captured by checkpoints.
        self.commit_hook = None

    def bind(self) -> None:
        core = self.core
        self.rob = core.rob
        self.lsq = core.lsq
        self.regs = core.regs
        self.ace = core.ace
        self.mem = core.mem
        self.stats = core.stats
        self.width = core.width
        self.ra = core.runahead_ctl
        self.backend = core.backend

    def step(self, c: int) -> int:
        n = 0
        rob = self.rob
        q = rob._q
        if self.ra.mode == Mode.NORMAL and q:
            stats = self.stats
            inflight = self.backend.inflight
            observer = self.core.observer
            hook = self.commit_hook
            while n < self.width:
                head = q[0] if q else None
                if head is None or not head.completed:
                    break
                q.popleft()
                if head.wrong_path:
                    raise RuntimeError("wrong-path uop reached commit")
                head.commit_cycle = c
                if hook is not None:
                    hook(head, c)
                self.lsq.release(head)
                self.regs.release(head)
                self.ace.charge_commit(head)
                st = head.static
                if head.llc_miss and st.cls == _LOAD:
                    # MPKI counts committed loads whose instance missed
                    # the LLC.
                    stats.demand_llc_misses += 1
                if st.cls == _STORE:
                    # Write-allocate at retirement; never blocks commit.
                    self.mem.access(st.addr, c, is_write=True, pc=st.pc)
                if inflight.get(st.idx) is head:
                    del inflight[st.idx]
                if observer:
                    observer("commit", c, uop=head)
                stats.committed += 1
                n += 1
        # Inlined rob.advance_timer(1): one call per simulated cycle.
        if not q:
            rob._head_seq = -1
            rob._timer = rob.timer_init
        else:
            head = q[0]
            if head.seq != rob._head_seq:
                rob._head_seq = head.seq
                rob._timer = rob.timer_init
            elif rob._timer > 0:
                rob._timer -= 1
        return n

    def wake_candidates(self, cycle: int):
        if self.ra.mode == Mode.NORMAL and self.rob.head is not None \
                and not self.rob.head_timer_expired:
            return (cycle + max(1, self.rob.timer_remaining),)
        return ()

    def skip(self, span: int) -> None:
        self.rob.advance_timer(span)


class WindowBackEnd(Component):
    """Issue + dispatch, writeback, and recovery (squash) paths.

    Owns the dispatch cursor, the in-flight producer map (idx → newest
    correct-path instance), the outstanding-LLC-miss counter feeding MLP,
    and the rename-stall recency used by the late runahead trigger.
    """

    name = "backend"
    state_attrs = ("next_dispatch_idx", "inflight", "_out_misses",
                   "_regstall_cycle", "quiesced")

    def __init__(self, core) -> None:
        self.core = core
        self.next_dispatch_idx = 0  # next correct-path static uop to dispatch
        self.inflight: Dict[int, DynUop] = {}
        self._out_misses = 0
        #: last cycle dispatch was blocked by a rename-register shortage —
        #: treated as a full-window stall for the late runahead trigger
        #: (the window cannot extend further, exactly like a full ROB)
        self._regstall_cycle = -2

    def bind(self) -> None:
        core = self.core
        self.engine = core.engine
        self.frontend = core.frontend
        self.rob = core.rob
        self.iq = core.iq
        self.lsq = core.lsq
        self.regs = core.regs
        self.fus = core.fus
        self.mem = core.mem
        self.stats = core.stats
        self.width = core.width
        self.machine = core.machine
        self.fe = core.frontend_stage
        self.ra = core.runahead_ctl
        self._throttled = core.policy.kind == "throttle"

    def step(self, c: int) -> int:
        n = self._do_issue(c) + self._do_dispatch(c)
        # Outside NORMAL mode the back-end can only issue already-ready
        # frozen-window uops; once the ready lists drain there is nothing
        # to do until a writeback wakes a consumer (which re-arms us) or
        # the mode flips back (set_mode re-arms us).
        if self.iq._nready == 0 and self.ra.mode != Mode.NORMAL:
            self.quiesced = True
        return n

    # ========================================================== writeback

    def writeback(self, uop: DynUop, when: int) -> None:
        if uop.counted_miss:
            self._out_misses -= 1
        if uop.squashed:
            return
        uop.completed = True
        uop.done_cycle = when
        if uop.consumers:
            iq = self.iq
            for consumer in uop.consumers:
                consumer.pending -= 1
                iq.wakeup(consumer)
            uop.consumers = []
            self.quiesced = False
        st = uop.static
        if st.cls == _LOAD and uop.mem_level == "dram" and not uop.wrong_path:
            self.ra.train_sst(st.idx, st.pc)
        if st.cls == _BRANCH and not uop.wrong_path:
            self.stats.branch_resolved += 1
            if uop.mispredicted:
                self.resolve_mispredict(uop, when)

    def ra_miss_done(self, payload, when: int) -> None:
        self._out_misses -= 1

    # ======================================================== mispredicts

    def resolve_mispredict(self, branch: DynUop, when: int) -> None:
        """A correct-path mispredicted branch resolved: recover."""
        self.stats.branch_mispredicted += 1
        observer = self.core.observer
        if observer:
            observer("mispredict", when, branch=branch)
        squashed = self.rob.squash_younger(branch.seq)
        self.release_squashed(squashed, SquashCause.BRANCH_MISPREDICT)
        self.stats.squashed_mispredict += len(squashed)
        # Undispatched queued uops are all younger: drop them.
        self.frontend.redirect(when)
        fe = self.fe
        fe.fetch_idx = branch.static.idx + 1
        self.next_dispatch_idx = branch.static.idx + 1
        if fe.pending_branch is branch or (
                fe.pending_branch is not None and fe.pending_branch.squashed):
            fe.pending_branch = None
        ra = self.ra
        if ra.mode == Mode.RUNAHEAD:
            # Runahead was chasing the wrong path; re-steer the cursor.
            ra._ra_diverged = False
            ra._ra_fetch_idx = branch.static.idx + 1
            ra._ra_resume = max(ra._ra_resume,
                                when + self.machine.core.frontend_depth)

    def release_squashed(self, uops: List[DynUop],
                         cause: SquashCause) -> None:
        observer = self.core.observer
        if observer and uops:
            observer("squash", self.engine.cycle, uops=uops, cause=cause)
        inflight = self.inflight
        for u in uops:
            u.squashed = True
            u.squash_cause = int(cause)
            self.lsq.release(u)
            self.regs.release(u)
            if inflight.get(u.static.idx) is u:
                del inflight[u.static.idx]
        self.iq.squash(lambda x: x.squashed)

    # ============================================================== issue

    def _do_issue(self, c: int) -> int:
        # Select directly over the IQ's per-class ready FIFOs: repeatedly
        # take the globally oldest head (smallest ready_ord), skipping any
        # FU class already found full this cycle (`blocked_fu` bitmask —
        # sound because within one cycle FU slots only fill, never free).
        # MSHR-rejected loads are set aside individually and restored to
        # their FIFO fronts afterwards, so pick order next cycle matches
        # the scan-based queue exactly. Age order + identical mem.access
        # attempt sequence ⇒ bit-identical results.
        iq = self.iq
        if iq._nready == 0:
            return 0
        ready = iq._ready
        issued = 0
        width = self.width
        fus = self.fus
        schedule = self.engine.schedule
        blocked_fu = 0
        stashed: Dict[int, List[DynUop]] = {}
        while issued < width:
            m = iq._nonempty & ~blocked_fu
            u = None
            u_cls = -1
            while m:
                low = m & -m
                m ^= low
                fc = low.bit_length() - 1
                head = ready[fc][0]
                if u is None or head.ready_ord < u.ready_ord:
                    u = head
                    u_cls = fc
            if u is None:
                break
            st = u.static
            cls = st.cls
            if not fus.can_issue(cls, c):
                blocked_fu |= 1 << u_cls
                continue
            dq = ready[u_cls]
            dq.popleft()
            if not dq:
                iq._nonempty &= ~(1 << u_cls)
            iq._nready -= 1
            if cls == _LOAD:
                result = self.mem.access(st.addr, c, pc=st.pc)
                if result is None:  # MSHRs full: retry next cycle
                    stashed.setdefault(u_cls, []).append(u)
                    continue
                fus.issue(cls, c)  # AGU slot
                done = result.done_cycle
                u.mem_level = result.level
                u.mem_issue_cycle = c
                if result.level == "dram":
                    u.llc_miss = True
                    # MLP counts useful (correct-path) outstanding misses;
                    # wrong-path misses still consume MSHRs and bandwidth.
                    if not result.merged and not u.wrong_path:
                        u.counted_miss = True
                        self._out_misses += 1
            elif cls == _STORE:
                fus.issue(cls, c)
                u.mem_issue_cycle = c
                done = c + 1  # address/data capture; write happens at commit
            else:
                done = fus.issue(cls, c)
            u.issue_cycle = c
            schedule(done, EV_WB, u)
            issued += 1
        for fc, uops in stashed.items():
            dq = ready[fc]
            for u in reversed(uops):
                dq.appendleft(u)
            iq._nonempty |= 1 << fc
            iq._nready += len(uops)
        return issued

    # =========================================================== dispatch

    def _dispatch_budget(self, c: int) -> int:
        """Per-cycle dispatch width; the THROTTLE policy rate-limits it to
        one uop every 4 cycles while an LLC miss blocks the head."""
        if self._throttled and self.ra.head_blocked_by_miss() is not None:
            return 1 if (c & 3) == 0 else 0
        return self.width

    def _do_dispatch(self, c: int) -> int:
        if self.ra.mode != Mode.NORMAL:
            return 0
        # The budget is loop-invariant (the ROB head only changes at
        # commit/squash, never mid-dispatch), so evaluate it once.
        budget = self._dispatch_budget(c) if self._throttled else self.width
        n = 0
        pipe = self.frontend._pipe
        inflight = self.inflight
        rob = self.rob
        robq = rob._q
        lsq = self.lsq
        regs = self.regs
        iq = self.iq
        while n < budget:
            # Inlined peek/pop plus the allocator capacity checks, in the
            # same order (and with the same short-circuits) as the
            # regfile/ROB/LSQ/IQ methods they replace.
            if not pipe:
                break
            u, ready_at = pipe[0]
            if ready_at > c:
                break
            st = u.static
            if st.has_dest and (regs.fp_free if st.is_fp
                                else regs.int_free) <= 0:
                self._regstall_cycle = c
                break
            if len(robq) >= rob.size:
                break
            if st.is_load:
                if lsq.lq_used >= lsq.lq_size:
                    break
            elif st.is_store:
                if lsq.sq_used >= lsq.sq_size:
                    break
            cls = st.cls
            if cls != _NOP and len(iq._waiting) + iq._nready \
                    + iq.runahead_used >= iq.size:
                break
            pipe.popleft()
            u.dispatch_cycle = c
            robq.append(u)
            if st.is_load:
                lsq.lq_used += 1
                u.in_lq = True
            elif st.is_store:
                lsq.sq_used += 1
                u.in_sq = True
            if st.has_dest:
                if st.is_fp:
                    regs.fp_free -= 1
                else:
                    regs.int_free -= 1
            if cls == _NOP:
                u.completed = True
                u.done_cycle = c
            else:
                pending = 0
                for src in st.srcs:
                    producer = inflight.get(src)
                    if producer is not None and not producer.completed \
                            and not producer.squashed:
                        pending += 1
                        producer.consumers.append(u)
                if pending:
                    u.pending = pending
                    iq._waiting.add(u)
                else:
                    u.ready_ord = iq._next_ord
                    iq._next_ord += 1
                    fc = st.fu_cls
                    iq._ready[fc].append(u)
                    iq._nonempty |= 1 << fc
                    iq._nready += 1
            if not u.wrong_path:
                inflight[st.idx] = u
                self.next_dispatch_idx = st.idx + 1
            n += 1
        return n


class RunaheadController(Component):
    """Mode transitions and the runahead interval state machine.

    Owns the core's :class:`~repro.common.enums.Mode`, the blocking load,
    every ``_ra_*`` interval register, and the Figure 5 attribution-window
    bookkeeping.
    """

    name = "runahead_ctl"
    state_attrs = ("mode", "blocking", "_ra_interval", "_ra_fetch_idx",
                   "_ra_resume", "_ra_entry_cycle", "_ra_diverged",
                   "_ra_hist_ckpt", "_ra_inv", "_ra_ready",
                   "_ra_iq_releases", "_ra_vec_fill", "_hb_seq", "_fs_seq")

    def __init__(self, core) -> None:
        self.core = core
        self.mode = Mode.NORMAL
        self.blocking: Optional[DynUop] = None
        self._ra_interval = 0
        self._ra_fetch_idx = 0
        self._ra_resume = 0
        self._ra_entry_cycle = 0
        self._ra_diverged = False
        self._ra_hist_ckpt = 0
        self._ra_inv: Set[int] = set()
        self._ra_ready: Dict[int, int] = {}
        self._ra_iq_releases: List[int] = []  # min-heap of release cycles
        self._ra_vec_fill = 0  # vector-runahead group fill counter
        # Attribution window bookkeeping (Figure 5)
        self._hb_seq = -1
        self._fs_seq = -1

    def bind(self) -> None:
        core = self.core
        self.engine = core.engine
        self.trace = core.trace
        self.rob = core.rob
        self.iq = core.iq
        self.prdq = core.prdq
        self.fus = core.fus
        self.sst = core.sst
        self.predictor = core.predictor
        self.frontend = core.frontend
        self.mem = core.mem
        self.ace = core.ace
        self.stats = core.stats
        self.width = core.width
        self.machine = core.machine
        self.fe = core.frontend_stage
        self.backend = core.backend
        self._est_latency = core._est_latency

    def set_mode(self, mode: Mode) -> None:
        """Central mode switch: keeps the quiescence flags of the gated
        components in sync with the mode (the front-end is fully idle
        outside NORMAL; the back-end is idle once its ready lists drain —
        see :class:`WindowBackEnd.step`)."""
        self.mode = mode
        normal = mode == Mode.NORMAL
        self.fe.quiesced = not normal
        if normal:
            self.backend.quiesced = False
        elif self.iq._nready == 0:
            self.backend.quiesced = True

    def step(self, c: int) -> int:
        self.update_windows(c)
        mode = self.mode
        if mode == Mode.NORMAL:
            return self.check_triggers(c)
        if mode == Mode.FLUSH_STALL:
            blocking = self.blocking
            if blocking is not None and blocking.completed:
                # Data returned: head will commit; refetch the rest.
                self.set_mode(Mode.NORMAL)
                self.blocking = None
                self.fe.fetch_idx = self.backend.next_dispatch_idx
                self.frontend.resume_cycle = \
                    c + self.machine.core.frontend_depth
                observer = self.core.observer
                if observer:
                    observer("flush_exit", c)
                return 1
            return 0
        # Mode.RUNAHEAD
        blocking = self.blocking
        if blocking is not None and blocking.completed:
            self.exit_runahead(c)
            return 1
        return self.runahead_advance(c)

    def wake_candidates(self, cycle: int):
        if self.mode != Mode.RUNAHEAD:
            return ()
        out = []
        if self._ra_resume > cycle:
            out.append(self._ra_resume)
        if self._ra_iq_releases and self._ra_iq_releases[0] > cycle:
            out.append(self._ra_iq_releases[0])
        nxt = self.prdq.next_release()
        if nxt is not None and nxt > cycle:
            out.append(nxt)
        return out

    # ============================================== attribution windows

    def update_windows(self, c: int) -> None:
        """Maintain the Figure 5 attribution windows."""
        q = self.rob._q
        head = q[0] if q else None
        ace = self.ace
        blocked = (
            head is not None
            and head.llc_miss
            and not head.completed
            and head.static.cls == _LOAD
            and not head.wrong_path
        )
        if not blocked:
            # Common case first: nothing blocked, close any open windows.
            if ace.head_blocked._open_start >= 0:
                ace.head_blocked.close(c)
            if ace.full_stall._open_start >= 0:
                ace.full_stall.close(c)
            return
        if ace.head_blocked.is_open and self._hb_seq != head.seq:
            ace.head_blocked.close(c)
        if not ace.head_blocked.is_open:
            ace.head_blocked.open(c)
            self._hb_seq = head.seq
        if ace.full_stall.is_open and self._fs_seq != head.seq:
            ace.full_stall.close(c)
        # "Full-window stall": the window cannot grow — ROB full or
        # renaming out of registers (same condition as the late
        # runahead trigger).
        window_stalled = self.rob.full \
            or self.backend._regstall_cycle >= c - 1
        if not ace.full_stall.is_open and window_stalled:
            ace.full_stall.open(c)
            self._fs_seq = head.seq

    def head_blocked_by_miss(self) -> Optional[DynUop]:
        head = self.rob.head
        if (
            head is not None
            and head.static.cls == _LOAD
            and not head.completed
            and not head.wrong_path
            and head.mem_issue_cycle >= 0
            and head.llc_miss
        ):
            return head
        return None

    # =========================================================== triggers

    def check_triggers(self, c: int) -> int:
        policy = self.core.policy
        if policy.kind in ("ooo", "throttle"):
            return 0  # throttling acts in dispatch, not via mode changes
        head = self.head_blocked_by_miss()
        if head is None:
            return 0
        if policy.kind == "flush":
            if not self.rob.head_timer_expired:
                return 0
            self.enter_flush_stall(head, c)
            return 1
        # Runahead variants
        if policy.early:
            if not self.rob.head_timer_expired:
                return 0
        else:
            # Full-window stall: the ROB is full, or renaming ran out of
            # physical registers (the window cannot grow either way). An
            # IQ-full stall does NOT count — that is precisely the case
            # the late-triggering variants miss (Section II-C).
            if not (self.rob.full or self.backend._regstall_cycle >= c - 1):
                return 0
            if (policy.name == "TR"
                    and c - head.mem_issue_cycle
                    >= self.machine.core.tr_recency_cycles):
                return 0
        self.enter_runahead(head, c)
        return 1

    def enter_flush_stall(self, head: DynUop, c: int) -> None:
        backend = self.backend
        fe = self.fe
        squashed = self.rob.squash_younger(head.seq)
        backend.release_squashed(squashed, SquashCause.FLUSH_MECHANISM)
        self.stats.squashed_flush_mechanism += len(squashed)
        self.stats.flush_triggers += 1
        self.frontend.redirect(c, penalty=1 << 60)  # gated until data returns
        if fe.pending_branch is not None and (
                fe.pending_branch.squashed
                or fe.pending_branch.dispatch_cycle < 0):
            fe.pending_branch = None
        backend.next_dispatch_idx = head.static.idx + 1
        self.blocking = head
        self.set_mode(Mode.FLUSH_STALL)
        observer = self.core.observer
        if observer:
            observer("flush_enter", c, blocking=head)

    # =========================================================== runahead

    def enter_runahead(self, head: DynUop, c: int) -> None:
        fe = self.fe
        self.stats.runahead_triggers += 1
        self.stats.ra_trigger_rob_sum += len(self.rob)
        self.blocking = head
        self.set_mode(Mode.RUNAHEAD)
        self._ra_interval += 1
        self._ra_entry_cycle = c
        self._ra_resume = c + 1  # checkpoint RAT, redirect front-end
        # Seed the INV set with everything whose value cannot materialise
        # during the interval: the blocking load itself plus every
        # in-flight, incomplete instruction (transitively) dependent on it.
        # Without this, a trace-driven simulator would leak statically
        # known addresses of data-dependent loads to the prefetcher —
        # letting runahead "prefetch" pointer chains no real runahead can.
        blocked = {head.static.idx}
        for u in self.rob:
            if u is head or u.wrong_path or u.completed:
                continue
            for src in u.static.srcs:
                if src in blocked:
                    blocked.add(u.static.idx)
                    break
        self._ra_inv = blocked
        self._ra_ready = {}
        self._ra_vec_fill = 0
        self._ra_diverged = fe.pending_branch is not None
        self._ra_fetch_idx = self.backend.next_dispatch_idx
        #: branch history is checkpointed with the RAT and restored at exit
        self._ra_hist_ckpt = self.predictor.hist
        observer = self.core.observer
        if observer:
            observer("runahead_enter", c, blocking=head)
        # The front-end is reused by runahead: queued uops are dropped and
        # will be refetched after exit.
        if fe.pending_branch is not None and \
                fe.pending_branch.dispatch_cycle < 0:
            fe.pending_branch = None
            self._ra_diverged = False
        self.frontend.redirect(c, penalty=1 << 60)  # normal fetch off

    def runahead_advance(self, c: int) -> int:
        if c < self._ra_resume:
            self.stats.ra_stall_resume += 1
            return 0
        if self._ra_diverged:
            self.stats.ra_stall_diverged += 1
            return 0
        self.drain_ra_iq(c)
        self.prdq.drain(c)
        policy = self.core.policy
        trace = self.trace
        inflight = self.backend.inflight
        stats = self.stats
        ra_inv = self._ra_inv
        ra_ready = self._ra_ready
        iq = self.iq
        uop_lat = self.fus._uop_latency
        budget = self.width
        progress = 0
        #: runahead-buffer replay skips non-chain uops for free, but the
        #: scan per cycle is still bounded (buffer index hardware).
        free_skips = 16 * self.width if policy.buffer else 0
        while budget > 0:
            st = trace.get(self._ra_fetch_idx)
            if st is None:
                break
            stats.runahead_uops_examined += 1
            idx = st.idx
            inv = False
            for src in st.srcs:
                if src in ra_inv:
                    inv = True
                    break
            if inv:
                ra_inv.add(idx)
            cls = st.cls
            if cls == _BRANCH and policy.buffer:
                # The runahead buffer replays a straight chain: it cannot
                # re-steer. Correctly-predicted branches are invisible to
                # it; a mispredicted one ends the replay.
                predicted = self.predictor.predict(st.pc)
                self.predictor.shift_history(predicted)
                if predicted != st.taken:
                    self._ra_diverged = True
                    self._ra_fetch_idx += 1
                    return progress + 1
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            if cls == _BRANCH:
                if inv:
                    # Miss-dependent branch: cannot execute, follow the
                    # prediction (speculative history shift, no training).
                    predicted = self.predictor.predict(st.pc)
                    self.predictor.shift_history(predicted)
                    if predicted != st.taken:
                        # Went the wrong way and cannot be repaired: the
                        # rest of the interval is diverged.
                        self._ra_diverged = True
                        self._ra_fetch_idx += 1
                        return progress + 1
                else:
                    # Runahead executes valid branches: predictor trains
                    # and history advances, exactly like normal fetch (a
                    # known side benefit of runahead execution).
                    predicted = self.predictor.observe(st.pc, st.taken)
                    if predicted != st.taken:
                        # Resolve and re-steer the cursor.
                        self._ra_resume = c + self.machine.core.frontend_depth
                        self._ra_fetch_idx += 1
                        return progress + 1
                self._ra_fetch_idx += 1
                budget -= 1
                progress += 1
                continue
            execute = not inv and (not policy.lean or self.sst_hit(st))
            if not execute:
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    # Buffer replay: non-chain uops never enter the engine.
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            # Vector runahead: consecutive slice instances share one
            # issue/IQ slot per `vector`-wide group.
            vector_free = False
            if policy.vector:
                vector_free = (self._ra_vec_fill % policy.vector) != 0
                self._ra_vec_fill += 1
            # Acquire runahead resources: a free IQ entry, and a register
            # via the PRDQ when the uop writes a destination.
            if not vector_free and (
                    len(iq._waiting) + iq._nready + iq.runahead_used
                    >= iq.size):
                stats.ra_stall_iq += 1
                break
            ready = c
            for src in st.srcs:
                t = ra_ready.get(src)
                if t is None:
                    producer = inflight.get(src)
                    if producer is not None and producer.completed:
                        t = producer.done_cycle
                    else:
                        t = c
                if t > ready:
                    ready = t
            ready += uop_lat[cls]
            if st.has_dest and not vector_free:
                if not self.prdq.can_allocate(st.is_fp):
                    stats.ra_stall_prdq += 1
                    break
                self.prdq.allocate(st.is_fp, ready)
            if not vector_free:
                iq.runahead_used += 1
                heapq.heappush(self._ra_iq_releases, ready)
            stats.runahead_uops_executed += 1
            if cls == _LOAD or cls == _STORE:
                self.engine.schedule(max(ready, c + 1), EV_RA_ISSUE,
                                     (self._ra_interval, st, 0))
                est = self._est_latency[self.mem.probe_level(st.addr)]
                ra_ready[idx] = ready + est
            else:
                ra_ready[idx] = ready
            self._ra_fetch_idx += 1
            if vector_free:
                pass  # batched into the group leader's slot
            elif free_skips > 0 and not execute:
                free_skips -= 1
            else:
                budget -= 1
            progress += 1
        return progress

    def sst_hit(self, st) -> bool:
        hit = self.sst.lookup(st.pc)
        if hit:
            observer = self.core.observer
            if observer:
                observer("sst_hit", self.engine.cycle, pc=st.pc)
        return hit

    def train_sst(self, idx: int, pc: int) -> None:
        """Insert the LLC-missing load's backward slice into the SST."""
        if self.sst.lookup(pc):
            return
        trace = self.trace
        pcs = []
        for i in trace.slice_producers(idx):
            producer = trace.get(i)
            if producer is not None:
                pcs.append(producer.pc)
        pcs.append(pc)
        self.sst.train_slice(pcs)
        observer = self.core.observer
        if observer:
            observer("sst_train", self.engine.cycle, pc=pc,
                     slice_len=len(pcs))

    def drain_ra_iq(self, c: int) -> None:
        rel = self._ra_iq_releases
        while rel and rel[0] <= c:
            heapq.heappop(rel)
            if self.iq.runahead_used > 0:
                self.iq.runahead_used -= 1

    def ra_memory_issue(self, payload, when: int) -> None:
        interval, st, retry = payload
        if interval != self._ra_interval or self.mode != Mode.RUNAHEAD:
            return
        result = self.mem.access(st.addr, when, is_write=(st.cls == _STORE),
                                 pc=st.pc)
        if result is None:
            # MSHRs full: retry with backoff — runahead keeps the MSHRs
            # saturated by design, so an eager retry loop would spin.
            backoff = min(32, 4 << min(retry, 3))
            self.engine.schedule(when + backoff, EV_RA_ISSUE,
                                 (interval, st, retry + 1))
            return
        self.stats.runahead_prefetches += 1
        self._ra_ready[st.idx] = result.done_cycle
        observer = self.core.observer
        if observer:
            observer("runahead_prefetch", when, pc=st.pc,
                     level=result.level)
        if result.level == "dram":
            if st.cls == _LOAD and not self.sst.lookup(st.pc):
                self.train_sst(st.idx, st.pc)
            if not result.merged:
                self.backend._out_misses += 1
                self.engine.schedule(result.done_cycle, EV_RA_DONE, None)

    def exit_runahead(self, c: int) -> None:
        backend = self.backend
        fe = self.fe
        self.stats.runahead_cycles += c - self._ra_entry_cycle
        depth = self.machine.core.frontend_depth
        if self.core.policy.flush_at_exit:
            squashed = self.rob.squash_all()
            backend.release_squashed(squashed,
                                     SquashCause.RUNAHEAD_EXIT_FLUSH)
            self.stats.squashed_runahead_flush += len(squashed)
            blocking_idx = self.blocking.static.idx
            fe.fetch_idx = blocking_idx
            backend.next_dispatch_idx = blocking_idx
            fe.pending_branch = None
            # RAT restore + full refetch from the blocking load.
            self.frontend.redirect(c, penalty=depth)
        else:
            # PRE: the frozen window is kept; refetch only beyond it.
            fe.fetch_idx = backend.next_dispatch_idx
            self.frontend.redirect(c, penalty=depth)
            if fe.pending_branch is not None and \
                    fe.pending_branch.dispatch_cycle < 0:
                fe.pending_branch = None
        self.iq.runahead_used = 0
        self._ra_iq_releases = []
        self.prdq.flush()
        self.predictor.hist = self._ra_hist_ckpt
        self._ra_ready = {}
        self._ra_inv = set()
        self._ra_diverged = False
        observer = self.core.observer
        if observer:
            observer("runahead_exit", c, blocking=self.blocking)
        self.blocking = None
        self.set_mode(Mode.NORMAL)
