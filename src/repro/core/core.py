"""The cycle-level out-of-order core: facade over engine + components.

One :class:`OutOfOrderCore` simulates one workload trace on one machine
configuration under one :class:`~repro.core.runahead.RunaheadPolicy`. The
per-cycle loop is::

    process completion events → commit → controller (triggers/exits,
    runahead fetch) → issue → dispatch → fetch

Since the engine refactor the class is a thin facade: the cycle loop,
event heap and fast-forward live in :class:`~repro.core.engine.SimEngine`,
and the pipeline stages are :class:`~repro.core.engine.Component`
instances (:mod:`repro.core.components`) that each own a disjoint slice
of the mutable state. The facade constructs the hardware structures,
wires the components together, and re-exports the historical attribute
surface (``core.cycle``, ``core.mode``, ``core._step()``, …) by
delegation so ``simulate()``, telemetry hooks and the test suite are
unaffected. See docs/architecture.md for the decomposition and the
checkpoint lifecycle built on it.

Mechanism summary (see DESIGN.md §4 for the full matrix):

- **FLUSH** (Weaver et al.): when a long-latency load blocks the ROB head,
  squash everything younger and idle; refetch when the data returns.
- **Runahead** (TR/PRE/RAR families): freeze the ROB, let a speculative
  cursor run ahead of the blocked window, execute (all | slice-only) future
  uops with spare resources, prefetching their misses. On the blocking
  load's return either keep the frozen window (PRE) or flush the whole
  back-end and refetch from the blocking load (TR/RAR) — flushed residency
  is un-ACE, which is RAR's reliability win.
"""

from functools import partial
from typing import Dict, Optional

from repro.common.params import MachineParams
from repro.core.components import (
    CommitUnit,
    FrontEndStage,
    RunaheadController,
    WindowBackEnd,
)
from repro.core.engine import EV_RA_DONE, EV_RA_ISSUE, EV_WB, SimEngine
from repro.core.fu import FuPool
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LoadStoreQueues
from repro.core.prdq import Prdq
from repro.core.regfile import RegisterFiles
from repro.core.rob import ReorderBuffer
from repro.core.runahead import OOO, RunaheadPolicy
from repro.core.sst import StallingSliceTable
from repro.frontend.btb import Btb
from repro.frontend.fetch import FrontEnd, WrongPathSource
from repro.frontend.tage import TageScL
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.registry import StatsRegistry
from repro.reliability.ace import AceAccountant

#: SimStats attribute → hierarchical registry name (gem5-style dotted
#: paths, one namespace per component; see docs/metrics.md).
STAT_NAMES = {
    "committed": "core.commit.committed",
    "cycles": "core.clock.cycles",
    "runahead_triggers": "core.runahead.triggers",
    "runahead_cycles": "core.runahead.cycles",
    "runahead_uops_examined": "core.runahead.uops_examined",
    "runahead_uops_executed": "core.runahead.uops_executed",
    "runahead_prefetches": "core.runahead.prefetches",
    "flush_triggers": "core.flush.triggers",
    "flush_stall_cycles": "core.flush.stall_cycles",
    "squashed_mispredict": "core.squash.mispredict",
    "squashed_runahead_flush": "core.squash.runahead_flush",
    "squashed_flush_mechanism": "core.squash.flush_mechanism",
    "demand_llc_misses": "core.commit.llc_missing_loads",
    "mlp_sum": "core.mlp.sum",
    "mlp_cycles": "core.mlp.busy_cycles",
    "branch_resolved": "core.branch.resolved",
    "branch_mispredicted": "core.branch.mispredicted",
    "fast_forwarded_cycles": "core.clock.fast_forwarded",
    "ra_trigger_rob_sum": "core.runahead.trigger_rob_sum",
    "ra_stall_iq": "core.runahead.stall_iq",
    "ra_stall_prdq": "core.runahead.stall_prdq",
    "ra_stall_resume": "core.runahead.stall_resume",
    "ra_stall_diverged": "core.runahead.stall_diverged",
}


class SimStats:
    """Raw counters accumulated during simulation (see ``SimResult``).

    Implemented on top of the hierarchical stats registry: every counter
    is a plain int attribute (so the per-cycle hot path pays nothing) and
    is *bound* into :attr:`registry` under its dotted name, where the
    telemetry layer reads, deltas and dumps it.
    """

    def __init__(self, registry: Optional[StatsRegistry] = None) -> None:
        self.committed = 0
        self.cycles = 0
        self.runahead_triggers = 0
        self.runahead_cycles = 0
        self.runahead_uops_examined = 0
        self.runahead_uops_executed = 0
        self.runahead_prefetches = 0
        self.flush_triggers = 0
        self.flush_stall_cycles = 0
        self.squashed_mispredict = 0
        self.squashed_runahead_flush = 0
        self.squashed_flush_mechanism = 0
        self.demand_llc_misses = 0       # correct-path, normal mode
        self.mlp_sum = 0                 # Σ outstanding misses over busy cycles
        self.mlp_cycles = 0              # cycles with ≥1 outstanding miss
        self.branch_resolved = 0
        self.branch_mispredicted = 0
        self.fast_forwarded_cycles = 0
        #: Σ ROB occupancy at runahead entry (÷ triggers = mean occupancy;
        #: early-start enters with a less-full window than late-start)
        self.ra_trigger_rob_sum = 0
        # Runahead-advance stall diagnostics (cycles lost per cause)
        self.ra_stall_iq = 0
        self.ra_stall_prdq = 0
        self.ra_stall_resume = 0
        self.ra_stall_diverged = 0

        self.registry = registry if registry is not None else StatsRegistry()
        for attr, name in STAT_NAMES.items():
            self.registry.scalar(name, getter=partial(getattr, self, attr))

    def snapshot(self) -> Dict[str, int]:
        return {k: v for k, v in self.__dict__.items()
                if isinstance(v, int)}


class OutOfOrderCore:
    """Cycle-level OoO core simulator.

    Args:
        machine: full machine configuration.
        trace: rewindable workload trace.
        policy: runahead/flush policy (default: plain OoO baseline).
        seed: seed for the wrong-path synthesiser.
    """

    def __init__(
        self,
        machine: MachineParams,
        trace: Trace,
        policy: RunaheadPolicy = OOO,
        seed: int = 0,
        record_ace_intervals: bool = False,
        observer=None,
        telemetry=None,
        validate: bool = False,
    ):
        """``observer``, when provided, is called as
        ``observer(event, cycle, **data)`` on notable pipeline events:
        ``commit`` (uop), ``squash`` (uops, cause), ``runahead_enter`` /
        ``runahead_exit`` (blocking), ``flush_enter`` / ``flush_exit``,
        ``mispredict`` (branch), ``sst_hit`` / ``sst_train`` (pc) and
        ``runahead_prefetch`` (pc, level). Purely observational — the
        simulation is bit-identical with or without one.

        ``telemetry``, a :class:`repro.obs.Telemetry`, attaches itself to
        the observer hook, the memory hierarchy and the run loop; the
        core's :attr:`registry` carries its hierarchical stats whether or
        not a telemetry object is attached.

        ``validate=True`` appends a
        :class:`repro.validate.invariants.InvariantChecker` to the engine
        pipeline (stepped last each cycle) and chains it onto the
        observer hook. The checker is purely observational and is *not*
        part of :attr:`components` — it carries no architectural state,
        so checkpoints stay interchangeable between sanitized and
        unsanitized cores. When ``validate`` is false (the default) no
        checker object exists and the hot path is untouched."""
        self.machine = machine
        self.trace = trace
        self.policy = policy
        p = machine.core
        self.width = p.width
        self.record_ace_intervals = record_ace_intervals

        # Shared hardware structures. These objects are never replaced
        # over the core's lifetime — components cache direct references
        # and checkpoint restore mutates them in place.
        self.mem = MemoryHierarchy(machine)
        self.predictor = TageScL()
        self.btb = Btb()
        self.frontend = FrontEnd(p.width, p.frontend_depth)
        self.wrong_path_src = WrongPathSource(seed)
        self.rob = ReorderBuffer(p.rob_size, p.head_timer_init)
        self.iq = IssueQueue(p.iq_size)
        self.lsq = LoadStoreQueues(p.lq_size, p.sq_size)
        self.regs = RegisterFiles(p.int_regs, p.fp_regs, p.arch_regs)
        self.fus = FuPool(p)
        self.sst = StallingSliceTable(p.sst_size)
        self.prdq = Prdq(p.prdq_size, self.regs)
        self.ace = AceAccountant(self.fus.exec_cycles,
                                 record_intervals=record_ace_intervals)
        self.observer = observer
        self.telemetry = None
        #: commit-stream oracle, set by CommitOracle.attach (wiring, not
        #: state — like the invariant checker, never checkpointed)
        self.oracle = None
        self.stats = SimStats()
        self.registry = self.stats.registry
        self._register_component_stats()

        lat = machine.l1d.latency
        self._est_latency = {
            "l1": lat,
            "l2": lat + machine.l2.latency,
            "l3": lat + machine.l2.latency + machine.l3.latency,
            "dram": lat + machine.l2.latency + machine.l3.latency
            + machine.dram.row_miss_latency + 60,
        }

        # Engine + pipeline components: construct all, then bind (binding
        # caches cross-component references, so every component must
        # already exist), then wire the stage order and event handlers.
        self.engine = SimEngine(self)
        self.frontend_stage = FrontEndStage(self)
        self.commit_unit = CommitUnit(self)
        self.backend = WindowBackEnd(self)
        self.runahead_ctl = RunaheadController(self)
        self.components = (self.engine, self.frontend_stage,
                           self.commit_unit, self.backend,
                           self.runahead_ctl)
        for comp in self.components:
            comp.bind()
        pipeline = (self.commit_unit, self.runahead_ctl,
                    self.backend, self.frontend_stage)
        self.checker = None
        if validate:
            # Imported lazily: the validate package is optional wiring,
            # and importing it here at module scope would be a cycle.
            from repro.validate.invariants import InvariantChecker
            self.checker = InvariantChecker(self)
            self.checker.bind()
            pipeline = pipeline + (self.checker,)
        self.engine.wire(pipeline)
        self.engine.on_event(EV_WB, self.backend.writeback)
        self.engine.on_event(EV_RA_ISSUE, self.runahead_ctl.ra_memory_issue)
        self.engine.on_event(EV_RA_DONE, self.backend.ra_miss_done)

        if self.checker is not None:
            self.checker.attach_observer()
        if telemetry is not None:
            telemetry.attach(self)

    # ---------------------------------------------------------- registry

    def _register_component_stats(self) -> None:
        """Bind memory/ACE/machine stats and derived formulas into the
        hierarchical registry (``SimStats`` binds its own counters)."""
        reg = self.registry
        mem = self.mem
        for attr, name in (
            ("demand_accesses", "mem.l1d.demand_accesses"),
            ("demand_llc_misses", "mem.llc.demand_misses"),
            ("writebacks_to_l2", "mem.l2.writebacks"),
            ("writebacks_to_l3", "mem.l3.writebacks"),
            ("writebacks_to_dram", "mem.dram.writebacks"),
            ("rejected_mshr_full", "mem.mshr.rejected_full"),
            ("prefetches_issued", "mem.prefetcher.issued"),
        ):
            reg.scalar(name, getter=partial(getattr, mem, attr))
        # DRAM controller counters route through ``mem`` at read time:
        # checkpoint restore replaces ``mem.dram`` wholesale, and a getter
        # bound to the old controller would silently read dead state.
        for attr, name in (
            ("accesses", "mem.dram.accesses"),
            ("row_hits", "mem.dram.row_hits"),
            ("row_conflicts", "mem.dram.row_conflicts"),
            ("refresh_stall_cycles", "mem.dram.refresh_stall_cycles"),
            ("demand_requests", "mem.dram.demand_requests"),
            ("writeback_requests", "mem.dram.writeback_requests"),
            ("prefetch_requests", "mem.dram.prefetch_requests"),
        ):
            reg.scalar(name,
                       getter=lambda m=mem, a=attr: getattr(m.dram, a))
        ace = self.ace
        for s in ace.bits:
            reg.scalar(f"ace.{s}.bits",
                       getter=partial(ace.bits.__getitem__, s))
        reg.scalar("ace.total", getter=lambda a=ace: a.total)
        reg.scalar("ace.head_blocked.bits",
                   getter=partial(getattr, ace, "bits_in_head_blocked"))
        reg.scalar("ace.full_stall.bits",
                   getter=partial(getattr, ace, "bits_in_full_stall"))
        reg.scalar("ace.committed_charged",
                   getter=partial(getattr, ace, "committed_charged"))
        total_bits = self.machine.core.total_bits
        reg.scalar("machine.total_bits", getter=lambda n=total_bits: n,
                   const=True)

        def _ratio(a, b, scale=1.0):
            def fn(v):
                return scale * v[a] / v[b] if v[b] else 0.0
            return fn

        reg.formula("core.ipc",
                    _ratio("core.commit.committed", "core.clock.cycles"),
                    desc="committed instructions per cycle")
        reg.formula("core.mpki",
                    _ratio("core.commit.llc_missing_loads",
                           "core.commit.committed", 1000.0),
                    desc="LLC misses per kilo-instruction")
        reg.formula("core.mlp.avg",
                    _ratio("core.mlp.sum", "core.mlp.busy_cycles"),
                    desc="mean outstanding misses over busy cycles")
        reg.formula("mem.dram.row_hit_rate",
                    _ratio("mem.dram.row_hits", "mem.dram.accesses"),
                    desc="row-buffer hits per DRAM access")

        def _avf(v):
            denom = v["machine.total_bits"] * v["core.clock.cycles"]
            return v["ace.total"] / denom if denom else 0.0

        reg.formula("ace.avf", _avf, desc="ABC / (N x T)")
        # Occupancy/latency distributions: recorded by the telemetry layer
        # (interval sampler / memory hook); always registered so names are
        # stable whether or not telemetry is attached.
        for name in ("core.rob.occupancy", "core.iq.occupancy",
                     "core.lq.occupancy", "core.sq.occupancy"):
            reg.distribution(name, bucket_size=8)
        reg.distribution("mem.llc.miss_latency", bucket_size=50)
        reg.distribution("mem.dram.queue_occupancy", bucket_size=2)
        reg.distribution("mem.dram.bank_occupancy", bucket_size=2)

    # ================================================================ run

    def run(self, max_instructions: int) -> None:
        """Simulate until ``max_instructions`` have committed."""
        self.engine.run(max_instructions)

    def _step(self) -> int:
        return self.engine.step()

    def _fast_forward(self) -> None:
        self.engine.fast_forward()

    def _schedule(self, cycle: int, kind: int, payload: object) -> None:
        self.engine.schedule(cycle, kind, payload)

    def _writeback(self, uop, when: int) -> None:
        self.backend.writeback(uop, when)

    # --------------------------------------------------- delegated state
    # The historical flat attribute surface, routed to the component that
    # now owns each piece of state. Both reads and writes delegate, so
    # white-box tests and external drivers keep working unchanged.

    @property
    def cycle(self) -> int:
        return self.engine.cycle

    @cycle.setter
    def cycle(self, value: int) -> None:
        self.engine.cycle = value

    @property
    def mode(self):
        return self.runahead_ctl.mode

    @mode.setter
    def mode(self, value) -> None:
        # Through set_mode so the quiescence flags stay consistent even
        # when a test or external driver forces the mode directly.
        self.runahead_ctl.set_mode(value)

    @property
    def blocking(self):
        return self.runahead_ctl.blocking

    @blocking.setter
    def blocking(self, value) -> None:
        self.runahead_ctl.blocking = value

    @property
    def fetch_idx(self) -> int:
        return self.frontend_stage.fetch_idx

    @fetch_idx.setter
    def fetch_idx(self, value: int) -> None:
        self.frontend_stage.fetch_idx = value

    @property
    def pending_branch(self):
        return self.frontend_stage.pending_branch

    @pending_branch.setter
    def pending_branch(self, value) -> None:
        self.frontend_stage.pending_branch = value

    @property
    def next_dispatch_idx(self) -> int:
        return self.backend.next_dispatch_idx

    @next_dispatch_idx.setter
    def next_dispatch_idx(self, value: int) -> None:
        self.backend.next_dispatch_idx = value

    @property
    def inflight(self):
        return self.backend.inflight

    @property
    def _out_misses(self) -> int:
        return self.backend._out_misses

    @_out_misses.setter
    def _out_misses(self, value: int) -> None:
        self.backend._out_misses = value

    @property
    def _events(self):
        return self.engine._events

    @property
    def _ra_inv(self):
        return self.runahead_ctl._ra_inv

    @property
    def _ra_hist_ckpt(self) -> int:
        return self.runahead_ctl._ra_hist_ckpt

    # ============================================================ results

    @property
    def ipc(self) -> float:
        return self.stats.committed / self.cycle if self.cycle else 0.0

    @property
    def mlp(self) -> float:
        s = self.stats
        return s.mlp_sum / s.mlp_cycles if s.mlp_cycles else 0.0

    @property
    def mpki(self) -> float:
        s = self.stats
        return 1000.0 * s.demand_llc_misses / s.committed if s.committed else 0.0
