"""The cycle-level out-of-order core with runahead mechanisms.

One :class:`OutOfOrderCore` simulates one workload trace on one machine
configuration under one :class:`~repro.core.runahead.RunaheadPolicy`. The
per-cycle loop is::

    process completion events → commit → controller (triggers/exits,
    runahead fetch) → issue → dispatch → fetch

A cycle with no activity fast-forwards to the next cycle at which anything
*can* happen (completion event, front-end arrival, fetch gate, head-timer
expiry) — this is what makes a pure-Python model viable for memory-bound
workloads that spend hundreds of consecutive cycles draining one miss.

Mechanism summary (see DESIGN.md §4 for the full matrix):

- **FLUSH** (Weaver et al.): when a long-latency load blocks the ROB head,
  squash everything younger and idle; refetch when the data returns.
- **Runahead** (TR/PRE/RAR families): freeze the ROB, let a speculative
  cursor run ahead of the blocked window, execute (all | slice-only) future
  uops with spare resources, prefetching their misses. On the blocking
  load's return either keep the frozen window (PRE) or flush the whole
  back-end and refetch from the blocking load (TR/RAR) — flushed residency
  is un-ACE, which is RAR's reliability win.
"""

import heapq
from functools import partial
from typing import Dict, List, Optional, Set, Tuple

from repro.common.enums import Mode, SquashCause, UopClass
from repro.common.params import MachineParams
from repro.core.fu import FuPool
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LoadStoreQueues
from repro.core.prdq import Prdq
from repro.core.regfile import RegisterFiles
from repro.core.rob import ReorderBuffer
from repro.core.runahead import OOO, RunaheadPolicy
from repro.core.sst import StallingSliceTable
from repro.frontend.btb import Btb
from repro.frontend.fetch import FrontEnd, WrongPathSource
from repro.frontend.tage import TageScL
from repro.isa.trace import Trace
from repro.isa.uop import DynUop
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.registry import StatsRegistry
from repro.reliability.ace import AceAccountant

_EV_WB = 0        # writeback: a dispatched uop's result is ready
_EV_RA_ISSUE = 1  # a runahead uop's memory access reaches the hierarchy
_EV_RA_DONE = 2   # a runahead-initiated LLC miss completed (MLP counter)

_LOAD = int(UopClass.LOAD)
_STORE = int(UopClass.STORE)
_BRANCH = int(UopClass.BRANCH)
_NOP = int(UopClass.NOP)


#: SimStats attribute → hierarchical registry name (gem5-style dotted
#: paths, one namespace per component; see docs/metrics.md).
STAT_NAMES = {
    "committed": "core.commit.committed",
    "cycles": "core.clock.cycles",
    "runahead_triggers": "core.runahead.triggers",
    "runahead_cycles": "core.runahead.cycles",
    "runahead_uops_examined": "core.runahead.uops_examined",
    "runahead_uops_executed": "core.runahead.uops_executed",
    "runahead_prefetches": "core.runahead.prefetches",
    "flush_triggers": "core.flush.triggers",
    "flush_stall_cycles": "core.flush.stall_cycles",
    "squashed_mispredict": "core.squash.mispredict",
    "squashed_runahead_flush": "core.squash.runahead_flush",
    "squashed_flush_mechanism": "core.squash.flush_mechanism",
    "demand_llc_misses": "core.commit.llc_missing_loads",
    "mlp_sum": "core.mlp.sum",
    "mlp_cycles": "core.mlp.busy_cycles",
    "branch_resolved": "core.branch.resolved",
    "branch_mispredicted": "core.branch.mispredicted",
    "fast_forwarded_cycles": "core.clock.fast_forwarded",
    "ra_trigger_rob_sum": "core.runahead.trigger_rob_sum",
    "ra_stall_iq": "core.runahead.stall_iq",
    "ra_stall_prdq": "core.runahead.stall_prdq",
    "ra_stall_resume": "core.runahead.stall_resume",
    "ra_stall_diverged": "core.runahead.stall_diverged",
}


class SimStats:
    """Raw counters accumulated during simulation (see ``SimResult``).

    Implemented on top of the hierarchical stats registry: every counter
    is a plain int attribute (so the per-cycle hot path pays nothing) and
    is *bound* into :attr:`registry` under its dotted name, where the
    telemetry layer reads, deltas and dumps it.
    """

    def __init__(self, registry: Optional[StatsRegistry] = None) -> None:
        self.committed = 0
        self.cycles = 0
        self.runahead_triggers = 0
        self.runahead_cycles = 0
        self.runahead_uops_examined = 0
        self.runahead_uops_executed = 0
        self.runahead_prefetches = 0
        self.flush_triggers = 0
        self.flush_stall_cycles = 0
        self.squashed_mispredict = 0
        self.squashed_runahead_flush = 0
        self.squashed_flush_mechanism = 0
        self.demand_llc_misses = 0       # correct-path, normal mode
        self.mlp_sum = 0                 # Σ outstanding misses over busy cycles
        self.mlp_cycles = 0              # cycles with ≥1 outstanding miss
        self.branch_resolved = 0
        self.branch_mispredicted = 0
        self.fast_forwarded_cycles = 0
        #: Σ ROB occupancy at runahead entry (÷ triggers = mean occupancy;
        #: early-start enters with a less-full window than late-start)
        self.ra_trigger_rob_sum = 0
        # Runahead-advance stall diagnostics (cycles lost per cause)
        self.ra_stall_iq = 0
        self.ra_stall_prdq = 0
        self.ra_stall_resume = 0
        self.ra_stall_diverged = 0

        self.registry = registry if registry is not None else StatsRegistry()
        for attr, name in STAT_NAMES.items():
            self.registry.scalar(name, getter=partial(getattr, self, attr))

    def snapshot(self) -> Dict[str, int]:
        return {k: v for k, v in self.__dict__.items()
                if isinstance(v, int)}


class OutOfOrderCore:
    """Cycle-level OoO core simulator.

    Args:
        machine: full machine configuration.
        trace: rewindable workload trace.
        policy: runahead/flush policy (default: plain OoO baseline).
        seed: seed for the wrong-path synthesiser.
    """

    def __init__(
        self,
        machine: MachineParams,
        trace: Trace,
        policy: RunaheadPolicy = OOO,
        seed: int = 0,
        record_ace_intervals: bool = False,
        observer=None,
        telemetry=None,
    ):
        """``observer``, when provided, is called as
        ``observer(event, cycle, **data)`` on notable pipeline events:
        ``commit`` (uop), ``squash`` (uops, cause), ``runahead_enter`` /
        ``runahead_exit`` (blocking), ``flush_enter`` / ``flush_exit``,
        ``mispredict`` (branch), ``sst_hit`` / ``sst_train`` (pc) and
        ``runahead_prefetch`` (pc, level). Purely observational — the
        simulation is bit-identical with or without one.

        ``telemetry``, a :class:`repro.obs.Telemetry`, attaches itself to
        the observer hook, the memory hierarchy and the run loop; the
        core's :attr:`registry` carries its hierarchical stats whether or
        not a telemetry object is attached."""
        self.machine = machine
        self.trace = trace
        self.policy = policy
        p = machine.core
        self.width = p.width

        self.mem = MemoryHierarchy(machine)
        self.predictor = TageScL()
        self.btb = Btb()
        self.frontend = FrontEnd(p.width, p.frontend_depth)
        self.wrong_path_src = WrongPathSource(seed)
        self.rob = ReorderBuffer(p.rob_size, p.head_timer_init)
        self.iq = IssueQueue(p.iq_size)
        self.lsq = LoadStoreQueues(p.lq_size, p.sq_size)
        self.regs = RegisterFiles(p.int_regs, p.fp_regs, p.arch_regs)
        self.fus = FuPool(p)
        self.sst = StallingSliceTable(p.sst_size)
        self.prdq = Prdq(p.prdq_size, self.regs)
        self.ace = AceAccountant(self.fus.exec_cycles,
                                 record_intervals=record_ace_intervals)
        self.observer = observer
        self.telemetry = None
        self.stats = SimStats()
        self.registry = self.stats.registry
        self._register_component_stats()

        self.cycle = 0
        self.mode = Mode.NORMAL
        self._seq = 0
        self._ev_count = 0
        self.fetch_idx = 0          # next correct-path static uop to fetch
        self.next_dispatch_idx = 0  # next correct-path static uop to dispatch
        self.pending_branch: Optional[DynUop] = None
        self.inflight: Dict[int, DynUop] = {}
        self._events: List[Tuple[int, int, int, object]] = []
        self._out_misses = 0

        # Runahead interval state
        self.blocking: Optional[DynUop] = None
        self._ra_interval = 0
        self._ra_fetch_idx = 0
        self._ra_resume = 0
        self._ra_entry_cycle = 0
        self._ra_diverged = False
        self._ra_hist_ckpt = 0
        self._ra_inv: Set[int] = set()
        self._ra_ready: Dict[int, int] = {}
        self._ra_iq_releases: List[int] = []  # min-heap of release cycles
        self._ra_vec_fill = 0  # vector-runahead group fill counter

        # Attribution window bookkeeping (Figure 5)
        self._hb_seq = -1
        self._fs_seq = -1
        #: last cycle dispatch was blocked by a rename-register shortage —
        #: treated as a full-window stall for the late runahead trigger
        #: (the window cannot extend further, exactly like a full ROB)
        self._regstall_cycle = -2

        lat = machine.l1d.latency
        self._est_latency = {
            "l1": lat,
            "l2": lat + machine.l2.latency,
            "l3": lat + machine.l2.latency + machine.l3.latency,
            "dram": lat + machine.l2.latency + machine.l3.latency
            + machine.dram.row_miss_latency + 60,
        }

        if telemetry is not None:
            telemetry.attach(self)

    # ---------------------------------------------------------- registry

    def _register_component_stats(self) -> None:
        """Bind memory/ACE/machine stats and derived formulas into the
        hierarchical registry (``SimStats`` binds its own counters)."""
        reg = self.registry
        mem = self.mem
        for attr, name in (
            ("demand_accesses", "mem.l1d.demand_accesses"),
            ("demand_llc_misses", "mem.llc.demand_misses"),
            ("writebacks_to_dram", "mem.dram.writebacks"),
            ("rejected_mshr_full", "mem.mshr.rejected_full"),
            ("prefetches_issued", "mem.prefetcher.issued"),
        ):
            reg.scalar(name, getter=partial(getattr, mem, attr))
        ace = self.ace
        for s in ace.bits:
            reg.scalar(f"ace.{s}.bits",
                       getter=partial(ace.bits.__getitem__, s))
        reg.scalar("ace.total", getter=lambda a=ace: a.total)
        reg.scalar("ace.head_blocked.bits",
                   getter=partial(getattr, ace, "bits_in_head_blocked"))
        reg.scalar("ace.full_stall.bits",
                   getter=partial(getattr, ace, "bits_in_full_stall"))
        reg.scalar("ace.committed_charged",
                   getter=partial(getattr, ace, "committed_charged"))
        total_bits = self.machine.core.total_bits
        reg.scalar("machine.total_bits", getter=lambda n=total_bits: n,
                   const=True)

        def _ratio(a, b, scale=1.0):
            def fn(v):
                return scale * v[a] / v[b] if v[b] else 0.0
            return fn

        reg.formula("core.ipc",
                    _ratio("core.commit.committed", "core.clock.cycles"),
                    desc="committed instructions per cycle")
        reg.formula("core.mpki",
                    _ratio("core.commit.llc_missing_loads",
                           "core.commit.committed", 1000.0),
                    desc="LLC misses per kilo-instruction")
        reg.formula("core.mlp.avg",
                    _ratio("core.mlp.sum", "core.mlp.busy_cycles"),
                    desc="mean outstanding misses over busy cycles")

        def _avf(v):
            denom = v["machine.total_bits"] * v["core.clock.cycles"]
            return v["ace.total"] / denom if denom else 0.0

        reg.formula("ace.avf", _avf, desc="ABC / (N x T)")
        # Occupancy/latency distributions: recorded by the telemetry layer
        # (interval sampler / memory hook); always registered so names are
        # stable whether or not telemetry is attached.
        for name in ("core.rob.occupancy", "core.iq.occupancy",
                     "core.lq.occupancy", "core.sq.occupancy"):
            reg.distribution(name, bucket_size=8)
        reg.distribution("mem.llc.miss_latency", bucket_size=50)

    # ================================================================ run

    def run(self, max_instructions: int) -> None:
        """Simulate until ``max_instructions`` have committed."""
        target = self.stats.committed + max_instructions
        telemetry = self.telemetry
        while self.stats.committed < target:
            if self._step():
                self.cycle += 1
            else:
                self._fast_forward()
            self.stats.cycles = self.cycle
            if telemetry is not None:
                telemetry.tick(self)

    # =============================================================== step

    def _step(self) -> int:
        """Simulate the current cycle; returns activity count (0 = idle).

        Does *not* advance ``self.cycle`` — :meth:`run` owns the clock so
        that idle stretches can fast-forward.
        """
        c = self.cycle
        progress = self._process_events(c)
        progress += self._do_commit(c)
        self.rob.advance_timer(1)
        progress += self._controller(c)
        progress += self._do_issue(c)
        progress += self._do_dispatch(c)
        progress += self._do_fetch(c)
        if self._out_misses > 0:
            self.stats.mlp_sum += self._out_misses
            self.stats.mlp_cycles += 1
        if self.mode == Mode.FLUSH_STALL:
            self.stats.flush_stall_cycles += 1
        return progress

    def _fast_forward(self) -> None:
        """Jump from an idle cycle to the next cycle anything can happen.

        The current cycle has already been simulated (and accounted) by
        :meth:`_step`; candidates are therefore strictly in the future.
        """
        c = self.cycle
        candidates: List[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        arrival = self.frontend.next_arrival()
        if arrival is not None and self.mode == Mode.NORMAL:
            candidates.append(arrival)
        if self.mode == Mode.NORMAL and len(self.frontend) == 0 \
                and self.frontend.resume_cycle > c:
            candidates.append(self.frontend.resume_cycle)
        if self.mode == Mode.RUNAHEAD:
            if self._ra_resume > c:
                candidates.append(self._ra_resume)
            if self._ra_iq_releases and self._ra_iq_releases[0] > c:
                candidates.append(self._ra_iq_releases[0])
            nxt = self.prdq.next_release()
            if nxt is not None and nxt > c:
                candidates.append(nxt)
        head = self.rob.head
        if (self.mode == Mode.NORMAL and head is not None
                and not self.rob.head_timer_expired):
            candidates.append(c + max(1, self.rob.timer_remaining))
        candidates = [x for x in candidates if x > c]
        if not candidates:
            raise RuntimeError(
                f"simulator deadlock at cycle {c} "
                f"(mode={self.mode.name}, rob={len(self.rob)}, "
                f"iq={len(self.iq)}, committed={self.stats.committed})"
            )
        target = min(candidates)
        # Cycle c itself was accounted by _step; account the skipped span
        # (c+1 .. target-1) here, then land on `target`.
        span = target - c - 1
        if span > 0:
            self.rob.advance_timer(span)
            if self._out_misses > 0:
                self.stats.mlp_sum += self._out_misses * span
                self.stats.mlp_cycles += span
            if self.mode == Mode.FLUSH_STALL:
                self.stats.flush_stall_cycles += span
            self.stats.fast_forwarded_cycles += span
        self.cycle = target

    # ============================================================= events

    def _schedule(self, cycle: int, kind: int, payload: object) -> None:
        self._ev_count += 1
        heapq.heappush(self._events, (cycle, self._ev_count, kind, payload))

    def _process_events(self, c: int) -> int:
        n = 0
        ev = self._events
        while ev and ev[0][0] <= c:
            when, _, kind, payload = heapq.heappop(ev)
            n += 1
            if kind == _EV_WB:
                self._writeback(payload, when)
            elif kind == _EV_RA_ISSUE:
                self._ra_memory_issue(payload, when)
            else:  # _EV_RA_DONE
                self._out_misses -= 1
        return n

    def _writeback(self, uop: DynUop, when: int) -> None:
        if uop.counted_miss:
            self._out_misses -= 1
        if uop.squashed:
            return
        uop.completed = True
        uop.done_cycle = when
        for consumer in uop.consumers:
            consumer.pending -= 1
            self.iq.wakeup(consumer)
        uop.consumers = []
        st = uop.static
        if st.cls == _LOAD and uop.mem_level == "dram" and not uop.wrong_path:
            self._train_sst(st.idx, st.pc)
        if st.cls == _BRANCH and not uop.wrong_path:
            self.stats.branch_resolved += 1
            if uop.mispredicted:
                self._resolve_mispredict(uop, when)

    def _train_sst(self, idx: int, pc: int) -> None:
        """Insert the LLC-missing load's backward slice into the SST."""
        if self.sst.lookup(pc):
            return
        trace = self.trace
        pcs = []
        for i in trace.slice_producers(idx):
            producer = trace.get(i)
            if producer is not None:
                pcs.append(producer.pc)
        pcs.append(pc)
        self.sst.train_slice(pcs)
        if self.observer:
            self.observer("sst_train", self.cycle, pc=pc,
                          slice_len=len(pcs))

    # ======================================================== mispredicts

    def _resolve_mispredict(self, branch: DynUop, when: int) -> None:
        """A correct-path mispredicted branch resolved: recover."""
        self.stats.branch_mispredicted += 1
        if self.observer:
            self.observer("mispredict", when, branch=branch)
        squashed = self.rob.squash_younger(branch.seq)
        self._release_squashed(squashed, SquashCause.BRANCH_MISPREDICT)
        self.stats.squashed_mispredict += len(squashed)
        # Undispatched queued uops are all younger: drop them.
        self.frontend.redirect(when)
        self.fetch_idx = branch.static.idx + 1
        self.next_dispatch_idx = branch.static.idx + 1
        if self.pending_branch is branch or (
                self.pending_branch is not None and self.pending_branch.squashed):
            self.pending_branch = None
        if self.mode == Mode.RUNAHEAD:
            # Runahead was chasing the wrong path; re-steer the cursor.
            self._ra_diverged = False
            self._ra_fetch_idx = branch.static.idx + 1
            self._ra_resume = max(self._ra_resume,
                                  when + self.machine.core.frontend_depth)

    def _release_squashed(self, uops: List[DynUop], cause: SquashCause) -> None:
        if self.observer and uops:
            self.observer("squash", self.cycle, uops=uops, cause=cause)
        inflight = self.inflight
        for u in uops:
            u.squashed = True
            u.squash_cause = int(cause)
            self.lsq.release(u)
            self.regs.release(u)
            if inflight.get(u.static.idx) is u:
                del inflight[u.static.idx]
        self.iq.squash(lambda x: x.squashed)

    # ============================================================= commit

    def _do_commit(self, c: int) -> int:
        if self.mode != Mode.NORMAL:
            return 0
        n = 0
        rob = self.rob
        while n < self.width:
            head = rob.head
            if head is None or not head.completed:
                break
            rob.pop_head()
            if head.wrong_path:
                raise RuntimeError("wrong-path uop reached commit")
            head.commit_cycle = c
            self.lsq.release(head)
            self.regs.release(head)
            self.ace.charge_commit(head)
            st = head.static
            if head.llc_miss and st.cls == _LOAD:
                # MPKI counts committed loads whose instance missed the LLC.
                self.stats.demand_llc_misses += 1
            if st.cls == _STORE:
                # Write-allocate at retirement; never blocks commit.
                self.mem.access(st.addr, c, is_write=True, pc=st.pc)
            if self.inflight.get(st.idx) is head:
                del self.inflight[st.idx]
            if self.observer:
                self.observer("commit", c, uop=head)
            self.stats.committed += 1
            n += 1
        return n

    # ========================================================= controller

    def _controller(self, c: int) -> int:
        self._update_windows(c)
        mode = self.mode
        if mode == Mode.NORMAL:
            return self._check_triggers(c)
        if mode == Mode.FLUSH_STALL:
            blocking = self.blocking
            if blocking is not None and blocking.completed:
                # Data returned: head will commit; refetch the rest.
                self.mode = Mode.NORMAL
                self.blocking = None
                self.fetch_idx = self.next_dispatch_idx
                self.frontend.resume_cycle = c + self.machine.core.frontend_depth
                if self.observer:
                    self.observer("flush_exit", c)
                return 1
            return 0
        # Mode.RUNAHEAD
        blocking = self.blocking
        if blocking is not None and blocking.completed:
            self._exit_runahead(c)
            return 1
        return self._runahead_advance(c)

    def _update_windows(self, c: int) -> None:
        """Maintain the Figure 5 attribution windows."""
        head = self.rob.head
        ace = self.ace
        blocked = (
            head is not None
            and head.static.cls == _LOAD
            and head.llc_miss
            and not head.completed
            and not head.wrong_path
        )
        if blocked:
            if ace.head_blocked.is_open and self._hb_seq != head.seq:
                ace.head_blocked.close(c)
            if not ace.head_blocked.is_open:
                ace.head_blocked.open(c)
                self._hb_seq = head.seq
            if ace.full_stall.is_open and self._fs_seq != head.seq:
                ace.full_stall.close(c)
            # "Full-window stall": the window cannot grow — ROB full or
            # renaming out of registers (same condition as the late
            # runahead trigger).
            window_stalled = self.rob.full or self._regstall_cycle >= c - 1
            if not ace.full_stall.is_open and window_stalled:
                ace.full_stall.open(c)
                self._fs_seq = head.seq
        else:
            if ace.head_blocked.is_open:
                ace.head_blocked.close(c)
            if ace.full_stall.is_open:
                ace.full_stall.close(c)

    def _head_blocked_by_miss(self) -> Optional[DynUop]:
        head = self.rob.head
        if (
            head is not None
            and head.static.cls == _LOAD
            and not head.completed
            and not head.wrong_path
            and head.mem_issue_cycle >= 0
            and head.llc_miss
        ):
            return head
        return None

    def _check_triggers(self, c: int) -> int:
        policy = self.policy
        if policy.kind in ("ooo", "throttle"):
            return 0  # throttling acts in dispatch, not via mode changes
        head = self._head_blocked_by_miss()
        if head is None:
            return 0
        if policy.kind == "flush":
            if not self.rob.head_timer_expired:
                return 0
            self._enter_flush_stall(head, c)
            return 1
        # Runahead variants
        if policy.early:
            if not self.rob.head_timer_expired:
                return 0
        else:
            # Full-window stall: the ROB is full, or renaming ran out of
            # physical registers (the window cannot grow either way). An
            # IQ-full stall does NOT count — that is precisely the case
            # the late-triggering variants miss (Section II-C).
            if not (self.rob.full or self._regstall_cycle >= c - 1):
                return 0
            if (policy.name == "TR"
                    and c - head.mem_issue_cycle
                    >= self.machine.core.tr_recency_cycles):
                return 0
        self._enter_runahead(head, c)
        return 1

    def _enter_flush_stall(self, head: DynUop, c: int) -> None:
        squashed = self.rob.squash_younger(head.seq)
        self._release_squashed(squashed, SquashCause.FLUSH_MECHANISM)
        self.stats.squashed_flush_mechanism += len(squashed)
        self.stats.flush_triggers += 1
        self.frontend.redirect(c, penalty=1 << 60)  # gated until data returns
        if self.pending_branch is not None and (
                self.pending_branch.squashed
                or self.pending_branch.dispatch_cycle < 0):
            self.pending_branch = None
        self.next_dispatch_idx = head.static.idx + 1
        self.blocking = head
        self.mode = Mode.FLUSH_STALL
        if self.observer:
            self.observer("flush_enter", c, blocking=head)

    # =========================================================== runahead

    def _enter_runahead(self, head: DynUop, c: int) -> None:
        self.stats.runahead_triggers += 1
        self.stats.ra_trigger_rob_sum += len(self.rob)
        self.blocking = head
        self.mode = Mode.RUNAHEAD
        self._ra_interval += 1
        self._ra_entry_cycle = c
        self._ra_resume = c + 1  # checkpoint RAT, redirect front-end
        # Seed the INV set with everything whose value cannot materialise
        # during the interval: the blocking load itself plus every
        # in-flight, incomplete instruction (transitively) dependent on it.
        # Without this, a trace-driven simulator would leak statically
        # known addresses of data-dependent loads to the prefetcher —
        # letting runahead "prefetch" pointer chains no real runahead can.
        blocked = {head.static.idx}
        for u in self.rob:
            if u is head or u.wrong_path or u.completed:
                continue
            for src in u.static.srcs:
                if src in blocked:
                    blocked.add(u.static.idx)
                    break
        self._ra_inv = blocked
        self._ra_ready = {}
        self._ra_vec_fill = 0
        self._ra_diverged = self.pending_branch is not None
        self._ra_fetch_idx = self.next_dispatch_idx
        #: branch history is checkpointed with the RAT and restored at exit
        self._ra_hist_ckpt = self.predictor.hist
        if self.observer:
            self.observer("runahead_enter", c, blocking=head)
        # The front-end is reused by runahead: queued uops are dropped and
        # will be refetched after exit.
        if self.pending_branch is not None and \
                self.pending_branch.dispatch_cycle < 0:
            self.pending_branch = None
            self._ra_diverged = False
        self.frontend.redirect(c, penalty=1 << 60)  # normal fetch off

    def _runahead_advance(self, c: int) -> int:
        if c < self._ra_resume:
            self.stats.ra_stall_resume += 1
            return 0
        if self._ra_diverged:
            self.stats.ra_stall_diverged += 1
            return 0
        self._drain_ra_iq(c)
        self.prdq.drain(c)
        policy = self.policy
        trace = self.trace
        budget = self.width
        progress = 0
        #: runahead-buffer replay skips non-chain uops for free, but the
        #: scan per cycle is still bounded (buffer index hardware).
        free_skips = 16 * self.width if policy.buffer else 0
        while budget > 0:
            st = trace.get(self._ra_fetch_idx)
            if st is None:
                break
            self.stats.runahead_uops_examined += 1
            idx = st.idx
            inv = False
            for src in st.srcs:
                if src in self._ra_inv:
                    inv = True
                    break
            if inv:
                self._ra_inv.add(idx)
            cls = st.cls
            if cls == _BRANCH and policy.buffer:
                # The runahead buffer replays a straight chain: it cannot
                # re-steer. Correctly-predicted branches are invisible to
                # it; a mispredicted one ends the replay.
                predicted = self.predictor.predict(st.pc)
                self.predictor.shift_history(predicted)
                if predicted != st.taken:
                    self._ra_diverged = True
                    self._ra_fetch_idx += 1
                    return progress + 1
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            if cls == _BRANCH:
                if inv:
                    # Miss-dependent branch: cannot execute, follow the
                    # prediction (speculative history shift, no training).
                    predicted = self.predictor.predict(st.pc)
                    self.predictor.shift_history(predicted)
                    if predicted != st.taken:
                        # Went the wrong way and cannot be repaired: the
                        # rest of the interval is diverged.
                        self._ra_diverged = True
                        self._ra_fetch_idx += 1
                        return progress + 1
                else:
                    # Runahead executes valid branches: predictor trains
                    # and history advances, exactly like normal fetch (a
                    # known side benefit of runahead execution).
                    predicted = self.predictor.observe(st.pc, st.taken)
                    if predicted != st.taken:
                        # Resolve and re-steer the cursor.
                        self._ra_resume = c + self.machine.core.frontend_depth
                        self._ra_fetch_idx += 1
                        return progress + 1
                self._ra_fetch_idx += 1
                budget -= 1
                progress += 1
                continue
            execute = not inv and (not policy.lean or self._sst_hit(st))
            if not execute:
                self._ra_fetch_idx += 1
                progress += 1
                if free_skips > 0:
                    # Buffer replay: non-chain uops never enter the engine.
                    free_skips -= 1
                else:
                    budget -= 1
                continue
            # Vector runahead: consecutive slice instances share one
            # issue/IQ slot per `vector`-wide group.
            vector_free = False
            if policy.vector:
                vector_free = (self._ra_vec_fill % policy.vector) != 0
                self._ra_vec_fill += 1
            # Acquire runahead resources: a free IQ entry, and a register
            # via the PRDQ when the uop writes a destination.
            if not vector_free and self.iq.free <= 0:
                self.stats.ra_stall_iq += 1
                break
            ready = c
            for src in st.srcs:
                t = self._ra_ready.get(src)
                if t is None:
                    producer = self.inflight.get(src)
                    if producer is not None and producer.completed:
                        t = producer.done_cycle
                    else:
                        t = c
                if t > ready:
                    ready = t
            ready += self.fus.latency(cls)
            if st.has_dest and not vector_free:
                if not self.prdq.can_allocate(st.is_fp):
                    self.stats.ra_stall_prdq += 1
                    break
                self.prdq.allocate(st.is_fp, ready)
            if not vector_free:
                self.iq.runahead_used += 1
                heapq.heappush(self._ra_iq_releases, ready)
            self.stats.runahead_uops_executed += 1
            if cls == _LOAD or cls == _STORE:
                self._schedule(max(ready, c + 1), _EV_RA_ISSUE,
                               (self._ra_interval, st, 0))
                est = self._est_latency[self.mem.probe_level(st.addr)]
                self._ra_ready[idx] = ready + est
            else:
                self._ra_ready[idx] = ready
            self._ra_fetch_idx += 1
            if vector_free:
                pass  # batched into the group leader's slot
            elif free_skips > 0 and not execute:
                free_skips -= 1
            else:
                budget -= 1
            progress += 1
        return progress

    def _sst_hit(self, st) -> bool:
        hit = self.sst.lookup(st.pc)
        if hit and self.observer:
            self.observer("sst_hit", self.cycle, pc=st.pc)
        return hit

    def _drain_ra_iq(self, c: int) -> None:
        rel = self._ra_iq_releases
        while rel and rel[0] <= c:
            heapq.heappop(rel)
            if self.iq.runahead_used > 0:
                self.iq.runahead_used -= 1

    def _ra_memory_issue(self, payload, when: int) -> None:
        interval, st, retry = payload
        if interval != self._ra_interval or self.mode != Mode.RUNAHEAD:
            return
        result = self.mem.access(st.addr, when, is_write=(st.cls == _STORE),
                                 pc=st.pc)
        if result is None:
            # MSHRs full: retry with backoff — runahead keeps the MSHRs
            # saturated by design, so an eager retry loop would spin.
            backoff = min(32, 4 << min(retry, 3))
            self._schedule(when + backoff, _EV_RA_ISSUE,
                           (interval, st, retry + 1))
            return
        self.stats.runahead_prefetches += 1
        self._ra_ready[st.idx] = result.done_cycle
        if self.observer:
            self.observer("runahead_prefetch", when, pc=st.pc,
                          level=result.level)
        if result.level == "dram":
            if st.cls == _LOAD and not self.sst.lookup(st.pc):
                self._train_sst(st.idx, st.pc)
            if not result.merged:
                self._out_misses += 1
                self._schedule(result.done_cycle, _EV_RA_DONE, None)

    def _exit_runahead(self, c: int) -> None:
        self.stats.runahead_cycles += c - self._ra_entry_cycle
        depth = self.machine.core.frontend_depth
        if self.policy.flush_at_exit:
            squashed = self.rob.squash_all()
            self._release_squashed(squashed, SquashCause.RUNAHEAD_EXIT_FLUSH)
            self.stats.squashed_runahead_flush += len(squashed)
            blocking_idx = self.blocking.static.idx
            self.fetch_idx = blocking_idx
            self.next_dispatch_idx = blocking_idx
            self.pending_branch = None
            # RAT restore + full refetch from the blocking load.
            self.frontend.redirect(c, penalty=depth)
        else:
            # PRE: the frozen window is kept; refetch only beyond it.
            self.fetch_idx = self.next_dispatch_idx
            self.frontend.redirect(c, penalty=depth)
            if self.pending_branch is not None and \
                    self.pending_branch.dispatch_cycle < 0:
                self.pending_branch = None
        self.iq.runahead_used = 0
        self._ra_iq_releases = []
        self.prdq.flush()
        self.predictor.hist = self._ra_hist_ckpt
        self._ra_ready = {}
        self._ra_inv = set()
        self._ra_diverged = False
        if self.observer:
            self.observer("runahead_exit", c, blocking=self.blocking)
        self.blocking = None
        self.mode = Mode.NORMAL

    # ============================================================== issue

    def _do_issue(self, c: int) -> int:
        iq = self.iq
        attempts = iq.ready_count
        if attempts == 0:
            return 0
        issued = 0
        blocked: List[DynUop] = []
        fus = self.fus
        while attempts > 0 and issued < self.width and iq.ready_count > 0:
            attempts -= 1
            u = iq.pop_ready()
            st = u.static
            cls = st.cls
            if not fus.can_issue(cls, c):
                blocked.append(u)
                continue
            if cls == _LOAD:
                result = self.mem.access(st.addr, c, pc=st.pc)
                if result is None:  # MSHRs full
                    blocked.append(u)
                    continue
                fus.issue(cls, c)  # AGU slot
                done = result.done_cycle
                u.mem_level = result.level
                u.mem_issue_cycle = c
                if result.level == "dram":
                    u.llc_miss = True
                    # MLP counts useful (correct-path) outstanding misses;
                    # wrong-path misses still consume MSHRs and bandwidth.
                    if not result.merged and not u.wrong_path:
                        u.counted_miss = True
                        self._out_misses += 1
            elif cls == _STORE:
                fus.issue(cls, c)
                u.mem_issue_cycle = c
                done = c + 1  # address/data capture; write happens at commit
            else:
                done = fus.issue(cls, c)
            u.issue_cycle = c
            self._schedule(done, _EV_WB, u)
            issued += 1
        for u in reversed(blocked):
            iq.requeue(u)
        return issued

    # =========================================================== dispatch

    def _dispatch_budget(self, c: int) -> int:
        """Per-cycle dispatch width; the THROTTLE policy rate-limits it to
        one uop every 4 cycles while an LLC miss blocks the head."""
        if self.policy.kind == "throttle" \
                and self._head_blocked_by_miss() is not None:
            return 1 if (c & 3) == 0 else 0
        return self.width

    def _do_dispatch(self, c: int) -> int:
        if self.mode != Mode.NORMAL:
            return 0
        n = 0
        frontend = self.frontend
        while n < self._dispatch_budget(c):
            u = frontend.peek_ready(c)
            if u is None:
                break
            if not self.regs.can_allocate(u):
                self._regstall_cycle = c
                break
            if self.rob.full or not self.lsq.can_allocate(u):
                break
            if u.static.cls != _NOP and self.iq.full:
                break
            frontend.pop()
            u.dispatch_cycle = c
            self.rob.push(u)
            self.lsq.allocate(u)
            self.regs.allocate(u)
            if u.static.cls == _NOP:
                u.completed = True
                u.done_cycle = c
            else:
                for src in u.static.srcs:
                    producer = self.inflight.get(src)
                    if producer is not None and not producer.completed \
                            and not producer.squashed:
                        u.pending += 1
                        producer.consumers.append(u)
                self.iq.insert(u)
            if not u.wrong_path:
                self.inflight[u.static.idx] = u
                self.next_dispatch_idx = u.static.idx + 1
            n += 1
        return n

    # ============================================================== fetch

    def _do_fetch(self, c: int) -> int:
        if self.mode != Mode.NORMAL:
            return 0
        frontend = self.frontend
        n = 0
        while n < self.width and frontend.can_fetch(c):
            if self.pending_branch is not None:
                st = self.wrong_path_src.next_uop(self.fetch_idx)
                u = DynUop(st, self._next_seq(), wrong_path=True)
            else:
                st = self.trace.get(self.fetch_idx)
                if st is None:
                    break
                u = DynUop(st, self._next_seq())
                if st.cls == _BRANCH:
                    predicted = self.predictor.observe(st.pc, st.taken)
                    target = self.btb.lookup(st.pc)
                    self.btb.update(st.pc, st.target)
                    if st.taken and target < 0:
                        # BTB miss on a taken branch: fetch cannot follow.
                        predicted = not st.taken
                    u.predicted_taken = predicted
                    if predicted != st.taken:
                        self.pending_branch = u
                self.fetch_idx += 1
            frontend.push(u, c)
            n += 1
        return n

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ============================================================ results

    @property
    def ipc(self) -> float:
        return self.stats.committed / self.cycle if self.cycle else 0.0

    @property
    def mlp(self) -> float:
        s = self.stats
        return s.mlp_sum / s.mlp_cycles if s.mlp_cycles else 0.0

    @property
    def mpki(self) -> float:
        s = self.stats
        return 1000.0 * s.demand_llc_misses / s.committed if s.committed else 0.0
