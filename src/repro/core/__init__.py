"""The paper's contribution: the OoO core with runahead mechanisms.

Public surface:

- :class:`OutOfOrderCore` — the cycle-level simulator.
- :class:`RunaheadPolicy` and the named policy constants (OOO, FLUSH, TR,
  TR_EARLY, PRE, PRE_EARLY, RAR_LATE, RAR) spanning the paper's Table IV
  design space.
"""

from repro.core.core import OutOfOrderCore
from repro.core.fu import FuPool
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LoadStoreQueues
from repro.core.prdq import Prdq
from repro.core.regfile import RegisterFiles
from repro.core.rob import ReorderBuffer
from repro.core.runahead import (
    ALL_POLICIES,
    FLUSH,
    OOO,
    PRE,
    PRE_EARLY,
    RAR,
    RAR_LATE,
    TR,
    TR_EARLY,
    RunaheadPolicy,
    get_policy,
    policy_names,
)
from repro.core.sst import StallingSliceTable

__all__ = [
    "OutOfOrderCore",
    "ReorderBuffer",
    "IssueQueue",
    "LoadStoreQueues",
    "RegisterFiles",
    "FuPool",
    "StallingSliceTable",
    "Prdq",
    "RunaheadPolicy",
    "OOO",
    "FLUSH",
    "TR",
    "TR_EARLY",
    "PRE",
    "PRE_EARLY",
    "RAR_LATE",
    "RAR",
    "ALL_POLICIES",
    "get_policy",
    "policy_names",
]
