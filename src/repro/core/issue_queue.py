"""Issue queue with event-driven ready-list wakeup/select.

Dispatch inserts uops with a pending-producer count; completion events
decrement it (wakeup) and move zero-pending uops onto the ready lists,
from which select pulls oldest-first each cycle. Occupancy counts both
waiting and ready-but-unissued uops — an IQ entry is released at *issue*,
which is also the end of its ACE-vulnerable interval.

The ready set is kept as one FIFO deque *per FU class*, with a global
monotonically increasing wakeup stamp (``DynUop.ready_ord``) assigned as
each uop becomes ready. Selection takes the smallest stamp among the
class heads, which reproduces exactly the single-FIFO age order the
scan-based queue used — but lets the select loop skip a whole class in
O(1) once its functional units are exhausted for the cycle, instead of
popping and requeueing every ready uop of that class. The
``iq-ready-coherence`` invariant (``repro.validate``) recomputes
readiness from scratch under ``--validate`` to keep the incremental
lists honest.
"""

from collections import deque
from typing import Deque, List

from repro.common.enums import FU_CLASS
from repro.isa.uop import DynUop

#: FU classes are a dense prefix of UopClass (INT_ADD..FP_DIV).
NUM_FU_CLASSES = max(FU_CLASS) + 1


class IssueQueue:
    def __init__(self, size: int):
        self.size = size
        self._waiting: set = set()
        #: per-FU-class FIFO of ready uops, each stamped with ``ready_ord``
        self._ready: List[Deque[DynUop]] = [deque()
                                            for _ in range(NUM_FU_CLASSES)]
        self._nready = 0
        #: bitmask of FU classes whose ready FIFO is non-empty — lets
        #: select iterate only the populated classes
        self._nonempty = 0
        #: next global wakeup-order stamp
        self._next_ord = 0
        #: extra entries claimed by runahead slice uops (lean runahead uses
        #: the *free* IQ entries, per PRE)
        self.runahead_used = 0

    def __len__(self) -> int:
        return len(self._waiting) + self._nready + self.runahead_used

    @property
    def full(self) -> bool:
        return len(self) >= self.size

    @property
    def free(self) -> int:
        return max(0, self.size - len(self))

    def _push_ready(self, uop: DynUop) -> None:
        uop.ready_ord = self._next_ord
        self._next_ord += 1
        fc = uop.static.fu_cls
        self._ready[fc].append(uop)
        self._nonempty |= 1 << fc
        self._nready += 1

    def insert(self, uop: DynUop) -> None:
        if len(self._waiting) + self._nready + self.runahead_used \
                >= self.size:
            raise OverflowError("IQ full")
        if uop.pending == 0:
            self._push_ready(uop)
        else:
            self._waiting.add(uop)

    def wakeup(self, uop: DynUop) -> None:
        """Producer completed: move a waiting uop with no more pending
        producers onto its class's ready list."""
        if uop.pending == 0 and uop in self._waiting:
            self._waiting.discard(uop)
            self._push_ready(uop)

    def pop_ready(self) -> DynUop:
        """Remove and return the oldest-woken ready uop (smallest
        ``ready_ord`` among the per-class FIFO heads)."""
        best: DynUop = None  # type: ignore[assignment]
        best_cls = -1
        for cls, dq in enumerate(self._ready):
            if dq:
                head = dq[0]
                if best is None or head.ready_ord < best.ready_ord:
                    best = head
                    best_cls = cls
        if best is None:
            raise IndexError("pop from an empty ready list")
        dq = self._ready[best_cls]
        dq.popleft()
        if not dq:
            self._nonempty &= ~(1 << best_cls)
        self._nready -= 1
        return best

    def requeue(self, uop: DynUop) -> None:
        """Put a selected uop back (structural hazard: FU/MSHR busy).

        The uop keeps its original ``ready_ord``, so it stays at the front
        of its class FIFO and ahead of anything woken later."""
        fc = uop.static.fu_cls
        self._ready[fc].appendleft(uop)
        self._nonempty |= 1 << fc
        self._nready += 1

    @property
    def ready_count(self) -> int:
        return self._nready

    def squash(self, pred) -> int:
        """Drop all queued uops matching ``pred``; returns count dropped."""
        dropped = [u for u in self._waiting if pred(u)]
        for u in dropped:
            self._waiting.discard(u)
        n = len(dropped)
        for cls, dq in enumerate(self._ready):
            kept = [u for u in dq if not pred(u)]
            removed = len(dq) - len(kept)
            if removed:
                n += removed
                self._nready -= removed
                self._ready[cls] = deque(kept)
                if not kept:
                    self._nonempty &= ~(1 << cls)
        return n

    def clear(self) -> None:
        self._waiting.clear()
        for dq in self._ready:
            dq.clear()
        self._nready = 0
        self._nonempty = 0
        self.runahead_used = 0
