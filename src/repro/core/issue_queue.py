"""Issue queue with ready-list wakeup/select.

Dispatch inserts uops with a pending-producer count; completion events
decrement it (wakeup) and move zero-pending uops to the ready list, from
which select pulls oldest-first each cycle. Occupancy counts both waiting
and ready-but-unissued uops — an IQ entry is released at *issue*, which is
also the end of its ACE-vulnerable interval.
"""

from collections import deque
from typing import Deque, List

from repro.isa.uop import DynUop


class IssueQueue:
    def __init__(self, size: int):
        self.size = size
        self._waiting: set = set()
        self._ready: Deque[DynUop] = deque()
        #: extra entries claimed by runahead slice uops (lean runahead uses
        #: the *free* IQ entries, per PRE)
        self.runahead_used = 0

    def __len__(self) -> int:
        return len(self._waiting) + len(self._ready) + self.runahead_used

    @property
    def full(self) -> bool:
        return len(self) >= self.size

    @property
    def free(self) -> int:
        return max(0, self.size - len(self))

    def insert(self, uop: DynUop) -> None:
        if self.full:
            raise OverflowError("IQ full")
        if uop.pending == 0:
            self._ready.append(uop)
        else:
            self._waiting.add(uop)

    def wakeup(self, uop: DynUop) -> None:
        """Producer completed: move a waiting uop with no more pending
        producers into the ready list."""
        if uop.pending == 0 and uop in self._waiting:
            self._waiting.discard(uop)
            self._ready.append(uop)

    def pop_ready(self) -> DynUop:
        return self._ready.popleft()

    def requeue(self, uop: DynUop) -> None:
        """Put a selected uop back (structural hazard: FU/MSHR busy)."""
        self._ready.appendleft(uop)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def squash(self, pred) -> int:
        """Drop all queued uops matching ``pred``; returns count dropped."""
        dropped = [u for u in self._waiting if pred(u)]
        for u in dropped:
            self._waiting.discard(u)
        n = len(dropped)
        kept = [u for u in self._ready if not pred(u)]
        n += len(self._ready) - len(kept)
        self._ready = deque(kept)
        return n

    def clear(self) -> None:
        self._waiting.clear()
        self._ready.clear()
        self.runahead_used = 0
