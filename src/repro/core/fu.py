"""Functional-unit pool (Table II).

Pipelined units accept one uop per unit per cycle; non-pipelined units
(dividers) are busy for their full latency. Loads, stores and branches use
an integer-add unit for address generation / condition evaluation.
"""

from typing import Dict, List

from repro.common.enums import UopClass
from repro.common.params import CoreParams, FuParams

#: uop class -> FU class actually used
_FU_CLASS = {
    int(UopClass.NOP): int(UopClass.INT_ADD),
    int(UopClass.INT_ADD): int(UopClass.INT_ADD),
    int(UopClass.INT_MUL): int(UopClass.INT_MUL),
    int(UopClass.INT_DIV): int(UopClass.INT_DIV),
    int(UopClass.FP_ADD): int(UopClass.FP_ADD),
    int(UopClass.FP_MUL): int(UopClass.FP_MUL),
    int(UopClass.FP_DIV): int(UopClass.FP_DIV),
    int(UopClass.LOAD): int(UopClass.INT_ADD),
    int(UopClass.STORE): int(UopClass.INT_ADD),
    int(UopClass.BRANCH): int(UopClass.INT_ADD),
    int(UopClass.INT_CMP): int(UopClass.INT_ADD),
}


def fu_class_for(cls: int) -> int:
    return _FU_CLASS[cls]


class FuPool:
    def __init__(self, core: CoreParams):
        self.params: Dict[int, FuParams] = core.fu_params()
        #: pipelined classes: uops issued this cycle (reset every cycle)
        self._issued_now: Dict[int, int] = {c: 0 for c in self.params}
        #: non-pipelined classes: per-unit next-free cycle
        self._unit_free: Dict[int, List[int]] = {
            c: [0] * p.count for c, p in self.params.items() if not p.pipelined
        }
        self._now = -1

    def _roll(self, cycle: int) -> None:
        if cycle != self._now:
            self._now = cycle
            for c in self._issued_now:
                self._issued_now[c] = 0

    def latency(self, uop_cls: int) -> int:
        return self.params[fu_class_for(uop_cls)].latency

    def exec_cycles(self, uop_cls: int) -> int:
        """Cycles a committed uop occupied a unit (for FU ACE accounting)."""
        return self.params[fu_class_for(uop_cls)].latency

    def can_issue(self, uop_cls: int, cycle: int) -> bool:
        self._roll(cycle)
        fc = fu_class_for(uop_cls)
        p = self.params[fc]
        if p.pipelined:
            return self._issued_now[fc] < p.count
        return any(free <= cycle for free in self._unit_free[fc])

    def issue(self, uop_cls: int, cycle: int) -> int:
        """Reserve a unit; returns the completion (writeback) cycle."""
        self._roll(cycle)
        fc = fu_class_for(uop_cls)
        p = self.params[fc]
        if p.pipelined:
            if self._issued_now[fc] >= p.count:
                raise OverflowError(f"FU class {fc} over-issued at {cycle}")
            self._issued_now[fc] += 1
            return cycle + p.latency
        units = self._unit_free[fc]
        for i, free in enumerate(units):
            if free <= cycle:
                units[i] = cycle + p.latency
                return cycle + p.latency
        raise OverflowError(f"non-pipelined FU class {fc} busy at {cycle}")
