"""Functional-unit pool (Table II) with an O(1) scoreboard.

Pipelined units accept one uop per unit per cycle; non-pipelined units
(dividers) are busy for their full latency. Loads, stores and branches use
an integer-add unit for address generation / condition evaluation.

Availability is tracked with per-class free-slot counters instead of a
per-cycle scan: pipelined classes keep a ``(stamp, used)`` pair — the last
cycle anything issued and how many slots that cycle consumed — so a fresh
cycle needs no reset sweep at all, and both :meth:`can_issue` and
:meth:`issue` are constant-time table lookups. Latencies and the
uop-class→FU-class mapping are precomputed as lists indexed by
``UopClass`` (see ``repro.common.enums.FU_CLASS``). The ``fu-scoreboard``
invariant (``repro.validate``) cross-checks these counters against the
in-flight writeback events under ``--validate``.
"""

from typing import Dict, List

from repro.common.enums import FU_CLASS
from repro.common.params import CoreParams, FuParams


def fu_class_for(cls: int) -> int:
    """FU class actually used by a uop class (table lookup)."""
    return FU_CLASS[cls]


class FuPool:
    def __init__(self, core: CoreParams):
        self.params: Dict[int, FuParams] = core.fu_params()
        n = len(FU_CLASS)
        #: per-FU-class tables (index = FU class int)
        self._count: List[int] = [0] * n
        self._latency: List[int] = [0] * n
        self._pipelined: List[bool] = [True] * n
        for c, p in self.params.items():
            self._count[c] = p.count
            self._latency[c] = p.latency
            self._pipelined[c] = p.pipelined
        #: per-uop-class latency through the FU-class mapping
        self._uop_latency: List[int] = [self._latency[FU_CLASS[c]]
                                        for c in range(n)]
        #: pipelined classes: last cycle anything issued + slots it used
        self._stamp: List[int] = [-1] * n
        self._used: List[int] = [0] * n
        #: non-pipelined classes: per-unit next-free cycle
        self._unit_free: Dict[int, List[int]] = {
            c: [0] * p.count for c, p in self.params.items() if not p.pipelined
        }

    def latency(self, uop_cls: int) -> int:
        return self._uop_latency[uop_cls]

    def exec_cycles(self, uop_cls: int) -> int:
        """Cycles a committed uop occupied a unit (for FU ACE accounting)."""
        return self._uop_latency[uop_cls]

    def can_issue(self, uop_cls: int, cycle: int) -> bool:
        fc = FU_CLASS[uop_cls]
        if self._pipelined[fc]:
            return self._stamp[fc] != cycle or self._used[fc] < self._count[fc]
        for free in self._unit_free[fc]:
            if free <= cycle:
                return True
        return False

    def issue(self, uop_cls: int, cycle: int) -> int:
        """Reserve a unit; returns the completion (writeback) cycle."""
        fc = FU_CLASS[uop_cls]
        if self._pipelined[fc]:
            if self._stamp[fc] != cycle:
                self._stamp[fc] = cycle
                self._used[fc] = 0
            if self._used[fc] >= self._count[fc]:
                raise OverflowError(f"FU class {fc} over-issued at {cycle}")
            self._used[fc] += 1
            return cycle + self._latency[fc]
        units = self._unit_free[fc]
        done = cycle + self._latency[fc]
        for i, free in enumerate(units):
            if free <= cycle:
                units[i] = done
                return done
        raise OverflowError(f"non-pipelined FU class {fc} busy at {cycle}")

    # ---------------------------------------------------------- scoreboard

    def used_this_cycle(self, fu_cls: int, cycle: int) -> int:
        """Slots of a pipelined class consumed at ``cycle`` (0 if the
        scoreboard stamp is from an earlier cycle)."""
        return self._used[fu_cls] if self._stamp[fu_cls] == cycle else 0

    def busy_units(self, fu_cls: int, cycle: int) -> int:
        """Occupied units of a non-pipelined class at ``cycle``."""
        return sum(1 for free in self._unit_free[fu_cls] if free > cycle)
