"""Instruction model: static trace uops and dynamic in-flight instances."""

from repro.isa.trace import Trace
from repro.isa.tracefile import load_trace, save_trace
from repro.isa.uop import NO_ADDR, DynUop, StaticUop

__all__ = ["StaticUop", "DynUop", "Trace", "NO_ADDR", "save_trace",
           "load_trace"]
