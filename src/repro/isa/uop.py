"""Micro-op representations.

A :class:`StaticUop` is one element of the *dynamic instruction trace* of a
workload (the program already unrolled in execution order), so re-fetching
after a squash deterministically replays the same instructions, addresses
and branch outcomes.  A :class:`DynUop` is one in-flight instance of a
static uop; the same static uop can be instantiated several times (branch
wrong-path recovery, FLUSH refetch, runahead-exit flush all re-fetch).

Both classes use ``__slots__``: the simulator allocates one DynUop per
dynamic instruction and these are the hottest objects in the system.
"""

from typing import Optional, Tuple

from repro.common.enums import FU_CLASS, HAS_DEST, IS_FP, UopClass

#: Sentinel address for non-memory uops.
NO_ADDR = -1

_LOAD = int(UopClass.LOAD)
_STORE = int(UopClass.STORE)
_BRANCH = int(UopClass.BRANCH)


class StaticUop:
    """One trace element. Immutable once created.

    Attributes:
        idx: position in the trace (program order).
        pc: instruction address; loops repeat PCs so predictors can learn.
        cls: :class:`UopClass` value (stored as int for speed).
        srcs: trace indices of producer uops this uop reads. For loads and
            stores these are the *address-generating* producers, which is
            what backward-slice identification (the SST) walks.
        addr: byte address touched by loads/stores, ``NO_ADDR`` otherwise.
        taken: branch outcome (meaningless for non-branches).
        target: branch target PC (for BTB modelling).
        has_dest: whether this uop writes a renamed destination register.
        is_fp: whether this uop executes on the floating-point units.
        fu_cls: the FU class this uop occupies (loads/stores/branches use
            an integer adder) — precomputed because issue/wakeup consult
            it for every ready-list operation.
    """

    __slots__ = ("idx", "pc", "cls", "srcs", "addr", "taken", "target",
                 "has_dest", "is_fp", "fu_cls",
                 "is_load", "is_store", "is_branch", "is_mem")

    def __init__(
        self,
        idx: int,
        pc: int,
        cls: int,
        srcs: Tuple[int, ...] = (),
        addr: int = NO_ADDR,
        taken: bool = False,
        target: int = 0,
    ):
        self.idx = idx
        self.pc = pc
        self.cls = cls
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.target = target
        self.has_dest = HAS_DEST[cls]
        self.is_fp = IS_FP[cls]
        self.fu_cls = FU_CLASS[cls]
        self.is_load = cls == _LOAD
        self.is_store = cls == _STORE
        self.is_branch = cls == _BRANCH
        self.is_mem = self.is_load or self.is_store

    def __deepcopy__(self, memo) -> "StaticUop":
        # Immutable and owned by the trace: checkpoint deep-copies share
        # the instance instead of duplicating the whole unrolled program.
        return self

    @property
    def uop_class(self) -> UopClass:
        return UopClass(self.cls)

    def __repr__(self) -> str:
        return (
            f"StaticUop(idx={self.idx}, pc={self.pc:#x}, "
            f"cls={UopClass(self.cls).name}, srcs={self.srcs}, addr={self.addr})"
        )


class DynUop:
    """One dynamic, in-flight instance of a static uop.

    Timestamps are cycle numbers, ``-1`` when the event has not happened.
    ACE accounting reads the timestamps at commit; squashed instances are
    charged nothing (see ``repro.reliability.ace``).
    """

    __slots__ = (
        "static",
        "seq",
        "wrong_path",
        "runahead",
        "inv",
        "pending",
        "consumers",
        "dispatch_cycle",
        "issue_cycle",
        "done_cycle",
        "commit_cycle",
        "completed",
        "squashed",
        "squash_cause",
        "mem_level",
        "llc_miss",
        "counted_miss",
        "predicted_taken",
        "mem_issue_cycle",
        "in_lq",
        "in_sq",
        "ready_ord",
    )

    def __init__(self, static: StaticUop, seq: int, wrong_path: bool = False,
                 runahead: bool = False):
        self.static = static
        self.seq = seq
        self.wrong_path = wrong_path
        self.runahead = runahead
        #: invalid during runahead: (transitively) depends on the blocking load
        self.inv = False
        #: number of unresolved producers; issue-eligible at zero
        self.pending = 0
        #: dispatched consumers waiting on this uop's result
        self.consumers: list = []
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.done_cycle = -1
        self.commit_cycle = -1
        self.completed = False
        self.squashed = False
        self.squash_cause = 0
        #: which level serviced a memory uop: "l1", "l2", "l3", "dram"
        self.mem_level: Optional[str] = None
        self.llc_miss = False
        #: whether this uop incremented the outstanding-miss (MLP) counter
        self.counted_miss = False
        self.predicted_taken = False
        self.mem_issue_cycle = -1
        self.in_lq = False
        self.in_sq = False
        #: global wakeup-order stamp assigned when this uop enters the
        #: issue queue's ready lists (see ``repro.core.issue_queue``)
        self.ready_ord = -1

    @property
    def mispredicted(self) -> bool:
        return (
            self.static.cls == UopClass.BRANCH
            and not self.wrong_path
            and self.predicted_taken != self.static.taken
        )

    def __repr__(self) -> str:
        flags = "".join(
            f
            for f, on in (
                ("W", self.wrong_path),
                ("R", self.runahead),
                ("I", self.inv),
                ("S", self.squashed),
                ("C", self.completed),
            )
            if on
        )
        return f"DynUop(seq={self.seq}, {self.static!r}, flags={flags or '-'})"
