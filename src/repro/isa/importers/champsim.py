"""ChampSim-style text trace importer.

ChampSim's binary trace record is ``{ip, is_branch, branch_taken,
dst_regs[2], src_regs[4], dst_mem[2], src_mem[4]}``; this importer reads
the equivalent whitespace-separated text rendering (one instruction per
line, the form produced by ChampSim's own trace dumpers and by common
`champsim_trace -t` conversions)::

    <pc> <is_branch> <branch_taken> <dst_regs> <src_regs> <mem_read> <mem_write>

* ``pc`` — decimal or ``0x``-hex instruction address
* ``is_branch`` / ``branch_taken`` — 0 or 1
* ``dst_regs`` / ``src_regs`` — comma-separated architectural register
  numbers, ``-`` when empty
* ``mem_read`` / ``mem_write`` — one effective address (decimal or
  ``0x``-hex) or ``-``

``#``-prefixed lines and blank lines are ignored.

Uop synthesis (one instruction can expand to up to two uops, matching
how the workload generators model RMW):

* memory read  → LOAD uop; memory write → STORE uop (a line with both
  emits LOAD then STORE, the load feeding the store like the generators'
  load-consume chains);
* ``is_branch`` → BRANCH uop; the taken flag comes from the trace and
  the target from the *next* instruction's PC when taken (ChampSim text
  traces don't carry targets — the fall-through/next-PC lookahead
  reconstructs them, which is exact for the dynamic stream);
* otherwise an ALU uop: INT_CMP when the instruction writes no
  destination register (flag-setting compare idiom), INT_ADD when it
  does.

Register dependences follow the last-writer heuristic documented in
:mod:`repro.isa.importers.base`.
"""

from typing import Iterator, List, Optional, Tuple

from repro.common.enums import UopClass
from repro.isa.importers.base import (
    DependenceTracker, ImportError_, UopBuilder, parse_int, parse_optional_addr,
    parse_reg_list,
)
from repro.isa.uop import StaticUop

__all__ = ["import_champsim"]

_FIELDS = 7


class _Line:
    __slots__ = ("pc", "is_branch", "taken", "dsts", "srcs", "mem_read",
                 "mem_write", "lineno")

    def __init__(self, pc: int, is_branch: bool, taken: bool,
                 dsts: List[int], srcs: List[int],
                 mem_read: Optional[int], mem_write: Optional[int],
                 lineno: int):
        self.pc = pc
        self.is_branch = is_branch
        self.taken = taken
        self.dsts = dsts
        self.srcs = srcs
        self.mem_read = mem_read
        self.mem_write = mem_write
        self.lineno = lineno


def _parse_lines(lines: Iterator[str], path: str) -> Iterator[_Line]:
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != _FIELDS:
            raise ImportError_(path, lineno,
                               f"expected {_FIELDS} fields "
                               f"(pc is_branch taken dsts srcs mem_read "
                               f"mem_write), got {len(parts)}")
        pc_s, br_s, taken_s, dst_s, src_s, rd_s, wr_s = parts
        pc = parse_int(pc_s, path, lineno, "pc",
                       16 if pc_s.lower().startswith("0x") else 10)
        if br_s not in ("0", "1") or taken_s not in ("0", "1"):
            raise ImportError_(path, lineno,
                               "is_branch/branch_taken must be 0 or 1")
        yield _Line(pc=pc, is_branch=br_s == "1", taken=taken_s == "1",
                    dsts=parse_reg_list(dst_s, path, lineno),
                    srcs=parse_reg_list(src_s, path, lineno),
                    mem_read=parse_optional_addr(rd_s, path, lineno),
                    mem_write=parse_optional_addr(wr_s, path, lineno),
                    lineno=lineno)


def import_champsim(lines: Iterator[str], path: str = "<champsim>",
                    ) -> List[StaticUop]:
    """Synthesize a :class:`StaticUop` stream from ChampSim text lines."""
    parsed = list(_parse_lines(lines, path))
    deps = DependenceTracker()
    b = UopBuilder()
    for i, ins in enumerate(parsed):
        reg_srcs: Tuple[int, ...] = deps.sources(ins.srcs)
        emitted = []
        if ins.mem_read is not None:
            emitted.append(b.emit(ins.pc, int(UopClass.LOAD), srcs=reg_srcs,
                                  addr=ins.mem_read))
        if ins.mem_write is not None:
            srcs = reg_srcs
            if emitted:  # RMW: the store consumes the load's value
                srcs = tuple(sorted(set(reg_srcs) | {emitted[-1].idx}))
            emitted.append(b.emit(ins.pc, int(UopClass.STORE), srcs=srcs,
                                  addr=ins.mem_write))
        if ins.is_branch:
            srcs = reg_srcs
            if emitted:  # e.g. a test-and-branch through memory
                srcs = tuple(sorted(set(reg_srcs) | {emitted[-1].idx}))
            target = 0
            if ins.taken and i + 1 < len(parsed):
                target = parsed[i + 1].pc
            emitted.append(b.emit(ins.pc, int(UopClass.BRANCH), srcs=srcs,
                                  taken=ins.taken, target=target))
        if not emitted:
            cls = UopClass.INT_ADD if ins.dsts else UopClass.INT_CMP
            emitted.append(b.emit(ins.pc, int(cls), srcs=reg_srcs))
        if ins.dsts:
            # The last uop of the expansion carries the architectural
            # result (load value / ALU result).
            deps.wrote(ins.dsts, emitted[-1].idx)
    return b.uops
