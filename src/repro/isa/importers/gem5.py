"""gem5 exec-trace importer.

Reads the textual instruction trace produced by gem5's ``Exec*`` debug
flags (``--debug-flags=Exec``), lines shaped like::

    500: system.cpu: 0x4005a0: add x1, x2, x3 : IntAlu : D=0x000000000000002a
    1000: system.cpu: 0x4005a4: ldr x4, [x1] : MemRead : D=0x1 A=0x7ffff000
    1500: system.cpu: 0x4005a8 @main+12: b.ne 0x4005a0 : IntAlu :

i.e. ``<tick>: <cpu>: <pc>[ @sym+off]: <disassembly> : <class> [: D=.. A=..]``.
The importer is deliberately tolerant — gem5's exact rendering varies by
ISA and version — and keys off the stable parts:

* **pc** — the first ``0x...`` token after the cpu field (symbolic
  ``@sym+off`` suffixes are ignored).
* **uop class** — from the gem5 op class when present (``MemRead`` →
  LOAD, ``MemWrite`` → STORE, ``FloatAdd``/``FloatCmp`` → FP_ADD,
  ``FloatMult`` → FP_MUL, ``FloatDiv``/``FloatSqrt`` → FP_DIV,
  ``IntMult`` → INT_MUL, ``IntDiv`` → INT_DIV), else from the mnemonic
  (``ld*``/``lw``/``lb``/``lh`` → LOAD; ``st*``/``sw``/``sb``/``sh`` →
  STORE; ``b*``/``j*``/``call``/``ret`` → BRANCH; ``mul``/``div``/
  ``fadd``/``fmul``/``fdiv`` prefixes → the matching class; anything
  else → INT_ADD, or INT_CMP for ``cmp``/``test``).
* **memory address** — the ``A=0x...`` annotation (MemRead/MemWrite
  lines); a memory-class line without one is a format error.
* **branch direction/target** — branches are taken when the next line's
  PC differs from the fall-through guess (previous pc + instruction
  spacing inferred from the stream); the target is the next PC.
* **registers** — parsed from the disassembly operands: the first
  register token is the destination (except for stores/branches/compares,
  which write none), the rest are sources. Register tokens are mapped to
  small integers by name so the last-writer heuristic
  (:mod:`repro.isa.importers.base`) applies unchanged.
"""

import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.enums import UopClass
from repro.isa.importers.base import DependenceTracker, ImportError_, UopBuilder
from repro.isa.uop import StaticUop

__all__ = ["import_gem5"]

_LINE_RE = re.compile(
    r"^\s*(?P<tick>\d+)\s*:\s*(?P<cpu>[\w.\[\]]+)\s*:\s*"
    r"(?P<pc>0x[0-9a-fA-F]+)(?:\s*@\S+)?\s*:\s*(?P<rest>.*)$")
_ADDR_RE = re.compile(r"\bA=(0x[0-9a-fA-F]+)")
_REG_RE = re.compile(r"\b([xwrfvd]\d+|[re]?[abcd]x|[re]?[sd]i|[re]?[sb]p"
                     r"|zero|ra|sp|gp|tp|t\d+|s\d+|a\d+)\b")

_OPCLASS_MAP = {
    "MemRead": UopClass.LOAD, "FloatMemRead": UopClass.LOAD,
    "MemWrite": UopClass.STORE, "FloatMemWrite": UopClass.STORE,
    "IntMult": UopClass.INT_MUL, "IntDiv": UopClass.INT_DIV,
    "FloatAdd": UopClass.FP_ADD, "FloatCmp": UopClass.FP_ADD,
    "FloatCvt": UopClass.FP_ADD, "FloatMult": UopClass.FP_MUL,
    "FloatMultAcc": UopClass.FP_MUL, "FloatDiv": UopClass.FP_DIV,
    "FloatSqrt": UopClass.FP_DIV, "IntAlu": None, "SimdAlu": None,
    "No_OpClass": None,
}

_MNEMONIC_PREFIXES: Tuple[Tuple[Tuple[str, ...], UopClass], ...] = (
    (("ld", "lw", "lb", "lh", "mov.l", "pop"), UopClass.LOAD),
    (("st", "sw", "sb", "sh", "push"), UopClass.STORE),
    (("b", "j", "call", "ret"), UopClass.BRANCH),
    (("mul", "imul"), UopClass.INT_MUL),
    (("div", "idiv", "rem"), UopClass.INT_DIV),
    (("fadd", "fsub", "fcmp"), UopClass.FP_ADD),
    (("fmul", "fmadd"), UopClass.FP_MUL),
    (("fdiv", "fsqrt"), UopClass.FP_DIV),
    (("cmp", "test", "tst"), UopClass.INT_CMP),
)


class _Insn:
    __slots__ = ("pc", "cls", "addr", "mnemonic", "regs", "lineno")

    def __init__(self, pc: int, cls: UopClass, addr: Optional[int],
                 mnemonic: str, regs: List[str], lineno: int):
        self.pc = pc
        self.cls = cls
        self.addr = addr
        self.mnemonic = mnemonic
        self.regs = regs
        self.lineno = lineno


def _classify(mnemonic: str, opclass: Optional[str], path: str,
              lineno: int) -> UopClass:
    if opclass is not None and opclass in _OPCLASS_MAP:
        mapped = _OPCLASS_MAP[opclass]
        if mapped is not None:
            return mapped
    m = mnemonic.lower()
    for prefixes, cls in _MNEMONIC_PREFIXES:
        if any(m.startswith(p) for p in prefixes):
            return cls
    return UopClass.INT_ADD


def _parse(lines: Iterator[str], path: str) -> List[_Insn]:
    insns: List[_Insn] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        m = _LINE_RE.match(line)
        if m is None:
            raise ImportError_(path, lineno,
                               "unrecognised gem5 exec-trace line "
                               "(expected '<tick>: <cpu>: <pc>: ...')")
        pc = int(m.group("pc"), 16)
        rest = m.group("rest")
        # rest = "<disassembly> : <opclass> [: D=.. A=..]"
        segments = [s.strip() for s in rest.split(" : ")]
        disasm = segments[0]
        opclass = segments[1].split()[0] if len(segments) > 1 and segments[1] \
            else None
        annotations = " : ".join(segments[2:]) if len(segments) > 2 else ""
        if not disasm:
            raise ImportError_(path, lineno, "empty disassembly field")
        mnemonic = disasm.split()[0]
        cls = _classify(mnemonic, opclass, path, lineno)
        addr: Optional[int] = None
        am = _ADDR_RE.search(annotations) or _ADDR_RE.search(rest)
        if am is not None:
            addr = int(am.group(1), 16)
        if cls in (UopClass.LOAD, UopClass.STORE) and addr is None:
            raise ImportError_(path, lineno,
                               f"memory instruction {mnemonic!r} has no "
                               f"A=<addr> annotation")
        operands = disasm[len(mnemonic):]
        regs = _REG_RE.findall(operands)
        insns.append(_Insn(pc=pc, cls=cls, addr=addr, mnemonic=mnemonic,
                           regs=regs, lineno=lineno))
    return insns


def import_gem5(lines: Iterator[str], path: str = "<gem5>",
                ) -> List[StaticUop]:
    """Synthesize a :class:`StaticUop` stream from a gem5 exec trace."""
    insns = _parse(lines, path)
    deps = DependenceTracker()
    b = UopBuilder()
    reg_ids: Dict[str, int] = {}

    def rid(name: str) -> int:
        return reg_ids.setdefault(name.lower(), len(reg_ids))

    # Infer the common instruction spacing (4 for RISC ISAs) from the
    # most frequent positive PC delta, for branch-direction inference.
    deltas: Dict[int, int] = {}
    for a, c in zip(insns, insns[1:]):
        d = c.pc - a.pc
        if 0 < d <= 16:
            deltas[d] = deltas.get(d, 0) + 1
    spacing = max(deltas, key=deltas.get) if deltas else 4

    for i, ins in enumerate(insns):
        writes_dest = ins.cls not in (UopClass.STORE, UopClass.BRANCH,
                                      UopClass.INT_CMP)
        if writes_dest and ins.regs:
            dst_regs = [rid(ins.regs[0])]
            src_regs = [rid(r) for r in ins.regs[1:]]
        else:
            dst_regs = []
            src_regs = [rid(r) for r in ins.regs]
        srcs = deps.sources(src_regs)
        taken = False
        target = 0
        if ins.cls == UopClass.BRANCH and i + 1 < len(insns):
            next_pc = insns[i + 1].pc
            taken = next_pc != ins.pc + spacing
            if taken:
                target = next_pc
        uop = b.emit(ins.pc, int(ins.cls), srcs=srcs,
                     addr=ins.addr if ins.addr is not None else -1,
                     taken=taken, target=target)
        if dst_regs:
            deps.wrote(dst_regs, uop.idx)
    return b.uops
