"""Shared machinery for external-trace importers.

External formats (ChampSim, gem5) describe *instructions* with
architectural registers and memory operands; the simulator consumes
*uops* whose ``srcs`` are trace indices of producer uops. The bridge is
:class:`DependenceTracker`, which applies a documented last-writer
heuristic:

**Register-dependence inference heuristic.** Maintain a map from
architectural register number to the trace index of the uop that last
wrote it. When an instruction reads registers ``{r...}``, its uop's
``srcs`` become the mapped producer indices of those registers (readers
of never-written registers get no edge — they are treated as ready at
dispatch, matching a warmed-up register file). When it writes registers,
the map is updated to point at the emitted uop. For loads and stores the
inferred sources are the *address-generating* producers — exactly the
edges the Stalling Slice Table walks — because external formats list the
registers consumed by address computation as instruction sources.
Memory-carried dependences (store→load forwarding) are intentionally
not inferred: the LSQ discovers those dynamically from addresses, as it
does for generated workloads.

The heuristic over-approximates when an instruction reads a register for
a non-address purpose (the store-data register becomes an address-slice
edge) and under-approximates cross-function dependences through memory;
both are standard trade-offs for PC+memop trace formats, which do not
carry dataflow.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.uop import StaticUop

__all__ = ["DependenceTracker", "ImportError_", "UopBuilder"]


class ImportError_(ValueError):
    """A malformed importer input line (path + 1-based line number)."""

    def __init__(self, path: str, line: int, reason: str):
        self.path = path
        self.line = line
        self.reason = reason
        super().__init__(f"{path}:{line}: {reason}")


class DependenceTracker:
    """Last-writer register map → trace-index dependence edges."""

    def __init__(self) -> None:
        self._last_writer: Dict[int, int] = {}

    def sources(self, regs: Iterable[int]) -> Tuple[int, ...]:
        """Producer trace indices for a register read set (sorted,
        deduplicated; unwritten registers contribute nothing)."""
        seen = set()
        for r in regs:
            idx = self._last_writer.get(r)
            if idx is not None:
                seen.add(idx)
        return tuple(sorted(seen))

    def wrote(self, regs: Iterable[int], uop_idx: int) -> None:
        for r in regs:
            self._last_writer[r] = uop_idx


class UopBuilder:
    """Accumulates :class:`StaticUop`s with automatic idx assignment."""

    def __init__(self) -> None:
        self.uops: List[StaticUop] = []

    @property
    def next_idx(self) -> int:
        return len(self.uops)

    def emit(self, pc: int, cls: int, srcs: Tuple[int, ...] = (),
             addr: int = -1, taken: bool = False, target: int = 0,
             ) -> StaticUop:
        uop = StaticUop(idx=len(self.uops), pc=pc, cls=cls, srcs=srcs,
                        addr=addr, taken=taken, target=target)
        self.uops.append(uop)
        return uop


def parse_int(token: str, path: str, line: int, what: str,
              base: int = 10) -> int:
    try:
        return int(token, base)
    except ValueError:
        raise ImportError_(path, line,
                           f"{what} {token!r} is not an integer") from None


def parse_reg_list(token: str, path: str, line: int) -> List[int]:
    """A comma-separated register list; ``-`` (or empty) means none."""
    if token in ("-", ""):
        return []
    return [parse_int(t, path, line, "register") for t in token.split(",")]


def parse_optional_addr(token: str, path: str, line: int) -> Optional[int]:
    """A memory address in decimal or 0x-hex; ``-`` means no access."""
    if token == "-":
        return None
    base = 16 if token.lower().startswith("0x") else 10
    addr = parse_int(token, path, line, "address", base)
    if addr < 0:
        raise ImportError_(path, line, f"negative address {addr}")
    return addr
