"""External-trace importers: foreign formats → :class:`StaticUop` streams.

Each importer takes an iterator of text lines and returns a list of
uops with trace-index dependence edges inferred by the last-writer
heuristic documented in :mod:`repro.isa.importers.base`. The registry
here adds format sniffing and a one-call file → ``Trace`` path used by
``repro trace import`` and the ``trace:<path>`` workload resolver.
"""

import gzip
import io
from typing import Callable, Dict, Iterator, List, TextIO

from repro.isa.importers.base import ImportError_
from repro.isa.importers.champsim import import_champsim
from repro.isa.importers.gem5 import import_gem5
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop

__all__ = ["FORMATS", "ImportError_", "get_importer", "import_trace",
           "sniff_format"]

FORMATS: Dict[str, Callable[[Iterator[str], str], List[StaticUop]]] = {
    "champsim": import_champsim,
    "gem5": import_gem5,
}


def get_importer(fmt: str) -> Callable[[Iterator[str], str], List[StaticUop]]:
    try:
        return FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown trace format {fmt!r} "
            f"(known: {', '.join(sorted(FORMATS))})") from None


def _open(path: str) -> TextIO:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path)


def sniff_format(path: str) -> str:
    """Guess the input format from the first non-comment line.

    gem5 exec-trace lines start with ``<tick>:``; ChampSim text lines
    start with a bare PC. Raises :class:`ImportError_` when neither
    shape matches (including an empty file).
    """
    with _open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            first = line.split()[0]
            if first.rstrip(":").isdigit() and line.split(":", 1)[0].strip() \
                    .isdigit() and ":" in line:
                return "gem5"
            if first.lower().startswith("0x") or first.isdigit():
                return "champsim"
            raise ImportError_(path, lineno,
                               f"cannot sniff trace format from {line!r}")
    raise ImportError_(path, 0, "empty input (no records to sniff)")


def import_trace(path: str, fmt: str = "auto", name: str = "") -> Trace:
    """Import an external trace file into a rewindable :class:`Trace`."""
    if fmt == "auto":
        fmt = sniff_format(path)
    importer = get_importer(fmt)
    with _open(path) as f:
        uops = importer(iter(f), path)
    if not uops:
        raise ImportError_(path, 0, "input produced no uops")
    return Trace.from_list(uops, name=name or f"{fmt}-import")
