"""Trace persistence: save/load the static uop stream.

Two line-oriented text formats (optionally gzip-compressed by file
extension) so traces can be archived, diffed, shipped to collaborators,
or produced by external tools and replayed through the simulator.

Version 1 (still read and written for compatibility)::

    #repro-trace v1 name=<name>
    <idx> <pc> <cls> <addr> <taken> <target> <src>[,<src>...]

Version 2 (the default) adds a JSON metadata block and optional
per-uop fields::

    #repro-trace v2
    #meta {"name": ..., "source": ..., "uops": ..., ...}
    <idx> <pc> <cls> <addr> <taken> <target> <srcs> [key=value ...]

Fields are integers except ``taken`` (0/1); ``srcs`` is ``-`` when
empty. The only per-uop optional field currently defined is ``ph=<int>``
— the phase id of a phase-structured workload (see
``repro.workloads.base.PhaseSpec``); unknown keys are a format error so
typos fail loudly instead of silently dropping data.

Names containing whitespace (or quotes) are JSON-quoted in the v1
header and always carried inside the v2 metadata block, so any
printable name round-trips exactly.

All malformed inputs raise :class:`TraceFormatError` (a ``ValueError``)
carrying the path and 1-based line number — never a bare crash from
deep inside ``int()``.

:func:`load_trace` materialises the whole file; :func:`stream_trace`
returns a lazily-materialising :class:`Trace` backed by
:func:`iter_trace`, so a multi-gigabyte trace costs memory only for
the prefix the simulation actually touches.
"""

import gzip
import io
import json
import os
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple, Union

from repro.common.enums import UopClass
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop

__all__ = [
    "MAGIC", "MAGIC_V1", "MAGIC_V2", "TraceFormatError",
    "iter_trace", "load_trace", "save_trace", "stream_trace", "trace_info",
]

MAGIC_V1 = "#repro-trace v1"
MAGIC_V2 = "#repro-trace v2"
#: Back-compat alias (the historical name for the v1 magic).
MAGIC = MAGIC_V1

#: Per-uop optional field keys understood by the v2 record parser.
_UOP_FIELDS = ("ph",)

_VALID_CLASSES = frozenset(int(c) for c in UopClass)


class TraceFormatError(ValueError):
    """A malformed trace file: carries the path and 1-based line number.

    Subclasses ``ValueError`` so pre-v2 callers catching ValueError keep
    working; the message always reads ``path:line: reason`` (line 0 =
    file-level problem such as an empty file).
    """

    def __init__(self, path: str, line: int, reason: str):
        self.path = path
        self.line = line
        self.reason = reason
        where = f"{path}:{line}" if line else path
        super().__init__(f"{where}: {reason}")


def _open(path: str, mode: str) -> TextIO:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"))
    return open(path, mode)


# ------------------------------------------------------------------ names


def _encode_name(name: str) -> str:
    """A v1 header-safe rendering of ``name``.

    Plain tokens are written as-is; anything containing whitespace,
    quotes or control characters is JSON-quoted so the header line stays
    one parseable record (the historical writer emitted raw spaces,
    which corrupted the ``name=<token>`` field on reload).
    """
    if name and not any(c.isspace() or c == '"' for c in name) \
            and name.isprintable():
        return name
    return json.dumps(name)


def _decode_name(value: str, path: str, line: int) -> str:
    if value.startswith('"'):
        try:
            decoded = json.loads(value)
        except ValueError:
            raise TraceFormatError(path, line,
                                   f"unparseable quoted name {value!r}") \
                from None
        if not isinstance(decoded, str):
            raise TraceFormatError(path, line,
                                   f"quoted name is not a string: {value!r}")
        return decoded
    return value


# ------------------------------------------------------------------ saving


def _phase_marks(trace_or_uops: Union[Trace, List[StaticUop]],
                 ) -> Optional[Any]:
    """The source's ``phase_of`` callable, when it has one."""
    fn = getattr(trace_or_uops, "phase_of", None)
    return fn if callable(fn) else None


def save_trace(trace_or_uops: Union[Trace, List[StaticUop]], path: str,
               limit: int = 1_000_000, name: str = "",
               version: int = 2,
               meta: Optional[Dict[str, Any]] = None) -> int:
    """Write up to ``limit`` uops; returns the number written.

    Accepts a :class:`Trace` (materialising lazily up to the limit) or a
    plain list of :class:`StaticUop`. ``version`` selects the on-disk
    format (2 is the default; 1 writes the legacy header and drops
    metadata/per-uop fields). ``meta`` extends the v2 metadata block
    (``name`` and ``version`` are always present; ``phases`` is stamped
    automatically when the source trace is phase-annotated, and each
    record then carries its ``ph=`` field).
    """
    if version not in (1, 2):
        raise ValueError(f"unknown trace format version {version}")
    if isinstance(trace_or_uops, Trace):
        def uops() -> Iterator[StaticUop]:
            for i in range(limit):
                u = trace_or_uops.get(i)
                if u is None:
                    return
                yield u
        trace_name = name or trace_or_uops.name
        source = uops()
    else:
        trace_name = name or "trace"
        source = iter(trace_or_uops[:limit])
    phase_of = _phase_marks(trace_or_uops) if version == 2 else None
    phased = phase_of is not None and getattr(
        trace_or_uops, "has_phases", lambda: False)()

    written = 0
    with _open(path, "w") as f:
        if version == 1:
            f.write(f"{MAGIC_V1} name={_encode_name(trace_name)}\n")
        else:
            header_meta: Dict[str, Any] = {"name": trace_name}
            if meta:
                header_meta.update(meta)
            if phased:
                header_meta.setdefault("phased", True)
            f.write(f"{MAGIC_V2}\n")
            f.write("#meta " + json.dumps(header_meta, sort_keys=True) + "\n")
        for u in source:
            srcs = ",".join(str(s) for s in u.srcs) if u.srcs else "-"
            extra = ""
            if phased:
                extra = f" ph={phase_of(u.idx)}"
            f.write(f"{u.idx} {u.pc} {u.cls} {u.addr} "
                    f"{1 if u.taken else 0} {u.target} {srcs}{extra}\n")
            written += 1
    return written


# ----------------------------------------------------------------- loading


def _parse_header(f: TextIO, path: str) -> Tuple[int, Dict[str, Any], int]:
    """Read the magic (and v2 meta block); returns (version, meta, lineno).

    ``lineno`` is the number of header lines consumed, so record parsing
    can report accurate 1-based line numbers.
    """
    header = f.readline()
    if not header:
        raise TraceFormatError(path, 0, "empty file (no trace header)")
    header = header.rstrip("\n")
    if header.startswith(MAGIC_V2):
        meta_line = f.readline().rstrip("\n")
        if not meta_line.startswith("#meta "):
            raise TraceFormatError(
                path, 2, "v2 trace missing '#meta' block after the magic")
        try:
            meta = json.loads(meta_line[len("#meta "):])
        except ValueError as e:
            raise TraceFormatError(path, 2,
                                   f"unparseable #meta JSON: {e}") from None
        if not isinstance(meta, dict):
            raise TraceFormatError(path, 2, "#meta block is not an object")
        meta.setdefault("name", "trace")
        return 2, meta, 2
    if header.startswith(MAGIC_V1):
        name = "trace"
        if "name=" in header:
            raw = header.split("name=", 1)[1]
            name = _decode_name(raw, path, 1) or "trace"
        return 1, {"name": name}, 1
    raise TraceFormatError(path, 1, "not a repro trace file")


def _parse_record(parts: List[str], version: int, path: str,
                  lineno: int) -> Tuple[StaticUop, Dict[str, int]]:
    if len(parts) < 7:
        raise TraceFormatError(path, lineno,
                               f"malformed record: expected at least 7 "
                               f"fields, got {len(parts)}")
    extras: Dict[str, int] = {}
    if len(parts) > 7:
        if version == 1:
            raise TraceFormatError(path, lineno,
                                   "malformed record: v1 traces carry "
                                   "exactly 7 fields")
        for token in parts[7:]:
            key, sep, value = token.partition("=")
            if not sep or key not in _UOP_FIELDS:
                raise TraceFormatError(
                    path, lineno,
                    f"unknown per-uop field {token!r} "
                    f"(known: {', '.join(_UOP_FIELDS)})")
            try:
                extras[key] = int(value)
            except ValueError:
                raise TraceFormatError(
                    path, lineno,
                    f"per-uop field {key}={value!r} is not an integer") \
                    from None
    idx_s, pc_s, cls_s, addr_s, taken_s, target_s, srcs_s = parts[:7]
    try:
        idx, pc, cls = int(idx_s), int(pc_s), int(cls_s)
        addr, target = int(addr_s), int(target_s)
        srcs = (() if srcs_s == "-"
                else tuple(int(x) for x in srcs_s.split(",")))
    except ValueError:
        raise TraceFormatError(path, lineno,
                               "malformed record: non-integer field") \
            from None
    if idx < 0:
        raise TraceFormatError(path, lineno, f"negative uop idx {idx}")
    if cls not in _VALID_CLASSES:
        raise TraceFormatError(path, lineno, f"unknown uop class {cls}")
    if addr < -1:
        raise TraceFormatError(path, lineno,
                               f"negative address {addr} (use -1 for "
                               f"non-memory uops)")
    if taken_s not in ("0", "1"):
        raise TraceFormatError(path, lineno,
                               f"taken field must be 0 or 1, got {taken_s!r}")
    if any(s < 0 for s in srcs):
        raise TraceFormatError(path, lineno, f"negative src index in {srcs}")
    uop = StaticUop(idx=idx, pc=pc, cls=cls, srcs=srcs, addr=addr,
                    taken=taken_s == "1", target=target)
    return uop, extras


def iter_trace(path: str) -> Iterator[Tuple[StaticUop, Dict[str, int]]]:
    """Stream ``(uop, extras)`` pairs without materialising the file.

    ``extras`` maps per-uop optional field names (``ph``) to values;
    empty for v1 traces and unannotated v2 records. The header is
    validated before the first yield.
    """
    with _open(path, "r") as f:
        version, _meta, header_lines = _parse_header(f, path)
        expected = 0
        for lineno, line in enumerate(f, start=header_lines + 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            uop, extras = _parse_record(line.split(), version, path, lineno)
            if uop.idx != expected:
                raise TraceFormatError(
                    path, lineno,
                    f"uop idx {uop.idx} out of order (expected {expected})")
            expected += 1
            yield uop, extras


def trace_info(path: str, scan: bool = True) -> Dict[str, Any]:
    """Summarise a trace file: header metadata plus (optionally) a scan.

    With ``scan=True`` the whole file is walked (streaming, O(1)
    memory) and the summary gains ``uops``, per-class counts, the
    branch-taken count and the observed phase ids. ``scan=False`` reads
    only the header — constant time on any file size.
    """
    with _open(path, "r") as f:
        version, meta, _ = _parse_header(f, path)
    info: Dict[str, Any] = {
        "path": path,
        "version": version,
        "name": meta.get("name", "trace"),
        "meta": meta,
        "size_bytes": os.path.getsize(path),
    }
    if not scan:
        return info
    counts: Dict[str, int] = {}
    phases: Dict[int, int] = {}
    n = branches = taken = mem = 0
    for uop, extras in iter_trace(path):
        n += 1
        cname = UopClass(uop.cls).name
        counts[cname] = counts.get(cname, 0) + 1
        if uop.is_branch:
            branches += 1
            taken += 1 if uop.taken else 0
        if uop.is_mem:
            mem += 1
        if "ph" in extras:
            phases[extras["ph"]] = phases.get(extras["ph"], 0) + 1
    info.update(uops=n, class_counts=counts, branches=branches,
                branches_taken=taken, mem_uops=mem)
    if phases:
        info["phase_uops"] = {str(k): v for k, v in sorted(phases.items())}
    return info


def _attach_phases(trace: Trace,
                   phase_rows: List[Tuple[int, int]]) -> None:
    """Install a phase table built from per-uop ``ph`` annotations."""
    if phase_rows:
        trace.set_phase_table(phase_rows)


def load_trace(path: str) -> Trace:
    """Read a saved trace fully into a rewindable :class:`Trace`.

    Per-uop phase annotations (``ph=``) are folded into the trace's
    phase table (:meth:`Trace.phase_of`).
    """
    uops: List[StaticUop] = []
    phase_rows: List[Tuple[int, int]] = []
    name = "trace"
    with _open(path, "r") as f:
        version, meta, header_lines = _parse_header(f, path)
        name = meta.get("name", "trace")
        expected = 0
        for lineno, line in enumerate(f, start=header_lines + 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            uop, extras = _parse_record(line.split(), version, path, lineno)
            if uop.idx != expected:
                raise TraceFormatError(
                    path, lineno,
                    f"uop idx {uop.idx} out of order (expected {expected})")
            expected += 1
            uops.append(uop)
            ph = extras.get("ph")
            if ph is not None and (not phase_rows
                                   or phase_rows[-1][1] != ph):
                phase_rows.append((uop.idx, ph))
    trace = Trace.from_list(uops, name=name)
    _attach_phases(trace, phase_rows)
    return trace


def stream_trace(path: str) -> Trace:
    """A lazily-materialising :class:`Trace` over a saved file.

    The header is read eagerly (so bad magic fails fast and the name is
    available); records stream on demand through the trace's buffering
    ``get``. Phase annotations materialise along with their records —
    :meth:`Trace.phase_of` is exact for any index already fetched.
    """
    info = trace_info(path, scan=False)

    phase_rows: List[Tuple[int, int]] = []

    def source() -> Iterator[StaticUop]:
        for uop, extras in iter_trace(path):
            ph = extras.get("ph")
            if ph is not None and (not phase_rows
                                   or phase_rows[-1][1] != ph):
                phase_rows.append((uop.idx, ph))
            yield uop

    trace = Trace(source(), name=info["name"])
    trace.set_phase_table(phase_rows, live=True)
    return trace
