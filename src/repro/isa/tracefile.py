"""Trace persistence: save/load the static uop stream.

A simple line-oriented text format (optionally gzip-compressed by file
extension) so traces can be archived, diffed, shipped to collaborators, or
produced by external tools (e.g. a binary-instrumentation pipeline) and
replayed through the simulator:

    #repro-trace v1 name=<name>
    <idx> <pc> <cls> <addr> <taken> <target> <src>[,<src>...]

Fields are integers except ``taken`` (0/1); ``srcs`` is ``-`` when empty.
"""

import gzip
import io
from typing import Iterator, List, TextIO, Union

from repro.isa.trace import Trace
from repro.isa.uop import StaticUop

MAGIC = "#repro-trace v1"


def _open(path: str, mode: str) -> TextIO:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"))
    return open(path, mode)


def save_trace(trace_or_uops: Union[Trace, List[StaticUop]], path: str,
               limit: int = 1_000_000, name: str = "") -> int:
    """Write up to ``limit`` uops; returns the number written.

    Accepts a :class:`Trace` (materialising lazily up to the limit) or a
    plain list of :class:`StaticUop`.
    """
    if isinstance(trace_or_uops, Trace):
        def uops() -> Iterator[StaticUop]:
            for i in range(limit):
                u = trace_or_uops.get(i)
                if u is None:
                    return
                yield u
        trace_name = name or trace_or_uops.name
        source = uops()
    else:
        trace_name = name or "trace"
        source = iter(trace_or_uops[:limit])

    written = 0
    with _open(path, "w") as f:
        f.write(f"{MAGIC} name={trace_name}\n")
        for u in source:
            srcs = ",".join(str(s) for s in u.srcs) if u.srcs else "-"
            f.write(f"{u.idx} {u.pc} {u.cls} {u.addr} "
                    f"{1 if u.taken else 0} {u.target} {srcs}\n")
            written += 1
    return written


def load_trace(path: str) -> Trace:
    """Read a saved trace back into a rewindable :class:`Trace`."""
    with _open(path, "r") as f:
        header = f.readline().rstrip("\n")
        if not header.startswith(MAGIC):
            raise ValueError(f"{path}: not a repro trace file")
        name = "trace"
        if "name=" in header:
            name = header.split("name=", 1)[1] or "trace"
        uops: List[StaticUop] = []
        for lineno, line in enumerate(f, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 7:
                raise ValueError(f"{path}:{lineno}: malformed record")
            idx, pc, cls, addr, taken, target, srcs_s = parts
            srcs = (() if srcs_s == "-"
                    else tuple(int(x) for x in srcs_s.split(",")))
            uops.append(StaticUop(
                idx=int(idx), pc=int(pc), cls=int(cls), srcs=srcs,
                addr=int(addr), taken=taken == "1", target=int(target),
            ))
    return Trace.from_list(uops, name=name)
