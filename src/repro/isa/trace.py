"""Rewindable, lazily-materialised instruction trace.

The core fetches by index so that squash recovery (branch mispredict,
FLUSH refetch, runahead-exit flush) can simply rewind the fetch cursor:
the trace deterministically replays the same static uops.

Traces are produced by workload generators (``repro.workloads``) as plain
Python generators of :class:`StaticUop`; the trace buffers what has been
generated so far and extends on demand.
"""

from bisect import bisect_right
from typing import Callable, Iterator, List, Optional, Tuple

from repro.isa.uop import StaticUop


class Trace:
    """Buffered view over a generator of :class:`StaticUop`.

    Args:
        source: iterator yielding StaticUops in program order. The uops'
            ``idx`` fields must equal their position in the stream.
        name: human-readable workload name (propagated into results).
    """

    def __init__(self, source: Iterator[StaticUop], name: str = "trace"):
        self._source = source
        self._buf: List[StaticUop] = []
        self._exhausted = False
        self.name = name
        # Phase annotation: either a closure (generated phased workloads)
        # or a sorted (start_idx, phase_id) table (loaded v2 traces). A
        # "live" table may still be growing while the source streams.
        self._phase_fn: Optional[Callable[[int], int]] = None
        self._phase_table: Optional[List[Tuple[int, int]]] = None

    def __len__(self) -> int:
        """Number of uops materialised so far (grows on demand)."""
        return len(self._buf)

    @property
    def exhausted(self) -> bool:
        """True once the source generator has ended: :meth:`get` past
        ``len(self)`` returns None and the stream can no longer grow."""
        return self._exhausted

    def get(self, idx: int) -> Optional[StaticUop]:
        """Return the uop at ``idx``, or None past the end of the stream.

        ``idx`` must be non-negative: a negative cursor (a squash rewind
        gone wrong) would silently wrap around to the *tail* of the
        materialised buffer via Python list indexing and replay the
        wrong instructions, so it raises instead.
        """
        if idx < 0:
            raise IndexError(f"trace index must be non-negative, got {idx}")
        buf = self._buf
        if idx < len(buf):  # fast path: already materialised
            return buf[idx]
        while idx >= len(buf) and not self._exhausted:
            try:
                uop = next(self._source)
            except StopIteration:
                self._exhausted = True
                break
            if uop.idx != len(buf):
                raise ValueError(
                    f"trace uop idx {uop.idx} out of order (expected {len(buf)})"
                )
            buf.append(uop)
        if idx < len(buf):
            return buf[idx]
        return None

    # -------------------------------------------------------- phases

    def set_phase_fn(self, fn: Callable[[int], int]) -> None:
        """Install an analytic phase map (used by phased generators)."""
        self._phase_fn = fn
        self._phase_table = None

    def set_phase_table(self, rows: List[Tuple[int, int]],
                        live: bool = False) -> None:
        """Install a ``(start_idx, phase_id)`` table (used by loaded
        traces). With ``live=True`` the list may still be appended to by
        the streaming source as records materialise."""
        if not live and not rows:
            return
        self._phase_fn = None
        self._phase_table = rows

    def has_phases(self) -> bool:
        return self._phase_fn is not None or bool(self._phase_table)

    def phase_of(self, idx: int) -> int:
        """Phase id of the uop at ``idx`` (0 for unphased traces)."""
        if self._phase_fn is not None:
            return self._phase_fn(idx)
        table = self._phase_table
        if not table:
            return 0
        pos = bisect_right(table, (idx, float("inf")))
        if pos == 0:
            return 0
        return table[pos - 1][1]

    def slice_producers(self, idx: int, max_depth: int = 64) -> List[int]:
        """Backward address-slice of the uop at ``idx``.

        Walks the ``srcs`` chains transitively (bounded by ``max_depth``
        uops) and returns producer trace indices, oldest first.  This is
        the ground-truth slice the Stalling Slice Table learns from.
        """
        uop = self.get(idx)
        if uop is None:
            return []
        seen = set()
        stack = list(uop.srcs)
        while stack and len(seen) < max_depth:
            i = stack.pop()
            if i in seen or i < 0:
                continue
            seen.add(i)
            producer = self.get(i)
            if producer is not None:
                stack.extend(producer.srcs)
        return sorted(seen)

    @classmethod
    def from_list(cls, uops: List[StaticUop], name: str = "trace") -> "Trace":
        trace = cls(iter(()), name=name)
        trace._buf = list(uops)
        trace._exhausted = True
        for pos, uop in enumerate(trace._buf):
            if uop.idx != pos:
                raise ValueError(f"uop idx {uop.idx} != position {pos}")
        return trace

    @classmethod
    def from_factory(
        cls, factory: Callable[[], Iterator[StaticUop]], name: str = "trace"
    ) -> "Trace":
        return cls(factory(), name=name)
