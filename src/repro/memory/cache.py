"""Set-associative, tag-only cache model with LRU replacement.

Timing lives in the hierarchy; this class tracks contents (hit/miss,
insertion, eviction, dirty lines) only. Each set is a small list with the
MRU tag at the end — associativities are ≤ 16, so list operations beat
fancier structures in CPython.
"""

from typing import Dict, List, Optional, Tuple

from repro.common.params import CacheParams


class Cache:
    """One cache level.

    Args:
        params: geometry and latency.
        name: level name used in results ("l1", "l2", "l3").
    """

    def __init__(self, params: CacheParams, name: str = "cache"):
        if params.num_sets < 1:
            raise ValueError(f"{name}: size/assoc/line_size give zero sets")
        if params.num_sets & (params.num_sets - 1):
            raise ValueError(f"{name}: number of sets must be a power of two")
        self.params = params
        self.name = name
        self._set_mask = params.num_sets - 1
        self._line_shift = params.line_size.bit_length() - 1
        #: bits of the line number consumed by the set index; the tag is
        #: the remainder (shared by _index and _reconstruct, which must
        #: stay exact inverses of each other)
        self._tag_shift = params.num_sets.bit_length() - 1
        #: set index -> list of tags, MRU last
        self._sets: Dict[int, List[int]] = {}
        #: dirty lines, keyed by (set, tag)
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> self._tag_shift

    def lookup(self, addr: int, update_lru: bool = True) -> bool:
        """Check presence; promotes to MRU on hit when ``update_lru``."""
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        ways = self._sets.get(set_idx)
        if ways is None or tag not in ways:
            self.misses += 1
            return False
        self.hits += 1
        if update_lru and ways[-1] != tag:
            ways.remove(tag)
            ways.append(tag)
        return True

    def contains(self, addr: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        set_idx, tag = self._index(addr)
        ways = self._sets.get(set_idx)
        return ways is not None and tag in ways

    def insert(self, addr: int, dirty: bool = False
               ) -> Optional[Tuple[int, bool]]:
        """Fill a line; returns (evicted_line_address, was_dirty) or None.

        Dirty victims must be written back to the next level — the
        hierarchy propagates them (and books DRAM bandwidth for LLC
        victims).
        """
        line = addr >> self._line_shift
        set_idx = line & self._set_mask
        tag = line >> self._tag_shift
        ways = self._sets.setdefault(set_idx, [])
        victim: Optional[Tuple[int, bool]] = None
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.params.assoc:
            victim_tag = ways.pop(0)
            self.evictions += 1
            was_dirty = (set_idx, victim_tag) in self._dirty
            if was_dirty:
                self._dirty.discard((set_idx, victim_tag))
                self.writebacks += 1
            victim = (self._reconstruct(set_idx, victim_tag), was_dirty)
        ways.append(tag)
        if dirty:
            self._dirty.add((set_idx, tag))
        return victim

    def mark_dirty(self, addr: int) -> None:
        set_idx, tag = self._index(addr)
        ways = self._sets.get(set_idx)
        if ways is not None and tag in ways:
            self._dirty.add((set_idx, tag))

    def invalidate(self, addr: int) -> bool:
        set_idx, tag = self._index(addr)
        ways = self._sets.get(set_idx)
        if ways is None or tag not in ways:
            return False
        ways.remove(tag)
        self._dirty.discard((set_idx, tag))
        return True

    def _reconstruct(self, set_idx: int, tag: int) -> int:
        return ((tag << self._tag_shift) | set_idx) << self._line_shift

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
