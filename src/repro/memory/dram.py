"""DDR3-style DRAM timing model.

Models ranks × banks with open-page row buffers, per-bank busy times and a
shared data bus with a fixed per-access occupancy (the bandwidth ceiling).
All times are in core cycles (see :class:`repro.common.params.DramParams`
for the DDR3-1600 → 2.66 GHz mapping).

The model is deliberately first-order: it reproduces the latency *spread*
(row hits vs. row conflicts), bank-level parallelism and the bandwidth wall
that shape memory-level parallelism, which is what runahead exploits.
"""

from typing import Dict, Tuple

from repro.common.params import DramParams


class Dram:
    def __init__(self, params: DramParams):
        self.params = params
        self._row_shift = params.row_size.bit_length() - 1
        nb = params.num_banks
        if nb & (nb - 1):
            raise ValueError("number of banks must be a power of two")
        self._bank_mask = nb - 1
        self._bank_shift = nb.bit_length() - 1
        #: per-bank (open_row, next_free_cycle)
        self._banks: Dict[int, Tuple[int, int]] = {}
        self._bus_free = 0
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0

    def _map(self, addr: int) -> Tuple[int, int]:
        """Address → (bank, row): row-interleaved across banks."""
        row_global = addr >> self._row_shift
        bank = row_global & self._bank_mask
        row = row_global >> self._bank_shift
        return bank, row

    def access(self, addr: int, arrive_cycle: int) -> int:
        """Service one line read/write; returns data-ready cycle."""
        p = self.params
        bank, row = self._map(addr)
        open_row, next_free = self._banks.get(bank, (-1, 0))
        start = arrive_cycle if arrive_cycle > next_free else next_free
        if row == open_row:
            latency = p.row_hit_latency
            busy = p.bus_cycles_per_access  # back-to-back column reads (tCCD)
            self.row_hits += 1
        else:
            latency = p.row_miss_latency
            busy = p.t_rp + p.t_rcd + p.bus_cycles_per_access
            self.row_conflicts += 1
        data_cycle = start + latency
        # Shared data bus: consecutive bursts cannot overlap. When the bus
        # pushes the burst back, the bank stays occupied for the same span
        # — its column access cannot complete before the burst issues.
        bus_push = 0
        if data_cycle < self._bus_free:
            bus_push = self._bus_free - data_cycle
            data_cycle = self._bus_free
        self._bus_free = data_cycle + p.bus_cycles_per_access
        # The bank frees once the row is open and the burst has issued —
        # NOT when the data reaches the core; row hits pipeline at tCCD.
        self._banks[bank] = (row, start + busy + bus_push)
        self.accesses += 1
        return data_cycle

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0
