"""Memory-hierarchy substrate: caches, DRAM and prefetching."""

from repro.memory.cache import Cache
from repro.memory.dram import (
    DRAM_PRESETS,
    Dram,
    DramController,
    DramProtocol,
    dram_preset,
)
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher

__all__ = [
    "AccessResult",
    "Cache",
    "DRAM_PRESETS",
    "Dram",
    "DramController",
    "DramProtocol",
    "MemoryHierarchy",
    "StridePrefetcher",
    "dram_preset",
]
