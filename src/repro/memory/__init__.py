"""Memory-hierarchy substrate: caches, DRAM and prefetching."""

from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher

__all__ = ["Cache", "Dram", "MemoryHierarchy", "AccessResult", "StridePrefetcher"]
