"""Composed memory hierarchy: L1D + private L2 + shared L3 + DRAM.

The hierarchy is accessed synchronously: ``access(addr, cycle)`` walks the
levels, updates contents, books DRAM bank/bus time and returns when the
data is ready and which level serviced it. Outstanding misses are tracked
per line so that concurrent accesses to an in-flight line *merge* (MSHR
semantics) instead of issuing duplicate memory requests.

L1 MSHRs bound demand memory-level parallelism: when all MSHRs are in
flight, a new L1-missing access is rejected (returns ``None``) and the core
retries later. Runahead prefetches are demand accesses issued during
runahead mode and obey the same MSHR limit, exactly as in the paper.

The instruction cache is assumed to always hit: catalog workloads are
small loops whose code footprint trivially fits in the 32 KB L1I, so I-side
timing is folded into the front-end depth.
"""

from typing import Dict, List, Optional, Tuple

from repro.common.params import MachineParams, PrefetcherParams
from repro.memory.cache import Cache
from repro.memory.dram import DramController
from repro.memory.prefetcher import StridePrefetcher

LINE_MASK = ~63


class AccessResult:
    """Outcome of one memory access."""

    __slots__ = ("done_cycle", "level", "merged")

    def __init__(self, done_cycle: int, level: str, merged: bool = False):
        self.done_cycle = done_cycle
        self.level = level
        self.merged = merged

    @property
    def llc_miss(self) -> bool:
        return self.level == "dram"

    def __repr__(self) -> str:
        return (
            f"AccessResult(done={self.done_cycle}, level={self.level!r}, "
            f"merged={self.merged})"
        )


class MemoryHierarchy:
    def __init__(self, machine: MachineParams):
        self.machine = machine
        self.l1d = Cache(machine.l1d, "l1")
        self.l2 = Cache(machine.l2, "l2")
        self.l3 = Cache(machine.l3, "l3")
        self.dram = DramController(machine.dram)
        self.mshr_limit = machine.l1d.mshrs or 1 << 30
        # Accumulated lookup latencies, precomputed off the hot path.
        self._lat_l1 = machine.l1d.latency
        self._lat_l12 = machine.l1d.latency + machine.l2.latency
        self._lat_l123 = self._lat_l12 + machine.l3.latency
        #: line -> (done_cycle, level) for in-flight fills
        self._outstanding: Dict[int, Tuple[int, str]] = {}
        #: (done_cycle) min-heap substitute: sorted-enough list of demand
        #: miss completions, pruned lazily for the MSHR count
        self._mshr_done: List[int] = []
        #: lower bound on the next MSHR completion (gates lazy pruning)
        self._mshr_min = 1 << 62
        self._prefetch_done: List[int] = []
        self.prefetcher: Optional[StridePrefetcher] = None
        self._pf_levels: Tuple[str, ...] = ()
        self._pf_queue = PrefetcherParams.queue
        if machine.prefetcher is not None:
            self.prefetcher = StridePrefetcher(machine.prefetcher)
            self._pf_levels = machine.prefetcher.levels
            self._pf_queue = machine.prefetcher.queue
        self.demand_accesses = 0
        self.demand_llc_misses = 0
        self.writebacks_to_l2 = 0
        self.writebacks_to_l3 = 0
        self.writebacks_to_dram = 0
        #: virtual page -> physical frame (lazy, deterministic in the seed)
        self._page_map: Dict[int, int] = {}
        self._page_seed = machine.page_shuffle_seed
        self.rejected_mshr_full = 0
        self.prefetches_issued = 0
        #: optional telemetry hook, called as ``observer(event, cycle,
        #: **data)`` on demand LLC misses ("llc_miss": addr, pc, done).
        #: None (the default) costs one attribute test per miss.
        self.observer = None

    # ------------------------------------------------------------------ MSHR

    def mshr_in_use(self, cycle: int) -> int:
        """Demand L1 MSHRs currently in flight."""
        done = self._mshr_done
        # Prune only when an entry can actually have expired (the cached
        # minimum bounds every completion cycle from below).
        if done and self._mshr_min <= cycle:
            alive = [d for d in done if d > cycle]
            self._mshr_done = alive
            self._mshr_min = min(alive) if alive else 1 << 62
            done = alive
        return len(done)

    def mshr_available(self, cycle: int) -> bool:
        return self.mshr_in_use(cycle) < self.mshr_limit

    # ---------------------------------------------------------------- access

    def access(
        self,
        addr: int,
        cycle: int,
        is_write: bool = False,
        pc: int = -1,
    ) -> Optional[AccessResult]:
        """One demand access. Returns None when rejected (MSHRs full)."""
        line = addr & LINE_MASK
        lat_l1 = self._lat_l1

        pending = self._outstanding.get(line)
        if pending is not None:
            done, level = pending
            if done > cycle:
                # Merge into the in-flight fill; data arrives with it.
                if is_write:
                    self.l1d.mark_dirty(line)
                return AccessResult(done, level, merged=True)
            del self._outstanding[line]

        self.demand_accesses += 1
        # Inlined l1d.lookup() hit path — the overwhelmingly common case.
        l1 = self.l1d
        line_no = line >> l1._line_shift
        set_idx = line_no & l1._set_mask
        tag = line_no >> l1._tag_shift
        ways = l1._sets.get(set_idx)
        if ways is not None and tag in ways:
            l1.hits += 1
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            if is_write:
                l1._dirty.add((set_idx, tag))
            return AccessResult(cycle + lat_l1, "l1")
        l1.misses += 1

        if not self.mshr_available(cycle):
            self.rejected_mshr_full += 1
            return None

        if self.l2.lookup(line):
            result = AccessResult(cycle + self._lat_l12, "l2")
        else:
            lat = self._lat_l123
            if self.l3.lookup(line):
                result = AccessResult(cycle + lat, "l3")
            else:
                done = self.dram.access(self.translate(line), cycle + lat,
                                        kind="demand")
                result = AccessResult(done, "dram")
                self.demand_llc_misses += 1
                if self.observer is not None:
                    self.observer("llc_miss", cycle, addr=line, pc=pc,
                                  done=done)
                self._fill(self.l3, line, cycle)
            self._fill(self.l2, line, cycle)
        victim = self.l1d.insert(line, dirty=is_write)
        if victim is not None and victim[1]:
            # Dirty L1 victim: write back into L2.
            self.writebacks_to_l2 += 1
            self._fill(self.l2, victim[0], cycle, dirty=True)
        self._outstanding[line] = (result.done_cycle, result.level)
        self._mshr_done.append(result.done_cycle)
        if result.done_cycle < self._mshr_min:
            self._mshr_min = result.done_cycle
        self._maybe_prefetch(line, cycle, pc, result.level)
        return result

    def probe_level(self, addr: int) -> str:
        """Which level would service ``addr`` right now (no side effects)."""
        line = addr & LINE_MASK
        if line in self._outstanding:
            return self._outstanding[line][1]
        if self.l1d.contains(line):
            return "l1"
        if self.l2.contains(line):
            return "l2"
        if self.l3.contains(line):
            return "l3"
        return "dram"

    # -------------------------------------------------------- translation

    def translate(self, line: int) -> int:
        """Virtual line → physical line for DRAM decoding.

        Identity unless ``page_shuffle_seed`` is set, in which case each
        4 KB page gets a pseudo-random (but stable) physical frame — the
        page *offset* is preserved, so intra-page row locality survives
        while cross-page stream contiguity is destroyed, as with a real
        OS's page allocator.
        """
        if self._page_seed is None:
            return line
        page = line >> 12
        frame = self._page_map.get(page)
        if frame is None:
            # splitmix64-style hash: deterministic, well-scrambled
            z = (page + 0x9E3779B97F4A7C15 * (self._page_seed + 1)) \
                & 0xFFFFFFFFFFFFFFFF
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
            frame = (z ^ (z >> 31)) & 0xFFFFFFFF
            self._page_map[page] = frame
        return (frame << 12) | (line & 0xFFF)

    # ----------------------------------------------------------- writeback

    def _fill(self, cache: Cache, line: int, cycle: int,
              dirty: bool = False) -> None:
        """Insert a line and propagate dirty victims down the hierarchy."""
        victim = cache.insert(line, dirty=dirty)
        if victim is None or not victim[1]:
            return
        vline, _ = victim
        if cache is self.l2:
            self.writebacks_to_l3 += 1
            self._fill(self.l3, vline, cycle, dirty=True)
        elif cache is self.l3:
            # LLC victim writeback: a queued DRAM request that occupies a
            # bank/bus slot but is off the load critical path
            # (fire-and-forget).
            self.dram.access(self.translate(vline), cycle, kind="writeback")
            self.writebacks_to_dram += 1

    # ------------------------------------------------------------- preload

    def preload(self, base: int, size: int, level: str) -> None:
        """Install a region's lines as if long-resident (warmup shortcut).

        ``level`` "l1" fills all levels (hot data); "l3" fills the shared
        LLC only (warm data whose reuse distance exceeds L2 retention).
        """
        if level not in ("l1", "l3"):
            raise ValueError(f"preload level must be 'l1' or 'l3', not {level!r}")
        line = base & LINE_MASK
        end = base + size
        while line < end:
            self.l3.insert(line)
            if level == "l1":
                self.l2.insert(line)
                self.l1d.insert(line)
            line += self.machine.l1d.line_size

    # ------------------------------------------------------------- prefetch

    def _maybe_prefetch(self, line: int, cycle: int, pc: int, level: str) -> None:
        pf = self.prefetcher
        if pf is None or pc < 0:
            return
        train_all = "l1" in self._pf_levels
        # The L3-level prefetcher only observes traffic that reaches it.
        if not train_all and level not in ("l3", "dram"):
            return
        for target in pf.train(pc, line):
            self._issue_prefetch(target & LINE_MASK, cycle)

    def _issue_prefetch(self, line: int, cycle: int) -> None:
        pend = self._prefetch_done
        if pend:
            alive = [d for d in pend if d > cycle]
            if len(alive) != len(pend):
                self._prefetch_done = alive
                pend = alive
        if len(pend) >= self._pf_queue:
            return
        entry = self._outstanding.get(line)
        if entry is not None and entry[0] > cycle:
            return
        fill_l1 = "l1" in self._pf_levels
        if fill_l1 and self.l1d.contains(line):
            return
        if not fill_l1 and self.l3.contains(line):
            return
        lat = (
            self.machine.l1d.latency
            + self.machine.l2.latency
            + self.machine.l3.latency
        )
        if self.l3.contains(line):
            # Promotion from L3 into the upper levels: a demand access
            # merging with it is an L3 hit, not an LLC miss.
            done, level = cycle + lat, "l3"
        else:
            done = self.dram.access(self.translate(line), cycle + lat,
                                    kind="prefetch")
            level = "dram"
            self._fill(self.l3, line, cycle)
        if fill_l1:
            self._fill(self.l2, line, cycle)
            self.l1d.insert(line)
        self._outstanding[line] = (done, level)
        self._prefetch_done.append(done)
        self.prefetches_issued += 1
