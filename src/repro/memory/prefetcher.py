"""Stream/stride hardware prefetcher (Section V-F).

Models the paper's "aggressive stride-based hardware prefetcher with up to
16 streams": a region-based stream detector in the tradition of IBM
POWER-style stream prefetchers. Each tracked stream remembers its last
address and detected stride; a training access that continues a stream
(same stride, or near the stream head within the detection window) builds
confidence, and confident streams issue ``degree`` prefetches ``distance``
strides ahead of the head.

Region tracking (rather than PC indexing) matters: real streaming code —
and the synthetic catalog — interleaves several concurrent streams across
the same static loads, so the per-address-neighbourhood association is
what actually recurs.
"""

from typing import List

from repro.common.params import PrefetcherParams

LINE = 64

#: A training access within this many bytes of a stream's head can
#: re-synchronise the stream (covers skipped lines / slight reordering).
_WINDOW = 16 * LINE


class StridePrefetcher:
    def __init__(self, params: PrefetcherParams):
        self.params = params
        #: stream entries: [last_addr, stride, confidence]
        self._streams: List[List[int]] = []
        self.trained = 0
        self.issued = 0

    def _find_stream(self, addr: int):
        """Best matching stream for this access, or None."""
        best = None
        best_dist = _WINDOW + 1
        for s in self._streams:
            expected = s[0] + s[1]
            dist = abs(addr - expected) if s[1] else abs(addr - s[0])
            if dist < best_dist:
                best = s
                best_dist = dist
        return best if best_dist <= _WINDOW else None

    def train(self, pc: int, addr: int) -> List[int]:
        """Observe one demand access; return prefetch addresses to issue.

        ``pc`` is accepted for interface compatibility but streams are
        tracked by address locality, not by instruction.
        """
        p = self.params
        s = self._find_stream(addr)
        if s is None:
            if len(self._streams) >= p.streams:
                self._streams.pop(0)  # FIFO stream replacement
            self._streams.append([addr, 0, 0])
            return []
        delta = addr - s[0]
        if delta == 0:
            return []
        if s[1] != 0 and delta == s[1]:
            s[2] = min(s[2] + 1, 4)
        elif s[1] != 0 and delta * s[1] > 0 and abs(delta) <= _WINDOW:
            # Same direction, re-synchronised within the window.
            s[2] = max(1, s[2] - 1)
        else:
            s[2] = 1 if s[1] == 0 else 0
        s[0] = addr
        if abs(delta) <= _WINDOW:
            s[1] = delta
        if s[2] < 2:
            return []
        self.trained += 1
        out = [addr + s[1] * i
               for i in range(p.distance, p.distance + p.degree)]
        self.issued += len(out)
        return out

    @property
    def active_streams(self) -> int:
        return len(self._streams)
