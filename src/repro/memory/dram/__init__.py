"""Protocol-parameterised DRAM controller subsystem.

Split Ramulator-style into orthogonal pieces:

- :mod:`~repro.memory.dram.protocol` — device timing specs at the device
  clock and the named presets (``ddr3-1600`` … ``hbm2``);
- :mod:`~repro.memory.dram.mapping` — address → (channel, bank, row)
  decoding policies (row-interleaved, XOR-permuted);
- :mod:`~repro.memory.dram.scheduler` — FCFS and FR-FCFS request
  scheduling plus per-bank refresh windows;
- :mod:`~repro.memory.dram.controller` — the front door tying them
  together and exporting the ``mem.dram.*`` counters.

``Dram`` remains the public name for the controller, so existing imports
(``from repro.memory.dram import Dram``) and the golden-gated default
behaviour are unchanged.
"""

from repro.memory.dram.controller import Dram, DramController
from repro.memory.dram.mapping import MAPPING_POLICIES, AddressMapping
from repro.memory.dram.protocol import (
    DRAM_PRESETS,
    PRESET_NAMES,
    DramProtocol,
    dram_preset,
)
from repro.memory.dram.scheduler import (
    SCHEDULERS,
    FcfsScheduler,
    FrfcfsScheduler,
    make_scheduler,
)

__all__ = [
    "AddressMapping",
    "DRAM_PRESETS",
    "Dram",
    "DramController",
    "DramProtocol",
    "FcfsScheduler",
    "FrfcfsScheduler",
    "MAPPING_POLICIES",
    "PRESET_NAMES",
    "SCHEDULERS",
    "dram_preset",
    "make_scheduler",
]
