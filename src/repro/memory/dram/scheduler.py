"""Request scheduling policies for the DRAM controller.

Two schedulers share one interface — ``service(channel, bank, row,
arrive) -> (data_cycle, row_hit, refresh_stall)`` — and one timing
vocabulary (all in core cycles, from :class:`repro.common.params.DramParams`):
a row hit costs ``row_hit_latency`` and occupies its bank for ``tCCD``
(= ``bus_cycles_per_access``); a miss costs ``row_miss_latency`` and holds
the bank through precharge + activate; each channel has one data bus on
which bursts serialise at ``bus_cycles_per_access``.

``FcfsScheduler``
    Arrival order. With refresh disabled this is a line-for-line port of
    the original single-protocol model's arithmetic, which the 25-point
    golden gate pins bit-for-bit.

``FrfcfsScheduler``
    FR-FCFS (Rixner et al., ISCA 2000) adapted to this simulator's
    synchronous ``access()`` API. Requests already serviced have already
    returned their timing, so a later row hit cannot retroactively delay
    them; instead the scheduler keeps each bank's *schedule* (busy
    segments) and lets a row hit fill an idle gap where its row is open,
    provided a bus slot is free and no bypassed request is older than
    ``frfcfs_cap`` cycles (the age-based starvation cap). A hit that finds
    no gap, and every row miss, falls back to FCFS tail arithmetic. The
    model is mildly conservative (bypasses never push scheduled work) but
    preserves FR-FCFS's signature: higher row-hit rate and bandwidth under
    bank-conflict-heavy load, bounded queueing delay for old requests.

Refresh (``t_refi > 0``): every ``t_refi`` cycles each bank is blocked for
``t_rfc`` and its row buffer closes. Windows are phase-staggered across
banks as real controllers do, so refresh never blocks all banks at once.
"""

from typing import Dict, List, Tuple

from repro.common.params import DramParams

__all__ = ["FcfsScheduler", "FrfcfsScheduler", "SCHEDULERS", "make_scheduler"]


class FcfsScheduler:
    """Arrival-order scheduling (the legacy model's implicit policy)."""

    kind = "fcfs"

    def __init__(self, params: DramParams):
        self.params = params
        #: per-bank (open_row, next_free_cycle), keyed by global bank id
        self._banks: Dict[int, Tuple[int, int]] = {}
        self._bus_free: List[int] = [0] * params.channels

    def service(self, channel: int, bank: int, row: int,
                arrive: int) -> Tuple[int, bool, int]:
        p = self.params
        gbank = channel * p.num_banks + bank
        open_row, next_free = self._banks.get(gbank, (-1, 0))
        start = arrive if arrive > next_free else next_free
        closed = False
        stall = 0
        if p.t_refi:
            start, closed, stall = self._refresh_adjust(gbank, start,
                                                        next_free)
        if row == open_row and not closed:
            latency = p.row_hit_latency
            busy = p.bus_cycles_per_access  # back-to-back column reads (tCCD)
            hit = True
        else:
            latency = p.row_miss_latency
            busy = p.t_rp + p.t_rcd + p.bus_cycles_per_access
            hit = False
        data_cycle = start + latency
        # Shared data bus: consecutive bursts cannot overlap. When the bus
        # pushes the burst back, the bank stays occupied for the same span
        # — its column access cannot complete before the burst issues.
        bus_free = self._bus_free[channel]
        bus_push = 0
        if data_cycle < bus_free:
            bus_push = bus_free - data_cycle
            data_cycle = bus_free
        self._bus_free[channel] = data_cycle + p.bus_cycles_per_access
        # The bank frees once the row is open and the burst has issued —
        # NOT when the data reaches the core; row hits pipeline at tCCD.
        self._banks[gbank] = (row, start + busy + bus_push)
        return data_cycle, hit, stall

    def _refresh_adjust(self, gbank: int, start: int,
                        prev_free: int) -> Tuple[int, bool, int]:
        """Apply the refresh window covering ``start``, if any.

        Returns (adjusted start, row-buffer closed, stall cycles). A
        request landing inside a window waits it out; a window that
        completed while the bank sat idle since its previous service
        closed the row buffer. Windows that overlapped the bank's own
        busy time are treated as deferred (absorbed), first-order.
        """
        p = self.params
        phase = (gbank * p.t_refi) // (p.num_banks * p.channels)
        if start < phase:
            return start, False, 0
        w_start = start - ((start - phase) % p.t_refi)
        w_end = w_start + p.t_rfc
        if start < w_end:
            return w_end, True, w_end - start
        return start, w_start >= prev_free, 0

    def busy_banks(self, cycle: int) -> int:
        return sum(1 for _, nf in self._banks.values() if nf > cycle)


class FrfcfsScheduler:
    """Row-hit-first gap-fill scheduling with an age-based starvation cap."""

    kind = "frfcfs"

    #: Sentinel row for refresh segments: never matches a real row, so the
    #: buffer reads as closed after a refresh.
    _REFRESH_ROW = -1

    def __init__(self, params: DramParams):
        self.params = params
        #: per-bank busy segments [start, end, row, arrive], sorted by
        #: start; refresh windows carry row=-1 / arrive=-1.
        self._ops: Dict[int, List[List[int]]] = {}
        #: per-channel booked bus bursts [start, end], sorted, disjoint.
        self._bus: Dict[int, List[List[int]]] = {}
        #: per-bank next refresh window not yet materialised into _ops.
        self._next_ref: Dict[int, int] = {}
        self.bypasses = 0
        self.bypass_denied_age = 0

    # ------------------------------------------------------------- service

    def service(self, channel: int, bank: int, row: int,
                arrive: int) -> Tuple[int, bool, int]:
        p = self.params
        gbank = channel * p.num_banks + bank
        ops = self._ops.get(gbank)
        if ops is None:
            ops = self._ops[gbank] = []
        if p.t_refi:
            # Materialise only the windows that could affect this request
            # (up to the candidate's worst-case end). Later windows are
            # placed by later calls, deferring around work booked first —
            # a controller postponing refresh under load. Materialising
            # further ahead would make every request queue behind a
            # window that is still minutes of bank-idle time away.
            worst = p.t_rp + p.t_rcd + p.bus_cycles_per_access + p.t_rfc
            while True:
                prev_end = ops[-1][1] if ops else 0
                cand = (arrive if arrive > prev_end else prev_end) + worst
                if self._next_ref_start(gbank) > cand:
                    break
                self._materialize_one(gbank, ops)
        data = self._try_bypass(channel, ops, row, arrive)
        if data is not None:
            self._prune(gbank, channel, arrive)
            return data, True, 0
        # Backfill the idle gaps before trailing refresh windows: a window
        # was merely *booked* at its nominal time; a request that fits
        # entirely before it need not wait behind it (no real request is
        # bypassed — the trailing segments are all refresh).
        j = len(ops)
        while j > 0 and ops[j - 1][2] == self._REFRESH_ROW:
            j -= 1
        if j < len(ops):
            placed = self._try_backfill(channel, ops, j, row, arrive)
            if placed is not None:
                self._prune(gbank, channel, arrive)
                return placed
        # FCFS tail: same arithmetic as the legacy model, with the bank's
        # schedule tail standing in for (open_row, next_free).
        if ops:
            last = ops[-1]
            open_row, prev_end = last[2], last[1]
        else:
            last = None
            open_row, prev_end = -1, 0
        start = arrive if arrive > prev_end else prev_end
        stall = 0
        if last is not None and last[2] == self._REFRESH_ROW \
                and arrive < prev_end:
            stall = prev_end - (arrive if arrive > last[0] else last[0])
        if row == open_row:
            latency = p.row_hit_latency
            busy = p.bus_cycles_per_access
            hit = True
        else:
            latency = p.row_miss_latency
            busy = p.t_rp + p.t_rcd + p.bus_cycles_per_access
            hit = False
        data = start + latency
        # Bus: take the earliest free slot at/after the column access —
        # a burst delayed by refresh leaves the intervening bus idle for
        # other banks instead of head-of-line blocking them.
        width = p.bus_cycles_per_access
        slot = self._bus_slot(channel, data, width)
        push = slot - data
        data = slot
        self._bus_insert(channel, slot, slot + width)
        ops.append([start, start + busy + push, row, arrive])
        self._prune(gbank, channel, arrive)
        return data, hit, stall

    # ------------------------------------------------------------- bypass

    def _try_bypass(self, channel: int, ops: List[List[int]], row: int,
                    arrive: int):
        """Schedule a row hit into an idle bank gap, if legal.

        A gap after segment ``i`` is usable when segment ``i`` left ``row``
        open, the gap fits a tCCD burst at or after ``arrive``, a bus slot
        lines up with the burst, and no bypassed request exceeds the
        starvation cap. Returns the data cycle, or None.
        """
        p = self.params
        width = p.bus_cycles_per_access
        hit_lat = p.row_hit_latency
        for i in range(len(ops) - 1):
            cur = ops[i]
            if cur[2] != row:
                continue
            g0 = cur[1] if cur[1] > arrive else arrive
            g1 = ops[i + 1][0]
            if g1 - g0 < width:
                continue
            oldest = min((op[3] for op in ops[i + 1:] if op[3] >= 0),
                         default=-1)
            if oldest >= 0 and arrive - oldest > p.frfcfs_cap:
                self.bypass_denied_age += 1
                return None
            slot = self._bus_slot(channel, g0 + hit_lat, width)
            s = slot - hit_lat
            if s > g1 - width:
                continue  # bus congestion pushed past the bank gap
            ops.insert(i + 1, [s, s + width, row, arrive])
            self._bus_insert(channel, slot, slot + width)
            self.bypasses += 1
            return slot
        return None

    def _try_backfill(self, channel: int, ops: List[List[int]], j: int,
                      row: int, arrive: int):
        """Place a request in a gap among the trailing refresh windows.

        ``ops[j:]`` are all refresh segments. Tries each gap earliest
        first; the request (hit or miss) must fit completely — bank busy
        and bus burst — before the window starts. Returns
        (data_cycle, hit, 0) or None.
        """
        p = self.params
        width = p.bus_cycles_per_access
        for k in range(j, len(ops)):
            gap_lo = ops[k - 1][1] if k > 0 else 0
            open_row = ops[k - 1][2] if k > 0 else -1
            start = arrive if arrive > gap_lo else gap_lo
            hit = row == open_row
            if hit:
                latency, busy = p.row_hit_latency, width
            else:
                latency = p.row_miss_latency
                busy = p.t_rp + p.t_rcd + width
            data = start + latency
            slot = self._bus_slot(channel, data, width)
            end = start + busy + (slot - data)
            if end <= ops[k][0]:
                ops.insert(k, [start, end, row, arrive])
                self._bus_insert(channel, slot, slot + width)
                return slot, hit, 0
        return None

    def _bus_slot(self, channel: int, t: int, width: int) -> int:
        """Earliest cycle >= t where the channel bus is free for width."""
        s = t
        for iv in self._bus.get(channel, ()):
            if iv[1] <= s:
                continue
            if iv[0] >= s + width:
                break
            s = iv[1]
        return s

    def _bus_insert(self, channel: int, start: int, end: int) -> None:
        bus = self._bus.setdefault(channel, [])
        idx = len(bus)
        while idx > 0 and bus[idx - 1][0] > start:
            idx -= 1
        bus.insert(idx, [start, end])

    # ------------------------------------------------------------- refresh

    def _next_ref_start(self, gbank: int) -> int:
        """Nominal start of the bank's next unmaterialised refresh window."""
        nxt = self._next_ref.get(gbank)
        if nxt is None:
            p = self.params
            nxt = (gbank * p.t_refi) // (p.num_banks * p.channels)
            self._next_ref[gbank] = nxt
        return nxt

    def _materialize_one(self, gbank: int, ops: List[List[int]]) -> None:
        """Book the bank's next refresh window as a schedule segment.

        A window overlapping already-booked work is deferred past it,
        keeping segments disjoint.
        """
        p = self.params
        nxt = self._next_ref_start(gbank)
        ws = nxt
        idx = len(ops)
        while idx > 0 and ops[idx - 1][0] >= ws:
            idx -= 1
        if idx > 0 and ops[idx - 1][1] > ws:
            ws = ops[idx - 1][1]
        while idx < len(ops) and ops[idx][0] < ws + p.t_rfc:
            if ops[idx][1] > ws:
                ws = ops[idx][1]
            idx += 1
        ops.insert(idx, [ws, ws + p.t_rfc, self._REFRESH_ROW, -1])
        self._next_ref[gbank] = nxt + p.t_refi

    # ------------------------------------------------------------- pruning

    def _prune(self, gbank: int, channel: int, now: int) -> None:
        """Drop segments far in the past (arrivals are near-monotone)."""
        margin = now - 8192
        ops = self._ops[gbank]
        if len(ops) > 64:
            keep = [op for op in ops if op[1] >= margin]
            self._ops[gbank] = keep if keep else ops[-1:]
        bus = self._bus.get(channel)
        if bus and len(bus) > 512:
            keep = [iv for iv in bus if iv[1] >= margin]
            self._bus[channel] = keep if keep else bus[-1:]

    def busy_banks(self, cycle: int) -> int:
        return sum(
            1 for ops in self._ops.values()
            if any(op[0] <= cycle < op[1] for op in ops))


SCHEDULERS = ("fcfs", "frfcfs")


def make_scheduler(params: DramParams):
    if params.scheduler == "fcfs":
        return FcfsScheduler(params)
    if params.scheduler == "frfcfs":
        return FrfcfsScheduler(params)
    raise ValueError(f"unknown scheduler {params.scheduler!r}; "
                     f"expected one of {SCHEDULERS}")
