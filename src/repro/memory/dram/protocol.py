"""DRAM protocol timing specifications and named presets.

A :class:`DramProtocol` captures a device's timings *at the device clock*
(memory-bus MHz, tRCD/tRP/tCL/tRFC/tREFI in memory cycles) plus its
geometry (channels, ranks, banks, row size), and converts them into the
core-cycle :class:`~repro.common.params.DramParams` the controller runs
on — the Ramulator-style split between "what the datasheet says" and
"what the simulator ticks" (protocol-parameterised DRAM, Luo et al.,
Ramulator 2.0).

Presets
-------

``ddr3-1600``
    The original model's numbers (11-11-11 at 800 MHz behind a 2.66 GHz
    core → 36-cycle tRCD/tRP/tCL) with refresh disabled — the default,
    bit-identical to the seed and pinned by the golden gate.
``ddr4-3200``
    22-22-22 at 1600 MHz (same ~36 core cycles — DDR4's higher clock and
    deeper CAS cancel out), twice the burst rate, 32 banks, refresh on.
``lpddr4-3200``
    Mobile part: two channels, higher core-cycle latencies (46-48-36 at
    1600 MHz), DDR4-class aggregate bandwidth, refresh on.
``hbm2``
    Stacked part: eight channels with a *low per-channel* bandwidth
    ceiling but the highest aggregate, small rows, refresh on.

``bus_cycles_per_access`` stays an explicit first-order knob (core cycles
per 64 B burst on one channel) rather than being derived from the clock
arithmetic: the seed's DDR3 value of 4 core cycles is the calibrated
bandwidth wall the paper reproduction was built against, and the other
presets scale it by their relative per-channel burst rate.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.params import DramParams

__all__ = ["DramProtocol", "DRAM_PRESETS", "PRESET_NAMES", "dram_preset"]

#: The modelled core clock (2.66 GHz, docs/performance.md).
CORE_MHZ = 2660


@dataclass(frozen=True)
class DramProtocol:
    """Device timing spec at the device clock; converts to core cycles."""

    name: str
    mem_mhz: int
    #: tRCD / tRP / tCL in memory-bus cycles.
    t_rcd: int
    t_rp: int
    t_cl: int
    #: Refresh cycle time and interval in memory-bus cycles (0 = off).
    t_rfc: int = 0
    t_refi: int = 0
    #: Geometry.
    channels: int = 1
    ranks: int = 4
    banks_per_rank: int = 8
    row_size: int = 4096
    #: Burst transferring one 64 B line, in memory-bus cycles (BL8 = 4
    #: bus clocks on a x64 DDR channel); informational.
    burst_mem_cycles: int = 4
    #: Core cycles one burst occupies a channel's data bus — the
    #: first-order per-channel bandwidth ceiling (64 B / this).
    bus_cycles_per_access: int = 4
    controller_latency: int = 20
    core_mhz: int = CORE_MHZ

    def core_cycles(self, mem_cycles: int) -> int:
        """Device cycles → core cycles at the configured clock ratio."""
        return (mem_cycles * self.core_mhz) // self.mem_mhz

    @property
    def clock_ratio(self) -> float:
        return self.core_mhz / self.mem_mhz

    def params(self, scheduler: str = "fcfs", mapping: str = "row",
               frfcfs_cap: int = 512,
               refresh: Optional[bool] = None) -> DramParams:
        """Resolve to core-cycle :class:`DramParams`.

        ``refresh=False`` masks refresh (used by the microbenchmark
        validation to compare against closed-form latencies); the default
        keeps whatever the preset specifies.
        """
        refresh_on = (self.t_refi > 0) if refresh is None else refresh
        return DramParams(
            ranks=self.ranks,
            banks_per_rank=self.banks_per_rank,
            row_size=self.row_size,
            t_rcd=self.core_cycles(self.t_rcd),
            t_rp=self.core_cycles(self.t_rp),
            t_cl=self.core_cycles(self.t_cl),
            bus_cycles_per_access=self.bus_cycles_per_access,
            controller_latency=self.controller_latency,
            protocol=self.name,
            channels=self.channels,
            t_rfc=self.core_cycles(self.t_rfc) if refresh_on else 0,
            t_refi=self.core_cycles(self.t_refi) if refresh_on else 0,
            scheduler=scheduler,
            mapping=mapping,
            frfcfs_cap=frfcfs_cap,
        )


#: Named presets. ddr3-1600 reproduces the seed DramParams() exactly
#: (refresh off); the others carry datasheet-derived refresh timings
#: (tRFC ~350/280/260 ns, tREFI 7.8/3.9/3.9 us at their clocks).
DRAM_PRESETS: Dict[str, DramProtocol] = {
    "ddr3-1600": DramProtocol(
        name="ddr3-1600", mem_mhz=800,
        t_rcd=11, t_rp=11, t_cl=11,
        channels=1, ranks=4, banks_per_rank=8, row_size=4096,
        bus_cycles_per_access=4,
    ),
    "ddr4-3200": DramProtocol(
        name="ddr4-3200", mem_mhz=1600,
        t_rcd=22, t_rp=22, t_cl=22,
        t_rfc=560, t_refi=12480,
        channels=1, ranks=2, banks_per_rank=16, row_size=4096,
        bus_cycles_per_access=2,
    ),
    "lpddr4-3200": DramProtocol(
        name="lpddr4-3200", mem_mhz=1600,
        t_rcd=46, t_rp=48, t_cl=36,
        t_rfc=448, t_refi=6240,
        channels=2, ranks=1, banks_per_rank=8, row_size=4096,
        bus_cycles_per_access=4,
    ),
    "hbm2": DramProtocol(
        name="hbm2", mem_mhz=1000,
        t_rcd=14, t_rp=14, t_cl=14,
        t_rfc=260, t_refi=3900,
        channels=8, ranks=1, banks_per_rank=16, row_size=2048,
        bus_cycles_per_access=8,
    ),
}

PRESET_NAMES: Tuple[str, ...] = tuple(DRAM_PRESETS)


def dram_preset(name: str, scheduler: str = "fcfs", mapping: str = "row",
                frfcfs_cap: int = 512,
                refresh: Optional[bool] = None) -> DramParams:
    """Look up a preset and resolve it to core-cycle parameters."""
    try:
        proto = DRAM_PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown DRAM preset {name!r}; "
                         f"expected one of {PRESET_NAMES}") from None
    return proto.params(scheduler=scheduler, mapping=mapping,
                        frfcfs_cap=frfcfs_cap, refresh=refresh)
