"""Protocol-parameterised DRAM controller.

Front door of the ``repro.memory.dram`` subsystem: decodes addresses
through the configured :class:`~repro.memory.dram.mapping.AddressMapping`,
hands (channel, bank, row) requests to the configured scheduler, and
accumulates the observability counters exposed through the stats registry
(``mem.dram.*``).

The model is deliberately first-order: it reproduces the latency *spread*
(row hits vs. row conflicts), bank-level parallelism, refresh interference
and the per-channel bandwidth wall that shape memory-level parallelism,
which is what runahead exploits. With the default parameters (ddr3-1600,
one channel, refresh off, ``fcfs``, row-interleaved mapping) it is
bit-identical to the original single-protocol model; the golden gate pins
that contract.

State is plain dicts/lists/ints throughout so checkpoint fork/restore can
deep-copy a controller mid-burst and the fork replays identically.
"""

from typing import List

from repro.common.params import DramParams
from repro.memory.dram.mapping import AddressMapping
from repro.memory.dram.scheduler import make_scheduler

__all__ = ["DramController", "Dram"]


class DramController:
    def __init__(self, params: DramParams):
        self.params = params
        self.mapping = AddressMapping(params)
        self.scheduler = make_scheduler(params)
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.refresh_stall_cycles = 0
        # Traffic split by request kind (demand fills / LLC victim
        # writebacks / hardware prefetches).
        self.demand_requests = 0
        self.writeback_requests = 0
        self.prefetch_requests = 0
        #: data-ready cycles of requests issued but possibly not complete;
        #: pruned lazily — only read by the queue-depth sampler.
        self._inflight: List[int] = []

    def access(self, addr: int, arrive_cycle: int,
               kind: str = "demand") -> int:
        """Service one line read/write; returns data-ready cycle."""
        channel, bank, row = self.mapping.map(addr)
        data_cycle, hit, stall = self.scheduler.service(
            channel, bank, row, arrive_cycle)
        self.accesses += 1
        if hit:
            self.row_hits += 1
        else:
            self.row_conflicts += 1
        if stall:
            self.refresh_stall_cycles += stall
        if kind == "demand":
            self.demand_requests += 1
        elif kind == "writeback":
            self.writeback_requests += 1
        else:
            self.prefetch_requests += 1
        inflight = self._inflight
        inflight.append(data_cycle)
        if len(inflight) > 2048:
            self._inflight = [d for d in inflight if d > arrive_cycle]
        return data_cycle

    # -------------------------------------------------------- observability

    def queue_depth(self, cycle: int) -> int:
        """Requests issued whose data has not yet returned at ``cycle``."""
        alive = [d for d in self._inflight if d > cycle]
        self._inflight = alive
        return len(alive)

    def busy_banks(self, cycle: int) -> int:
        """Banks with booked service (occupancy snapshot for sampling)."""
        return self.scheduler.busy_banks(cycle)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


#: Historical name — the pre-refactor single-protocol model class.
Dram = DramController
