"""Physical-address decoding for the DRAM controller.

A mapping policy turns a physical line address into ``(channel, bank,
row)`` coordinates. Two policies are provided:

``row``
    Row-interleaved (the original model's mapping, and the default):
    consecutive rows stripe across channels then banks, so a sequential
    stream sweeps every bank once per ``channels × banks`` rows. With a
    single channel this reduces exactly to the legacy decode
    ``bank = rg & mask; row = rg >> bits``.

``xor``
    Permutation-based interleaving (Zhang et al., MICRO-33): bank and
    channel bits are XORed with the low row bits, so strided streams that
    would pathologically camp on one bank under ``row`` spread across all
    of them. The XOR is an involution given the row, so the mapping stays
    invertible — :meth:`AddressMapping.unmap` reconstructs the row-aligned
    address, a property the test suite checks with Hypothesis.

Both policies are pure integer bit arithmetic: deterministic, cheap, and
checkpoint-safe (the object is stateless apart from derived constants).
"""

from typing import Tuple

from repro.common.params import DramParams

__all__ = ["AddressMapping", "MAPPING_POLICIES"]

MAPPING_POLICIES = ("row", "xor")


def _log2(n: int, what: str) -> int:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"{what} must be a power of two, not {n}")
    return n.bit_length() - 1


class AddressMapping:
    """Address → (channel, bank, row) and back, per the configured policy."""

    def __init__(self, params: DramParams):
        if params.mapping not in MAPPING_POLICIES:
            raise ValueError(
                f"unknown mapping policy {params.mapping!r}; "
                f"expected one of {MAPPING_POLICIES}")
        self.policy = params.mapping
        self._row_shift = _log2(params.row_size, "row size")
        self._chan_bits = _log2(params.channels, "channel count")
        self._chan_mask = params.channels - 1
        self._bank_bits = _log2(params.num_banks, "number of banks")
        self._bank_mask = params.num_banks - 1

    def map(self, addr: int) -> Tuple[int, int, int]:
        """Physical line address → (channel, bank, row)."""
        rg = addr >> self._row_shift
        channel = rg & self._chan_mask
        rest = rg >> self._chan_bits
        bank = rest & self._bank_mask
        row = rest >> self._bank_bits
        if self.policy == "xor":
            bank ^= row & self._bank_mask
            channel ^= row & self._chan_mask
        return channel, bank, row

    def unmap(self, channel: int, bank: int, row: int) -> int:
        """(channel, bank, row) → row-aligned physical address (inverse)."""
        if self.policy == "xor":
            bank ^= row & self._bank_mask
            channel ^= row & self._chan_mask
        rg = (((row << self._bank_bits) | bank) << self._chan_bits) | channel
        return rg << self._row_shift
