"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:
    list                 available workloads, policies and machines
    run                  simulate one (workload, machine, policy) point
    compare              sweep policies on one workload, print a table
    sweep                workload x policy matrix, optionally parallel
    serve                crash-tolerant simulation farm server over a
                         spool directory (docs/farm.md)
    submit               drop a sweep request into a server's spool,
                         optionally --wait for the response
    scaling              Core-1..Core-4 sweep for one workload/policy pair
    report               render a --stats-out JSON file as tables, or
                         summarize a sweep run-ledger (JSONL)
    top                  live in-terminal view of a running sweep,
                         tailing its --ledger file
    diff                 differential check: one point through every
                         execution path (facade/fork/mp), bit-diffed
    golden               golden conformance fingerprints for the
                         25-point baseline: --check or --regen
    memval               validate every DRAM protocol preset's measured
                         latency/bandwidth against its analytic spec
    warmval              cross-validate fast (functional) warmup against
                         detailed warmup over a workload x policy grid,
                         with per-point delta tolerances and a JSON
                         report (docs/validation.md)

Global flags (before the subcommand) configure the logging layer
(docs/observability.md): ``--log-json`` emits diagnostics as JSON
lines, ``--quiet`` silences everything below warnings, ``--verbose``
enables debug records. Human results stay on stdout; diagnostics go to
stderr. ``sweep --ledger FILE`` records the sweep's full life cycle as
an append-only JSONL event stream with per-point provenance manifests.

``run`` and ``sweep`` accept ``--validate`` to enable the per-cycle
invariant sanitizer and ``--oracle`` for the commit-stream architectural
oracle (see docs/validation.md); ``diff`` exits non-zero on any
divergence and can dump the full report with ``--out``; ``golden
--check`` exits non-zero on any fingerprint drift.

``run`` exposes the telemetry subsystem: ``--stats-out`` (hierarchical
stats + timeline JSON), ``--trace-out`` (Chrome trace-event JSON for
Perfetto), ``--timeline-out`` (JSONL/CSV interval samples),
``--interval`` (sampling period), ``--profile`` / ``--profile-stages``
(host-side KIPS and stage shares) and ``--heartbeat`` (progress lines).
"""

import argparse
import sys
from typing import Dict, List

from repro.analysis.tables import format_table
from repro.common.params import (
    BASELINE, CORE1, CORE2, CORE3, CORE4, MachineParams, PrefetcherParams,
)
from repro.core.runahead import ALL_POLICIES, EXTENSION_POLICIES, get_policy
from repro.memory.dram import PRESET_NAMES, SCHEDULERS, dram_preset
from repro.sim import simulate
from repro.workloads.catalog import ALL_WORKLOADS, get_workload

MACHINES: Dict[str, MachineParams] = {
    "baseline": BASELINE,
    "core-1": CORE1,
    "core-2": CORE2,
    "core-3": CORE3,
    "core-4": CORE4,
    "baseline+l3pf": BASELINE.with_prefetcher(
        PrefetcherParams(levels=("l3",)), name="baseline+l3pf"),
    "baseline+allpf": BASELINE.with_prefetcher(
        PrefetcherParams(levels=("l1", "l2", "l3")), name="baseline+allpf"),
    # Protocol catalog: the baseline core in front of each DRAM preset
    # (docs/memory.md), plus FR-FCFS scheduling on the default protocol.
    "baseline-ddr4": BASELINE.with_dram(
        dram_preset("ddr4-3200"), name="baseline-ddr4"),
    "baseline-lpddr4": BASELINE.with_dram(
        dram_preset("lpddr4-3200"), name="baseline-lpddr4"),
    "baseline-hbm2": BASELINE.with_dram(
        dram_preset("hbm2"), name="baseline-hbm2"),
    "baseline-frfcfs": BASELINE.with_dram(
        dram_preset("ddr3-1600", scheduler="frfcfs"),
        name="baseline-frfcfs"),
}
# Prefetcher x protocol points for the runahead-vs-bandwidth study
# (benchmarks/test_fig11_memsys.py).
for _proto in ("ddr4", "hbm2"):
    MACHINES[f"baseline-{_proto}+l3pf"] = \
        MACHINES[f"baseline-{_proto}"].with_prefetcher(
            PrefetcherParams(levels=("l3",)),
            name=f"baseline-{_proto}+l3pf")


def _add_size_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--instructions", type=int, default=10_000,
                   help="measured committed instructions (default 10000)")
    p.add_argument("-w", "--warmup", type=int, default=20_000,
                   help="warmup instructions (default 20000)")


def _add_warmup_mode_arg(p: argparse.ArgumentParser) -> None:
    from repro.core.fastfwd import WARMUP_MODES
    p.add_argument("--warmup-mode", default="detailed",
                   choices=WARMUP_MODES,
                   help="how the warmup region runs: 'detailed' (full "
                        "pipeline, exact, the default) or 'fast' "
                        "(functional walk training caches/TAGE/BTB/SST "
                        "only — approximate, cross-validated by "
                        "`repro warmval`)")


def cmd_list(_args: argparse.Namespace) -> int:
    print("workloads (memory-intensive first):")
    for w in ALL_WORKLOADS:
        tag = "mem" if w.memory_intensive else "cmp"
        print(f"  {w.name:<12} [{tag}] {w.description}")
    print("\npolicies:")
    for p in ALL_POLICIES:
        print(f"  {p.name:<10} kind={p.kind} early={p.early} "
              f"flush={p.flush_at_exit} lean={p.lean}")
    for p in EXTENSION_POLICIES:
        print(f"  {p.name:<10} kind={p.kind} (extension)")
    print("\nmachines:")
    for name, m in MACHINES.items():
        print(f"  {name:<20} ROB={m.core.rob_size} IQ={m.core.iq_size} "
              f"dram={m.dram.protocol}/{m.dram.scheduler} "
              f"prefetcher={'yes' if m.prefetcher else 'no'}")
    return 0


def _build_telemetry(args: argparse.Namespace):
    """A Telemetry matching the run flags, or None when all are off."""
    wants = (args.stats_out or args.trace_out or args.timeline_out
             or args.interval or args.profile or args.profile_stages
             or args.heartbeat)
    if not wants:
        return None
    from repro.obs import Telemetry
    interval = args.interval
    if not interval and (args.stats_out or args.timeline_out):
        interval = 1000
    return Telemetry(
        interval=interval,
        trace=bool(args.trace_out),
        profile=bool(args.stats_out) or args.profile,
        profile_stages=args.profile_stages,
        heartbeat_s=args.heartbeat,
    )


def cmd_run(args: argparse.Namespace) -> int:
    machine = MACHINES[args.machine]
    policy = args.policy_opt or args.policy
    telemetry = _build_telemetry(args)
    if args.warmup_mode != "detailed":
        from repro.checkpoint import simulate_from, warm_checkpoint
        checkpoint = warm_checkpoint(args.workload, machine, policy,
                                     warmup=args.warmup,
                                     warmup_mode=args.warmup_mode)
        r = simulate_from(checkpoint, instructions=args.instructions,
                          telemetry=telemetry, validate=args.validate,
                          oracle=args.oracle)
    else:
        r = simulate(args.workload, machine, policy,
                     instructions=args.instructions, warmup=args.warmup,
                     telemetry=telemetry, validate=args.validate,
                     oracle=args.oracle)
    print(f"{r.workload} on {r.machine} under {r.policy}:")
    print(f"  instructions   {r.instructions}")
    print(f"  cycles         {r.cycles}")
    print(f"  IPC            {r.ipc:.4f}")
    print(f"  MLP            {r.mlp:.2f}")
    print(f"  LLC MPKI       {r.mpki:.1f}")
    print(f"  ABC            {r.abc_total}")
    print(f"  AVF            {r.avf:.4f}")
    for s, v in r.abc.items():
        print(f"    {s:<4}         {v}")
    print(f"  runahead intervals {r.runahead_triggers}, "
          f"flush triggers {r.flush_triggers}, "
          f"branch mispredicts {r.branch_mispredicts}")
    if telemetry is not None:
        if args.stats_out:
            from repro.obs.manifest import point_manifest
            telemetry.write_stats(
                args.stats_out, r,
                manifest=point_manifest(r.workload, machine, r.policy,
                                        args.instructions, args.warmup))
            print(f"  stats          -> {args.stats_out}")
        if args.trace_out:
            telemetry.write_trace(args.trace_out)
            print(f"  trace          -> {args.trace_out} "
                  f"(open in ui.perfetto.dev)")
        if args.timeline_out:
            n = telemetry.write_timeline(args.timeline_out)
            print(f"  timeline       -> {args.timeline_out} ({n} samples)")
        if telemetry.profiler is not None:
            prof = telemetry.profiler
            print(f"  host           {prof.kips:.1f} KIPS, "
                  f"{prof.cycles_per_second:.0f} cycles/s")
            shares = prof.stage_shares()
            if shares:
                print("  stage shares   " + " ".join(
                    f"{k.lstrip('_')}={v:.1%}" for k, v in shares.items()))
    return 0


def _looks_like_ledger(path: str) -> bool:
    """A run ledger is JSONL whose first record carries an ``ev`` tag;
    a stats file is one indented JSON object."""
    import json
    try:
        with open(path) as f:
            first = json.loads(f.readline())
        return isinstance(first, dict) and "ev" in first
    except (ValueError, OSError):
        return False


def cmd_report(args: argparse.Namespace) -> int:
    if _looks_like_ledger(args.path):
        from repro.obs.ledger import read_ledger
        from repro.obs.top import render_ledger_report
        print(render_ledger_report(read_ledger(args.path), path=args.path))
        return 0
    from repro.obs import load_stats, render_report
    print(render_report(load_stats(args.path)))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top
    return run_top(args.ledger, refresh_s=args.refresh, once=args.once,
                   follow=args.follow, max_wait_s=args.max_wait)


def cmd_compare(args: argparse.Namespace) -> int:
    machine = MACHINES[args.machine]
    policies = args.policies or [p.name for p in ALL_POLICIES]
    base = simulate(args.workload, machine, "OOO",
                    instructions=args.instructions, warmup=args.warmup)
    rows: List[List] = []
    for name in policies:
        pol = get_policy(name)
        r = base if pol.name == "OOO" else simulate(
            args.workload, machine, pol,
            instructions=args.instructions, warmup=args.warmup)
        rows.append([pol.name, r.ipc, r.ipc_rel(base), r.mttf_rel(base),
                     r.abc_rel(base), r.mlp])
    print(f"{args.workload} on {machine.name} "
          f"({args.instructions} instructions):\n")
    print(format_table(
        ["policy", "IPC", "IPC_rel", "MTTF_rel", "ABC_rel", "MLP"], rows))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.experiments import ExperimentRunner

    machine = MACHINES[args.machine]
    workloads = args.workloads or [w.name for w in ALL_WORKLOADS]
    policies = args.policies or [p.name for p in ALL_POLICIES]
    runner = ExperimentRunner(instructions=args.instructions,
                              warmup=args.warmup, cache_path=args.cache)
    t0 = time.perf_counter()
    matrix = runner.run_matrix(workloads, machine, policies,
                               jobs=args.jobs,
                               share_warmup=args.share_warmup,
                               warmup_policy=args.warmup_policy,
                               warmup_mode=args.warmup_mode,
                               stats_dir=args.stats_dir,
                               validate=args.validate,
                               oracle=args.oracle,
                               ledger=args.ledger)
    elapsed = time.perf_counter() - t0

    rows: List[List] = []
    for pol in policies:
        for wl in workloads:
            r = matrix.get(get_policy(pol).name, {}).get(
                get_workload(wl).name)
            if r is None:
                continue  # failed point: reported below, not a crash here
            rows.append([r.workload, r.policy, r.ipc, r.mlp, r.mpki,
                         r.abc_total, r.avf])
    print(f"{machine.name}: {len(workloads)} workloads x "
          f"{len(policies)} policies ({args.instructions} instructions):\n")
    print(format_table(
        ["workload", "policy", "IPC", "MLP", "MPKI", "ABC", "AVF"], rows))
    mode = f"jobs={args.jobs}"
    if args.share_warmup:
        mode += f", shared warmup under {args.warmup_policy}"
    if args.warmup_mode != "detailed":
        mode += f", {args.warmup_mode} warmup"
    print(f"\n{len(rows)} points in {elapsed:.2f}s ({mode})")
    for f in matrix.failures:
        tag = "QUARANTINED" if f.get("quarantined") else "FAILED"
        print(f"{tag} {f['workload']}/{f['machine']}/{f['policy']}: "
              f"{f['error']}")
    if args.stats_dir:
        print(f"per-point stats -> {args.stats_dir}/")
    if args.ledger:
        print(f"run ledger     -> {args.ledger} "
              f"(`repro top {args.ledger}` / `repro report {args.ledger}`)")
    if args.out:
        from repro.common.io import atomic_write_json
        payload = {
            "machine": machine.name,
            "instructions": args.instructions,
            "warmup": args.warmup,
            "jobs": args.jobs,
            "share_warmup": args.share_warmup,
            "warmup_policy": args.warmup_policy,
            "warmup_mode": args.warmup_mode,
            "elapsed_s": elapsed,
            "results": [r.to_dict() for p in policies for w in workloads
                        for r in [matrix.get(get_policy(p).name, {}).get(
                            get_workload(w).name)] if r is not None],
            "failures": matrix.failures,
        }
        atomic_write_json(args.out, payload, indent=2)
        print(f"results JSON   -> {args.out}")
    if matrix.failures:
        print(f"\n{len(matrix.failures)} point(s) failed "
              f"({len(rows)} completed)", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis.farm import FarmServer

    server = FarmServer(args.spool, MACHINES, jobs=args.jobs,
                        cache_path=args.cache, ledger=args.ledger,
                        max_retries=args.max_retries)
    print(f"repro serve: spool {args.spool} (jobs={args.jobs})")
    served = server.serve_forever(max_requests=args.max_requests,
                                  idle_exit_s=args.idle_exit)
    print(f"served {served} request(s)")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.analysis.farm import (
        SweepRequest, new_request_id, response_path, submit_request,
        wait_for_response,
    )

    workloads = args.workloads or [w.name for w in ALL_WORKLOADS]
    policies = args.policies or [p.name for p in ALL_POLICIES]
    request = SweepRequest(
        request_id=new_request_id(), workloads=workloads,
        policies=policies, machine=args.machine,
        instructions=args.instructions, warmup=args.warmup,
        share_warmup=args.share_warmup, warmup_policy=args.warmup_policy,
        warmup_mode=args.warmup_mode)
    path = submit_request(args.spool, request)
    print(f"submitted {request.request_id} "
          f"({len(workloads)}x{len(policies)} points) -> {path}")
    if not args.wait:
        print(f"response will land at "
              f"{response_path(args.spool, request.request_id)}")
        return 0
    response = wait_for_response(args.spool, request.request_id,
                                 timeout_s=args.timeout)
    if response is None:
        print(f"timed out after {args.timeout:.0f}s waiting for response",
              file=sys.stderr)
        return 1
    status = response.get("status")
    print(f"request {request.request_id}: {status} "
          f"({len(response.get('results', []))} results, "
          f"{len(response.get('failures', []))} failures)")
    for f in response.get("failures", []):
        tag = "QUARANTINED" if f.get("quarantined") else "FAILED"
        print(f"  {tag} {f['workload']}/{f['machine']}/{f['policy']}: "
              f"{f['error']}")
    if status != "ok":
        err = response.get("error")
        if err:
            print(f"  {err}", file=sys.stderr)
        return 1
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from repro.workloads.catalog import (ALL_WORKLOADS, EXTRA_WORKLOADS,
                                         PHASED_WORKLOADS)
    from repro.workloads.characterize import characterize_all
    names = args.workloads or [
        w.name for w in ALL_WORKLOADS + EXTRA_WORKLOADS + PHASED_WORKLOADS]
    profiles = characterize_all(names, MACHINES[args.machine],
                                instructions=args.instructions,
                                warmup=args.warmup)
    rows = [[p.name, "mem" if p.memory_intensive else "cmp", p.character,
             p.ipc, p.mpki, p.mlp, p.mispredicts_per_kinst,
             p.head_blocked_share]
            for p in profiles]
    print(format_table(
        ["workload", "set", "character", "IPC", "MPKI", "MLP",
         "misp/kinst", "blocked share"], rows))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.workloads.characterize import calibrate_catalog
    try:
        results = calibrate_catalog(
            args.workloads or None, MACHINES[args.machine],
            instructions=args.instructions, warmup=args.warmup,
            check=args.check)
    except KeyError as e:
        print(f"calibrate failed: {e}", file=sys.stderr)
        return 2
    rows = [[r.name, r.hot_fraction, r.data_bias,
             r.mpki_target, r.mpki_measured, "ok" if r.mpki_ok else "MISS",
             r.brmiss_target, r.brmiss_measured,
             "ok" if r.brmiss_ok else "MISS", r.iterations]
            for r in results]
    print(format_table(
        ["workload", "hot_frac", "data_bias", "MPKI tgt", "MPKI",
         "", "br/ki tgt", "br/ki", "", "sims"], rows))
    if args.report:
        from repro.common.io import atomic_write_json
        atomic_write_json(args.report,
                          {"mode": "check" if args.check else "tune",
                           "machine": args.machine,
                           "instructions": args.instructions,
                           "warmup": args.warmup,
                           "results": [r.to_dict() for r in results]},
                          indent=2)
        print(f"calibration report -> {args.report}")
    bad = [r.name for r in results if not r.converged]
    if bad:
        print(f"calibration off-target for: {', '.join(bad)}",
              file=sys.stderr)
        return 1
    if not args.check:
        print("bake these into _TUNED in src/repro/workloads/catalog.py:")
        for r in results:
            print(f'    "{r.name}": {{"hot_fraction": {r.hot_fraction}, '
                  f'"data_bias": {r.data_bias}}},')
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.isa.tracefile import (TraceFormatError, iter_trace, load_trace,
                                     save_trace, trace_info)
    if args.action == "dump":
        spec = get_workload(args.workload)
        n = save_trace(spec.build_trace(), args.path, limit=args.limit)
        print(f"wrote {n} uops of {spec.name!r} to {args.path}")
        return 0
    if args.action == "import":
        from repro.isa.importers import ImportError_, import_trace
        if not args.out:
            print("trace import requires --out <file>", file=sys.stderr)
            return 2
        try:
            trace = import_trace(args.path, fmt=args.format,
                                 name=args.name or "")
            n = save_trace(trace, args.out, limit=args.limit,
                           name=trace.name)
        except (ImportError_, TraceFormatError, OSError) as e:
            print(f"trace import failed: {e}", file=sys.stderr)
            return 1
        print(f"imported {n} uops from {args.path} -> {args.out}")
        print(f"run it with: repro run trace:{args.out} <policy>")
        return 0
    if args.action == "info":
        try:
            info = trace_info(args.path)
        except (TraceFormatError, OSError) as e:
            print(f"trace info failed: {e}", file=sys.stderr)
            return 1
        print(_json.dumps(info, indent=2))
        return 0
    if args.action == "head":
        try:
            shown = 0
            for uop, extras in iter_trace(args.path):
                ph = f" ph={extras['ph']}" if "ph" in extras else ""
                print(f"{uop!r}{ph}")
                shown += 1
                if shown >= args.limit:
                    break
        except (TraceFormatError, OSError) as e:
            print(f"trace head failed: {e}", file=sys.stderr)
            return 1
        return 0
    # replay
    trace = load_trace(args.path)
    machine = MACHINES[args.machine]
    r = simulate(trace, machine, args.policy,
                 instructions=args.instructions, warmup=args.warmup)
    print(f"replayed {r.workload!r} under {r.policy}: "
          f"ipc={r.ipc:.3f} abc={r.abc_total} avf={r.avf:.4f}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.validate.diff import differential_check

    report = differential_check(
        args.workload, MACHINES[args.machine], args.policy,
        instructions=args.instructions, warmup=args.warmup,
        seed=args.seed, paths=args.paths,
        bisect_interval=args.bisect_interval, validate=args.validate)
    print(report.summary())
    if args.out:
        from repro.common.io import atomic_write_json
        atomic_write_json(args.out, report.to_dict(), indent=2)
        print(f"report JSON -> {args.out}")
    return 0 if report.identical else 1


def cmd_golden(args: argparse.Namespace) -> int:
    from repro.validate.golden import check_golden, check_scenarios, \
        golden_points, regen_golden, regen_scenarios, scenario_points

    if args.regen:
        written = regen_golden(args.dir, jobs=args.jobs,
                               instructions=args.instructions,
                               warmup=args.warmup, ledger=args.ledger)
        written.append(regen_scenarios(args.dir, jobs=args.jobs,
                                       ledger=args.ledger))
        total = len(golden_points()) + len(scenario_points())
        print(f"froze {total} golden points:")
        for path in written:
            print(f"  {path}")
        return 0
    problems = check_golden(args.dir, jobs=args.jobs, ledger=args.ledger)
    problems += check_scenarios(args.dir, jobs=args.jobs,
                                ledger=args.ledger)
    if problems:
        print(f"golden check FAILED ({len(problems)} mismatch(es)):")
        for line in problems:
            print(f"  {line}")
        print("if the change is intended, refreeze with "
              "`python -m repro golden --regen` and review the diff")
        return 1
    total = len(golden_points()) + len(scenario_points())
    print(f"golden check OK: {total} points conformant")
    return 0


def cmd_memval(args: argparse.Namespace) -> int:
    from repro.workloads.microbench import memval_table, validate_all

    unknown = [n for n in args.presets if n not in PRESET_NAMES]
    if unknown:
        print(f"unknown preset(s) {unknown}; expected one of {PRESET_NAMES}")
        return 2
    results = validate_all(scheduler=args.scheduler,
                           presets=args.presets or None)
    print(memval_table(results))
    problems = [(r.preset, p) for r in results for p in r.problems]
    if problems:
        print(f"\nmemval FAILED ({len(problems)} problem(s)):")
        for preset, p in problems:
            print(f"  {preset}: {p}")
        return 1
    print(f"\nmemval OK: {len(results)} preset(s) match their analytic "
          f"latency and bandwidth curves")
    return 0


def cmd_warmval(args: argparse.Namespace) -> int:
    from repro.validate.warmval import (
        WARMVAL_POLICIES, WARMVAL_WORKLOADS, run_warmval, warmval_table,
    )

    workloads = args.workloads or list(WARMVAL_WORKLOADS)
    policies = args.policies or list(WARMVAL_POLICIES)
    report = run_warmval(workloads, policies, MACHINES[args.machine],
                         instructions=args.instructions,
                         warmup=args.warmup, seed=args.seed)
    print(warmval_table(report))
    print(f"\nwarmup wall: detailed {report.warmup_wall_detailed_s:.2f}s, "
          f"fast {report.warmup_wall_fast_s:.2f}s "
          f"({report.warmup_speedup:.1f}x speedup)")
    if args.report:
        from repro.common.io import atomic_write_json
        atomic_write_json(args.report, report.to_dict(), indent=2)
        print(f"delta report -> {args.report}")
    if not report.ok:
        print(f"\nwarmval FAILED ({len(report.problems)} problem(s)):")
        for line in report.problems:
            print(f"  {line}")
        return 1
    print(f"\nwarmval OK: {len(report.points)} points within tolerance "
          f"(max IPC delta {report.max_rel_delta('ipc'):.2%})")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    rows: List[List] = []
    for machine in (CORE1, CORE2, CORE3, CORE4):
        base = simulate(args.workload, machine, "OOO",
                        instructions=args.instructions, warmup=args.warmup)
        r = simulate(args.workload, machine, args.policy,
                     instructions=args.instructions, warmup=args.warmup)
        rows.append([machine.name, machine.core.rob_size,
                     base.abc_total / base.instructions,
                     r.abc_total / r.instructions,
                     r.mttf_rel(base), r.ipc_rel(base)])
    print(f"{args.workload} under {args.policy} across core generations:\n")
    print(format_table(
        ["machine", "ROB", "OoO ABC/inst", f"{args.policy} ABC/inst",
         "MTTF_rel", "IPC_rel"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability-Aware Runahead (HPCA 2022) simulator")
    parser.add_argument("--log-json", action="store_true",
                        help="emit diagnostics as JSON lines on stderr")
    parser.add_argument("--quiet", action="store_true",
                        help="silence diagnostics below warnings "
                             "(heartbeats, sweep progress)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="enable debug diagnostics")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/policies/machines")

    p = sub.add_parser("run", help="simulate one point")
    p.add_argument("workload")
    p.add_argument("policy", nargs="?", default="OOO")
    p.add_argument("--policy", dest="policy_opt", default=None,
                   metavar="NAME", help="policy (alternative to positional)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("--stats-out", metavar="FILE",
                   help="write hierarchical stats + timeline JSON")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write Chrome trace-event JSON (Perfetto)")
    p.add_argument("--timeline-out", metavar="FILE",
                   help="write interval samples (.csv or JSONL)")
    p.add_argument("--interval", type=int, default=0, metavar="N",
                   help="sample the pipeline every N cycles "
                        "(default 1000 when --stats/timeline-out is set)")
    p.add_argument("--profile", action="store_true",
                   help="report host-side simulated-KIPS throughput")
    p.add_argument("--profile-stages", action="store_true",
                   help="also time pipeline stages (slows simulation)")
    p.add_argument("--heartbeat", type=float, default=0.0, metavar="SEC",
                   help="progress line on stderr every SEC wall seconds")
    p.add_argument("--validate", action="store_true",
                   help="run with the per-cycle invariant sanitizer")
    p.add_argument("--oracle", action="store_true",
                   help="lockstep-check retirement against the "
                        "commit-stream architectural oracle")
    _add_size_args(p)
    _add_warmup_mode_arg(p)

    p = sub.add_parser("report",
                       help="render a --stats-out file as tables, or "
                            "summarize a sweep run-ledger")
    p.add_argument("path", help="stats JSON written by run --stats-out, "
                                "or a JSONL ledger from sweep --ledger")

    p = sub.add_parser("top", help="live view of a running sweep "
                                   "(tails its --ledger file)")
    p.add_argument("ledger", help="JSONL ledger path (sweep --ledger)")
    p.add_argument("--refresh", type=float, default=1.0, metavar="SEC",
                   help="redraw period in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (no ANSI control)")
    p.add_argument("--follow", action="store_true",
                   help="keep tailing after sweep_done")
    p.add_argument("--max-wait", type=float, default=0.0, metavar="SEC",
                   help="give up (exit 1) after SEC seconds (0 = never)")

    p = sub.add_parser("compare", help="sweep policies on one workload")
    p.add_argument("workload")
    p.add_argument("policies", nargs="*",
                   help="policy names (default: the paper's eight)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    _add_size_args(p)

    p = sub.add_parser("sweep",
                       help="workload x policy matrix, optionally parallel")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: full catalog)")
    p.add_argument("-p", "--policies", nargs="+", metavar="NAME",
                   help="policy names (default: the paper's eight)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="worker processes; groups by workload (default 1)")
    p.add_argument("--share-warmup", action="store_true",
                   help="warm each workload once and fork the checkpoint "
                        "for every policy (approximation; results cached "
                        "under a separate 'sw:' variant key)")
    p.add_argument("--warmup-policy", default="OOO", metavar="NAME",
                   help="policy the shared warmup runs under (default OOO)")
    p.add_argument("--cache", metavar="FILE",
                   help="JSON result cache (read + atomically updated)")
    p.add_argument("--out", metavar="FILE",
                   help="write all point results as one JSON file")
    p.add_argument("--stats-dir", metavar="DIR",
                   help="write per-point telemetry stats JSON into DIR "
                        "(cache-satisfied points render their artifact "
                        "from the cached result, tagged from_cache)")
    p.add_argument("--ledger", metavar="FILE",
                   help="append the sweep's JSONL event stream (with "
                        "per-point provenance manifests) to FILE; watch "
                        "live with `repro top FILE`")
    p.add_argument("--validate", action="store_true",
                   help="run every point under the invariant sanitizer")
    p.add_argument("--oracle", action="store_true",
                   help="lockstep-check every point's retirement against "
                        "the commit-stream architectural oracle")
    _add_size_args(p)
    _add_warmup_mode_arg(p)

    p = sub.add_parser(
        "serve",
        help="run the simulation farm server over a spool directory")
    p.add_argument("spool", help="spool directory (queue/ active/ done/ "
                                 "are created inside it)")
    p.add_argument("-j", "--jobs", type=int, default=2, metavar="N",
                   help="farm worker processes (default 2)")
    p.add_argument("--cache", metavar="FILE",
                   help="shared JSON result cache: repeated points across "
                        "requests are served from it")
    p.add_argument("--ledger", metavar="FILE",
                   help="append scheduler + request events to this JSONL "
                        "run ledger")
    p.add_argument("--max-requests", type=int, default=0, metavar="N",
                   help="exit after serving N requests (default 0 = "
                        "serve forever)")
    p.add_argument("--idle-exit", type=float, default=0.0, metavar="SEC",
                   help="exit after SEC seconds with an empty queue "
                        "(default 0 = wait forever)")
    p.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="worker deaths a group survives before its first "
                        "undelivered point is quarantined (default 2)")

    p = sub.add_parser(
        "submit",
        help="submit a sweep request to a `repro serve` spool")
    p.add_argument("spool", help="the server's spool directory")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: full catalog)")
    p.add_argument("-p", "--policies", nargs="+", metavar="NAME",
                   help="policy names (default: the paper's eight)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("--share-warmup", action="store_true",
                   help="warm each workload once per group (approximation)")
    p.add_argument("--warmup-policy", default="OOO", metavar="NAME",
                   help="policy the shared warmup runs under (default OOO)")
    p.add_argument("--wait", action="store_true",
                   help="block until the response lands in done/ and "
                        "print it (exit 1 on partial/failed)")
    p.add_argument("--timeout", type=float, default=600.0, metavar="SEC",
                   help="--wait timeout (default 600)")
    _add_size_args(p)
    _add_warmup_mode_arg(p)

    p = sub.add_parser(
        "diff", help="differential check across execution paths")
    p.add_argument("workload")
    p.add_argument("policy", nargs="?", default="RAR")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("--paths", nargs="+", default=["facade", "fork", "mp"],
                   choices=("facade", "fork", "mp"), metavar="PATH",
                   help="execution paths to compare; the first is the "
                        "reference (default: facade fork mp)")
    p.add_argument("--seed", type=int, default=None,
                   help="trace/wrong-path seed (default: workload's)")
    p.add_argument("--bisect-interval", type=int, default=500, metavar="N",
                   help="timeline period used to localise a divergence; "
                        "0 disables bisection (default 500)")
    p.add_argument("--validate", action="store_true",
                   help="also sanitize every path with the invariant "
                        "checker")
    p.add_argument("--out", metavar="FILE",
                   help="write the full diff report as JSON")
    _add_size_args(p)

    p = sub.add_parser(
        "golden", help="golden conformance fingerprints (25-point baseline)")
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="re-measure and diff against the frozen files")
    mode.add_argument("--regen", action="store_true",
                      help="refreeze the fingerprints (review the diff!)")
    p.add_argument("--dir", default="tests/golden", metavar="DIR",
                   help="golden file directory (default tests/golden)")
    p.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                   help="worker processes, one point per task (default 1)")
    p.add_argument("-n", "--instructions", type=int, default=3000,
                   help="measured instructions when regenerating "
                        "(default 3000; --check uses the frozen files')")
    p.add_argument("-w", "--warmup", type=int, default=3000,
                   help="warmup instructions when regenerating "
                        "(default 3000; --check uses the frozen files')")
    p.add_argument("--ledger", metavar="FILE",
                   help="record per-point measurement events to a JSONL "
                        "run ledger (observational; fingerprints are "
                        "bit-identical with or without)")

    p = sub.add_parser(
        "memval",
        help="validate DRAM presets against their analytic curves "
             "(pointer-chase latency, streaming bandwidth)")
    p.add_argument("presets", nargs="*", metavar="PRESET",
                   help=f"preset names (default: all of {PRESET_NAMES})")
    p.add_argument("-s", "--scheduler", default="fcfs",
                   choices=SCHEDULERS,
                   help="request scheduler to validate under "
                        "(default fcfs)")

    p = sub.add_parser(
        "warmval",
        help="cross-validate fast (functional) warmup against detailed "
             "warmup: measured-region IPC/MPKI/branch-miss/AVF deltas "
             "per grid point, with a JSON delta report")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: mcf lbm gcc)")
    p.add_argument("-p", "--policies", nargs="+", metavar="NAME",
                   help="policy names (default: OOO FLUSH TR PRE RAR)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("-n", "--instructions", type=int, default=10_000,
                   help="measured instructions per point (default 10000)")
    p.add_argument("-w", "--warmup", type=int, default=20_000,
                   help="warmup instructions per point (default 20000)")
    p.add_argument("--seed", type=int, default=None,
                   help="trace seed (default: workload's own)")
    p.add_argument("--report", metavar="FILE",
                   help="write the per-point JSON delta report to FILE")

    p = sub.add_parser("scaling", help="Core-1..4 sweep")
    p.add_argument("workload")
    p.add_argument("policy", nargs="?", default="RAR")
    _add_size_args(p)

    p = sub.add_parser("characterize",
                       help="measure workload characteristics")
    p.add_argument("workloads", nargs="*",
                   help="names (default: full catalog incl. extras)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    _add_size_args(p)

    p = sub.add_parser(
        "trace",
        help="dump/replay/import/inspect trace files",
        description="dump: save a catalog workload's trace; replay: run a "
        "saved trace; import: convert a ChampSim/gem5 text trace to the "
        "repro format; info: summarise a saved trace; head: print its "
        "first uops. Imported/saved traces run anywhere a workload name "
        "is accepted, as trace:<path>.")
    p.add_argument("action", choices=("dump", "replay", "import", "info",
                                      "head"))
    p.add_argument("path", help="trace file (import: the foreign input)")
    p.add_argument("-k", "--workload", default="mcf",
                   help="catalog workload to dump")
    p.add_argument("-p", "--policy", default="OOO")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("-l", "--limit", type=int, default=100_000,
                   help="max uops to dump/import (head: lines to show)")
    p.add_argument("-o", "--out",
                   help="output trace file for import (.trc or .trc.gz)")
    p.add_argument("-f", "--format", default="auto",
                   choices=("auto", "champsim", "gem5"),
                   help="import input format (default: sniff)")
    p.add_argument("--name", help="embedded trace name for import")
    _add_size_args(p)

    p = sub.add_parser(
        "calibrate",
        help="auto-tune phased workloads to their MPKI/branch-miss targets",
        description="Searches each phased generator's hot_fraction and "
        "data_bias dials until the measured MPKI and branch "
        "mispredicts/kinst hit the per-benchmark targets in "
        "workloads/catalog.py, then prints the calibration report "
        "(docs/workloads.md).")
    p.add_argument("workloads", nargs="*",
                   help="phased workload names (default: all)")
    p.add_argument("-m", "--machine", default="baseline",
                   choices=sorted(MACHINES))
    p.add_argument("--report", metavar="FILE",
                   help="write the JSON calibration report to FILE")
    p.add_argument("--check", action="store_true",
                   help="verify the baked tuned parameters instead of "
                   "re-searching")
    # Calibration targets are defined at the characterize() window, not
    # the generic run sizes: phased workloads are non-stationary, so the
    # measured MPKI depends on where in the schedule the window falls.
    p.add_argument("-n", "--instructions", type=int, default=8_000,
                   help="measured committed instructions (default 8000, "
                   "the calibration window)")
    p.add_argument("-w", "--warmup", type=int, default=15_000,
                   help="warmup instructions (default 15000, "
                   "the calibration window)")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from repro.obs import log as obs_log
    obs_log.configure(json_lines=args.log_json, quiet=args.quiet,
                      verbose=args.verbose)
    get_workload  # imported for side-effect-free validation below
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "report": cmd_report,
        "top": cmd_top,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "diff": cmd_diff,
        "golden": cmd_golden,
        "memval": cmd_memval,
        "warmval": cmd_warmval,
        "scaling": cmd_scaling,
        "trace": cmd_trace,
        "characterize": cmd_characterize,
        "calibrate": cmd_calibrate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
