"""Monte-Carlo fault injection over recorded ACE intervals.

The paper's footnote 1 notes that an "elaborate fault injection campaign"
is the classical alternative to ACE analysis. This module implements that
campaign over the simulator's recorded vulnerability intervals: strike a
uniformly random (structure bit, cycle) and ask whether the struck bit was
architecturally required at that instant — i.e. whether it falls inside a
recorded ACE interval of that structure.

Because strikes sample the same (bits × time) space the AVF equation
normalises over, the empirical hit rate converges to the analytical
AVF = ABC / (N × T) — which makes the injector both a usable
fault-injection API and an end-to-end validation of the accounting
(exercised by the test suite and the ``fault_injection`` example).

Structure-level resolution: a strike lands in structure *s* with
probability bits(s)/N and hits ACE state with probability
live_ACE_bits(s, cycle)/bits(s); entry-level placement within a structure
is uniform, matching the paper's assumption that any occupied entry's bits
are equally vulnerable.
"""

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.common.params import BIT_BUDGET
from repro.reliability.ace import STRUCTURES


def structure_bits(core_params) -> Dict[str, int]:
    """Unprotected bits per structure for a CoreParams (FUs excluded from
    the AVF denominator in the paper's N; we follow that)."""
    return {
        "rob": core_params.rob_size * BIT_BUDGET["rob"],
        "iq": core_params.iq_size * BIT_BUDGET["iq"],
        "lq": core_params.lq_size * BIT_BUDGET["lq"],
        "sq": core_params.sq_size * BIT_BUDGET["sq"],
        "rf": (core_params.int_regs * BIT_BUDGET["int_reg"]
               + core_params.fp_regs * BIT_BUDGET["fp_reg"]),
        "fu": 0,
    }


class _LiveBits:
    """live(c) = Σ bits of intervals covering cycle c, via prefix sums."""

    def __init__(self, intervals: Iterable[Tuple[int, int, int]]):
        deltas: Dict[int, int] = {}
        for start, end, bits in intervals:
            deltas[start] = deltas.get(start, 0) + bits
            deltas[end] = deltas.get(end, 0) - bits
        self.cycles: List[int] = sorted(deltas)
        self.levels: List[int] = []
        acc = 0
        for c in self.cycles:
            acc += deltas[c]
            self.levels.append(acc)

    def live(self, cycle: int) -> int:
        idx = bisect_right(self.cycles, cycle) - 1
        if idx < 0:
            return 0
        return self.levels[idx]


@dataclass
class InjectionResult:
    """Outcome of one fault-injection campaign."""

    trials: int
    hits: int
    #: struck-and-ACE counts per structure
    hits_by_structure: Dict[str, int] = field(default_factory=dict)
    trials_by_structure: Dict[str, int] = field(default_factory=dict)

    @property
    def empirical_avf(self) -> float:
        return self.hits / self.trials if self.trials else 0.0

    def structure_avf(self, structure: str) -> float:
        t = self.trials_by_structure.get(structure, 0)
        return self.hits_by_structure.get(structure, 0) / t if t else 0.0


class FaultInjector:
    """Samples random bit strikes against one simulation's ACE record.

    Args:
        intervals: the accountant's recorded (structure, start, end, bits)
            tuples (simulate with ``record_intervals=True``).
        core_params: sizing used to weight strikes across structures.
        cycles: simulated duration T (strikes sample cycle ∈ [0, T)).
        seed: RNG seed for reproducible campaigns.
    """

    def __init__(self, intervals, core_params, cycles: int, seed: int = 1):
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        self.cycles = cycles
        self.bits = structure_bits(core_params)
        self._rng = random.Random(seed)
        per_struct: Dict[str, List[Tuple[int, int, int]]] = {
            s: [] for s in STRUCTURES
        }
        for structure, start, end, bits in intervals:
            per_struct[structure].append((start, end, bits))
        self._live = {s: _LiveBits(v) for s, v in per_struct.items()}
        total = sum(self.bits.values())
        if total <= 0:
            raise ValueError("no unprotected bits to strike")
        self._weights = [(s, self.bits[s] / total) for s in STRUCTURES
                         if self.bits[s] > 0]

    def _pick_structure(self) -> str:
        x = self._rng.random()
        acc = 0.0
        for s, w in self._weights:
            acc += w
            if x < acc:
                return s
        return self._weights[-1][0]

    def strike(self) -> Tuple[str, bool]:
        """One random strike; returns (structure, was_ACE)."""
        s = self._pick_structure()
        cycle = self._rng.randrange(self.cycles)
        live = self._live[s].live(cycle)
        hit = self._rng.random() < live / self.bits[s]
        return s, hit

    def run(self, trials: int = 10_000) -> InjectionResult:
        """A campaign of ``trials`` independent strikes."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        result = InjectionResult(trials=trials, hits=0)
        for _ in range(trials):
            s, hit = self.strike()
            result.trials_by_structure[s] = \
                result.trials_by_structure.get(s, 0) + 1
            if hit:
                result.hits += 1
                result.hits_by_structure[s] = \
                    result.hits_by_structure.get(s, 0) + 1
        return result
