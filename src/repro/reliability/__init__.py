"""Soft-error reliability methodology (ACE analysis, Section IV-B),
plus the fault-injection and AVF-timeline extensions."""

from repro.reliability.ace import AceAccountant, BlockedWindows
from repro.reliability.fault_injection import (
    FaultInjector,
    InjectionResult,
    structure_bits,
)
from repro.reliability.metrics import (
    ReliabilityReport,
    abc_total,
    avf,
    fit,
    mttf_relative,
    normalized_abc,
)
from repro.reliability.protection import (
    ProtectionPlan,
    cheapest_plan_for_target,
    mttf_gain,
    residual_abc,
)
from repro.reliability.timeline import avf_timeline

__all__ = [
    "AceAccountant",
    "BlockedWindows",
    "FaultInjector",
    "InjectionResult",
    "structure_bits",
    "ReliabilityReport",
    "abc_total",
    "avf",
    "fit",
    "mttf_relative",
    "normalized_abc",
    "avf_timeline",
    "ProtectionPlan",
    "residual_abc",
    "mttf_gain",
    "cheapest_plan_for_target",
]
