"""Windowed AVF timelines from recorded ACE intervals.

Soft-error vulnerability has strong phase behaviour (the paper cites
characterisation work on exactly this): AVF spikes while the back-end
drains long-latency misses and collapses during compute phases. This
module turns an ``AceAccountant``'s recorded intervals into a per-window
AVF series, suitable for plotting or for windowed-vulnerability-bound
style analyses (cf. Soundararajan et al.'s AVF-bounded throttling).
"""

from typing import Iterable, List, Tuple


def avf_timeline(
    intervals: Iterable[Tuple[str, int, int, int]],
    total_bits: int,
    cycles: int,
    window: int = 1000,
) -> List[Tuple[int, float]]:
    """Per-window AVF over the run.

    Args:
        intervals: recorded (structure, start, end, bits) charges
            (simulate with ``record_ace_intervals=True``).
        total_bits: the machine's unprotected-bit count N.
        cycles: simulated duration T.
        window: window length in cycles.

    Returns:
        [(window_start_cycle, avf), ...] covering [0, cycles).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if total_bits <= 0 or cycles <= 0:
        raise ValueError("total_bits and cycles must be positive")
    n_windows = (cycles + window - 1) // window
    acc = [0] * n_windows
    for _structure, start, end, bits in intervals:
        start = max(0, start)
        end = min(end, cycles)
        w = start // window
        while start < end:
            boundary = min(end, (w + 1) * window)
            acc[w] += bits * (boundary - start)
            start = boundary
            w += 1
    out: List[Tuple[int, float]] = []
    for w in range(n_windows):
        span = min(window, cycles - w * window)
        out.append((w * window, acc[w] / (total_bits * span)))
    return out
