"""What-if modelling of circuit-level protection (Section VI-A).

The paper's related work discusses protecting core structures directly:
parity/ECC on latency-sensitive structures costs area, power and cycle
time (CLEAR reports ~14% area/power for parity on an OoO core), which is
why the paper pursues a microarchitectural mechanism instead. This module
answers the complementary question: *if* a designer protected some subset
of structures, what residual vulnerability would remain — and how does
that compare with deploying RAR?

The model is exact within ACE methodology: protecting a structure removes
its ACE contribution (detection+correction makes its bits non-vulnerable);
the listed overheads are the literature's first-order costs, provided so
studies can weigh MTTF against area/cycle-time budgets.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping

from repro.reliability.ace import STRUCTURES

#: First-order cost estimates for parity/ECC on core structures, from the
#: literature the paper cites (CLEAR, Stojanovic et al.): fractional area
#: overhead and whether the structure is cycle-time critical.
PROTECTION_COSTS: Dict[str, Dict[str, float]] = {
    "rob": {"area": 0.05, "latency_critical": 1.0},
    "iq": {"area": 0.04, "latency_critical": 1.0},
    "lq": {"area": 0.02, "latency_critical": 0.0},
    "sq": {"area": 0.02, "latency_critical": 0.0},
    "rf": {"area": 0.03, "latency_critical": 1.0},
    "fu": {"area": 0.02, "latency_critical": 1.0},
}


@dataclass(frozen=True)
class ProtectionPlan:
    """A set of structures to protect with detection/correction codes."""

    structures: FrozenSet[str]

    def __post_init__(self) -> None:
        unknown = self.structures - set(STRUCTURES)
        if unknown:
            raise ValueError(f"unknown structures: {sorted(unknown)}")

    @classmethod
    def of(cls, *structures: str) -> "ProtectionPlan":
        return cls(frozenset(structures))

    @property
    def area_overhead(self) -> float:
        """Summed fractional area cost of the plan."""
        return sum(PROTECTION_COSTS[s]["area"] for s in self.structures)

    @property
    def touches_cycle_time(self) -> bool:
        """True when any protected structure is latency-critical — the
        showstopper the paper cites for ROB/IQ/RF coding."""
        return any(PROTECTION_COSTS[s]["latency_critical"] > 0
                   for s in self.structures)


def residual_abc(abc: Mapping[str, int], plan: ProtectionPlan) -> int:
    """ABC remaining after the plan's structures become non-vulnerable."""
    return sum(v for s, v in abc.items() if s not in plan.structures)


def mttf_gain(abc: Mapping[str, int], plan: ProtectionPlan) -> float:
    """MTTF improvement factor from protection alone (same runtime)."""
    total = sum(abc.values())
    rest = residual_abc(abc, plan)
    if total <= 0:
        raise ValueError("ABC must be positive")
    return float("inf") if rest == 0 else total / rest


def rank_single_structures(abc: Mapping[str, int]) -> Iterable[str]:
    """Structures in decreasing order of protection payoff."""
    return sorted((s for s in abc), key=lambda s: abc[s], reverse=True)


def cheapest_plan_for_target(abc: Mapping[str, int],
                             target_gain: float) -> ProtectionPlan:
    """Greedy minimal-area plan achieving at least ``target_gain`` MTTF.

    Greedily protects the structure with the best remaining
    ABC-removed-per-area ratio until the target is met.
    """
    if target_gain <= 1.0:
        return ProtectionPlan(frozenset())
    chosen: set = set()
    while True:
        plan = ProtectionPlan(frozenset(chosen))
        if mttf_gain(abc, plan) >= target_gain:
            return plan
        candidates = [s for s in abc if s not in chosen and abc[s] > 0]
        if not candidates:
            raise ValueError(
                f"target {target_gain}x unreachable even with full protection")
        best = max(candidates,
                   key=lambda s: abc[s] / PROTECTION_COSTS[s]["area"])
        chosen.add(best)
