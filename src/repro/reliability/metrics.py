"""Reliability metrics: ABC, AVF, FIT, MTTF (Section IV-B).

All equations follow the paper:

    ABC  = Σ_i ACE_i                      (total ACE bit-cycles)
    AVF  = ABC / (N × T)                  (N = unprotected bits, T = cycles)
    FIT  = AVF × raw_error_rate
    MTTF = 1 / FIT

Absolute FIT/MTTF depend on the raw (circuit/environment) error rate, so
results are reported *normalised to the OoO baseline*, where the raw rate
and N cancel:

    MTTF_rel = AVF_base / AVF_variant = (ABC_base × T_variant) /
                                        (ABC_variant × T_base)
"""

from dataclasses import dataclass
from typing import Dict


def abc_total(bits: Dict[str, int]) -> int:
    """Sum the per-structure ACE bit-cycles into a single ABC value."""
    return sum(bits.values())


def avf(abc: float, total_bits: int, cycles: int) -> float:
    """Architectural Vulnerability Factor in [0, 1]."""
    if total_bits <= 0 or cycles <= 0:
        raise ValueError("total_bits and cycles must be positive")
    return abc / (total_bits * cycles)


def fit(avf_value: float, raw_error_rate: float = 1.0) -> float:
    """Failures-in-time; proportional to AVF (eq. 4)."""
    return avf_value * raw_error_rate


def mttf_relative(abc_base: float, cycles_base: int,
                  abc_variant: float, cycles_variant: int) -> float:
    """Variant MTTF normalised to the baseline (higher is better)."""
    if abc_variant <= 0:
        return float("inf")
    return (abc_base * cycles_variant) / (abc_variant * cycles_base)


def normalized_abc(abc_base: float, abc_variant: float) -> float:
    """Variant ABC relative to baseline (lower is better)."""
    if abc_base <= 0:
        raise ValueError("baseline ABC must be positive")
    return abc_variant / abc_base


@dataclass(frozen=True)
class ReliabilityReport:
    """Derived reliability numbers for one simulation, vs. a baseline."""

    abc: int
    cycles: int
    total_bits: int
    abc_rel: float
    mttf_rel: float

    @classmethod
    def from_runs(cls, base_abc: int, base_cycles: int, abc: int,
                  cycles: int, total_bits: int) -> "ReliabilityReport":
        return cls(
            abc=abc,
            cycles=cycles,
            total_bits=total_bits,
            abc_rel=normalized_abc(base_abc, abc),
            mttf_rel=mttf_relative(base_abc, base_cycles, abc, cycles),
        )

    @property
    def avf(self) -> float:
        return avf(self.abc, self.total_bits, self.cycles)

    @property
    def abc_improvement_pct(self) -> float:
        """Percent ABC reduction vs. baseline (paper's '81.4%' style)."""
        return (1.0 - self.abc_rel) * 100.0
