"""ACE bit accounting (Mukherjee et al., as configured in Section IV).

An *ACE bit-cycle* is one bit of microarchitectural state that must be
correct, held for one cycle. Charging happens at commit time, per
structure, over the intervals of Figure 2:

- ROB entry: dispatch → commit (120 bits)
- IQ entry: dispatch → issue (80 bits)
- LQ entry: execute → commit (120 bits); SQ entry: 184 bits
- physical register: writeback → commit (64/128 bits)
- functional unit: width × execution cycles

Only instances that architecturally commit are charged. NOPs, wrong-path
uops, runahead-speculative uops and every squashed instance (mispredict
recovery, FLUSH, runahead-exit flush) are un-ACE — this single rule is what
makes flushing-at-exit a reliability optimisation.

:class:`BlockedWindows` implements the Figure 5 attribution experiments:
the total ACE charge that falls inside "ROB head blocked by an LLC miss"
windows and inside "full-ROB stall" windows.
"""

from bisect import bisect_left, bisect_right
from typing import Dict, List

from repro.common.params import BIT_BUDGET
from repro.isa.uop import DynUop

STRUCTURES = ("rob", "iq", "lq", "sq", "rf", "fu")


class BlockedWindows:
    """Disjoint, append-only set of [start, end) cycle windows.

    Supports O(log n) overlap queries via prefix sums; used to attribute
    ACE charge to the miss-shadow windows of Figure 5.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._prefix: List[int] = [0]  # cumulative window length
        self._open_start = -1

    def open(self, cycle: int) -> None:
        if self._open_start < 0:
            self._open_start = cycle

    @property
    def is_open(self) -> bool:
        return self._open_start >= 0

    def close(self, cycle: int) -> None:
        if self._open_start < 0:
            return
        start = self._open_start
        self._open_start = -1
        if cycle <= start:
            return
        if self._starts and start < self._ends[-1]:
            # Merge with the previous window if they touch/overlap.
            start = max(start, self._ends[-1])
            if cycle <= start:
                return
        self._starts.append(start)
        self._ends.append(cycle)
        self._prefix.append(self._prefix[-1] + (cycle - start))

    def overlap(self, a: int, b: int) -> int:
        """Total window time intersecting [a, b); includes an open window."""
        if b <= a:
            return 0
        total = 0
        starts = self._starts
        # Common case in unblocked phases: nothing recorded yet.
        if not starts:
            if self._open_start >= 0 and b > self._open_start:
                return b - max(a, self._open_start)
            return 0
        ends, prefix = self._ends, self._prefix
        if starts:
            # Windows with end > a and start < b intersect [a, b).
            lo = bisect_right(ends, a)
            hi = bisect_left(starts, b)
            if hi > lo:
                total += prefix[hi] - prefix[lo]
                if starts[lo] < a:  # clip partial overlap at the left edge
                    total -= a - starts[lo]
                if ends[hi - 1] > b:  # clip at the right edge
                    total -= ends[hi - 1] - b
        if self._open_start >= 0 and b > self._open_start:
            total += b - max(a, self._open_start)
        return total

    @property
    def total_time(self) -> int:
        return self._prefix[-1]

    @property
    def count(self) -> int:
        return len(self._starts)


class AceAccountant:
    """Accumulates ACE bit-cycles per structure as uops commit.

    With ``record_intervals=True`` every charged (structure, start, end,
    bits) interval is also retained, enabling post-hoc analyses such as
    Monte-Carlo fault injection (``repro.reliability.fault_injection``)
    and windowed AVF timelines.
    """

    def __init__(self, fu_exec_cycles, record_intervals: bool = False) -> None:
        """``fu_exec_cycles(cls) -> int`` maps uop class to FU occupancy."""
        self.bits: Dict[str, int] = {s: 0 for s in STRUCTURES}
        self._fu_exec_cycles = fu_exec_cycles
        # Per-structure bit widths, hoisted out of the commit hot path.
        self._b_rob = BIT_BUDGET["rob"]
        self._b_iq = BIT_BUDGET["iq"]
        self._b_lq = BIT_BUDGET["lq"]
        self._b_sq = BIT_BUDGET["sq"]
        self._b_int_reg = BIT_BUDGET["int_reg"]
        self._b_fp_reg = BIT_BUDGET["fp_reg"]
        self._b_int_fu = BIT_BUDGET["int_fu"]
        self._b_fp_fu = BIT_BUDGET["fp_fu"]
        #: Figure 5 attribution targets
        self.head_blocked = BlockedWindows()
        self.full_stall = BlockedWindows()
        self.bits_in_head_blocked = 0
        self.bits_in_full_stall = 0
        self.committed_charged = 0
        self.record_intervals = record_intervals
        #: (structure, start_cycle, end_cycle, bits) when recording
        self.intervals: List[tuple] = []

    def _charge(self, structure: str, start: int, end: int,
                bits_per_entry: int) -> None:
        if end <= start:
            return
        self.bits[structure] += bits_per_entry * (end - start)
        self.bits_in_head_blocked += (
            bits_per_entry * self.head_blocked.overlap(start, end))
        self.bits_in_full_stall += (
            bits_per_entry * self.full_stall.overlap(start, end))
        if self.record_intervals:
            self.intervals.append((structure, start, end, bits_per_entry))

    def charge_commit(self, uop: DynUop) -> None:
        """Charge a committing, correct-path uop (the only ACE case)."""
        st = uop.static
        if st.cls == 0:  # NOP: architecturally dead, un-ACE by definition
            return
        d, i, w, c = (uop.dispatch_cycle, uop.issue_cycle, uop.done_cycle,
                      uop.commit_cycle)

        self._charge("rob", d, c, self._b_rob)
        if i >= 0:
            self._charge("iq", d, i, self._b_iq)
            if st.is_load:
                self._charge("lq", i, c, self._b_lq)
            elif st.is_store:
                self._charge("sq", i, c, self._b_sq)
        if st.has_dest and w >= 0:
            self._charge("rf", w, c,
                         self._b_fp_reg if st.is_fp else self._b_int_reg)
        # Functional units: width × execution cycles, anchored at issue.
        fu_start = i if i >= 0 else d
        self._charge("fu", fu_start, fu_start + self._fu_exec_cycles(st.cls),
                     self._b_fp_fu if st.is_fp else self._b_int_fu)
        self.committed_charged += 1

    @property
    def total(self) -> int:
        return sum(self.bits.values())

    def avf(self, total_bits: int, cycles: int) -> float:
        """AVF = ABC / (N × T), 0.0 when the exposure volume is empty."""
        denom = total_bits * cycles
        return self.total / denom if denom else 0.0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.bits)
