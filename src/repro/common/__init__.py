"""Shared configuration, enums and utilities for the simulator."""

from repro.common.enums import Mode, SquashCause, UopClass
from repro.common.params import (
    BASELINE,
    BIT_BUDGET,
    CORE1,
    CORE2,
    CORE3,
    CORE4,
    CacheParams,
    CoreParams,
    DramParams,
    MachineParams,
    PrefetcherParams,
)

__all__ = [
    "Mode",
    "SquashCause",
    "UopClass",
    "CoreParams",
    "CacheParams",
    "DramParams",
    "PrefetcherParams",
    "MachineParams",
    "BASELINE",
    "CORE1",
    "CORE2",
    "CORE3",
    "CORE4",
    "BIT_BUDGET",
]
