"""Machine configuration parameters.

Encodes the paper's Table I (four scaled core generations), Table II (the
baseline out-of-order core, modelled after Precise Runahead Execution's
setup) and Table III (per-entry bit budgets used by the ACE model).

All parameter containers are frozen dataclasses so configurations are
hashable and can be used as keys in the experiment result cache.
"""

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.common.enums import UopClass

#: Default committed-instruction budgets shared by every run entry point
#: (``simulate()``, ``ExperimentRunner``, the CLI). Warmup simulates this
#: many instructions before counters reset — enough for the caches, the
#: branch predictor and the SST to reach steady state on the catalog
#: workloads. Historically ``ExperimentRunner`` defaulted to a shorter
#: 5,000-instruction warmup than ``simulate()``, which made cached sweep
#: results silently incomparable with direct ``simulate()`` calls; both
#: now share these constants.
DEFAULT_INSTRUCTIONS = 30_000
DEFAULT_WARMUP = 20_000

#: Bits of vulnerable state per entry in each back-end structure (Table III)
#: and per register class (Table II).  Functional-unit widths are charged
#: per execution cycle.
BIT_BUDGET: Dict[str, int] = {
    "rob": 120,
    "iq": 80,
    "lq": 120,
    "sq": 184,
    "int_reg": 64,
    "fp_reg": 128,
    "int_fu": 64,
    "fp_fu": 128,
}


@dataclass(frozen=True)
class FuParams:
    """One functional-unit class: how many units, and its latency.

    ``pipelined`` units accept a new uop every cycle; non-pipelined units
    (dividers) are busy for the full latency.
    """

    count: int
    latency: int
    pipelined: bool = True


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core sizing (Tables I and II)."""

    rob_size: int = 192
    iq_size: int = 92
    lq_size: int = 64
    sq_size: int = 64
    int_regs: int = 168
    fp_regs: int = 168
    width: int = 4
    #: Front-end depth in stages; a redirect (mispredict, flush refetch)
    #: costs this many cycles before new uops reach dispatch.
    frontend_depth: int = 8
    #: Number of architectural registers per class; the rename substrate
    #: reserves this many physical registers for committed state.
    arch_regs: int = 32
    #: 4-bit countdown timer used by the early-start trigger (Section III-D).
    head_timer_init: int = 15
    #: TR only triggers if the blocking load was issued to memory fewer than
    #: this many cycles before the full-window stall (Section V-D).
    tr_recency_cycles: int = 250
    #: Stalling Slice Table size (PRE), fully associative.
    sst_size: int = 128
    #: Precise Register Deallocation Queue size (PRE).
    prdq_size: int = 192
    fus: Tuple[Tuple[int, FuParams], ...] = (
        (int(UopClass.INT_ADD), FuParams(count=3, latency=1)),
        (int(UopClass.INT_MUL), FuParams(count=1, latency=3)),
        (int(UopClass.INT_DIV), FuParams(count=1, latency=18, pipelined=False)),
        (int(UopClass.FP_ADD), FuParams(count=1, latency=3)),
        (int(UopClass.FP_MUL), FuParams(count=1, latency=5)),
        (int(UopClass.FP_DIV), FuParams(count=1, latency=6, pipelined=False)),
    )

    def fu_params(self) -> Dict[int, FuParams]:
        return dict(self.fus)

    @property
    def total_bits(self) -> int:
        """Total unprotected back-end bits N, used in the AVF denominator."""
        return (
            self.rob_size * BIT_BUDGET["rob"]
            + self.iq_size * BIT_BUDGET["iq"]
            + self.lq_size * BIT_BUDGET["lq"]
            + self.sq_size * BIT_BUDGET["sq"]
            + self.int_regs * BIT_BUDGET["int_reg"]
            + self.fp_regs * BIT_BUDGET["fp_reg"]
        )


@dataclass(frozen=True)
class CacheParams:
    """One cache level (sizes in bytes, latency in core cycles)."""

    size: int
    assoc: int
    latency: int
    line_size: int = 64
    mshrs: int = 0  # 0 means unlimited

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)


@dataclass(frozen=True)
class DramParams:
    """Protocol-parameterised memory timing, expressed in *core* cycles.

    Defaults approximate DDR3-1600 behind a 2.66 GHz core: the paper's
    tRP-tCL-tRCD of 11-11-11 memory cycles at 800 MHz maps to ~36 core
    cycles each (2.66 GHz / 800 MHz ≈ 3.3×). Other protocols (DDR4,
    LPDDR4, HBM2) are generated from :class:`repro.memory.dram.DramProtocol`
    presets, which convert device timings at the device clock into these
    core-cycle fields.

    The defaults — one channel, refresh disabled, ``fcfs`` scheduling,
    row-interleaved mapping — reproduce the original single-protocol model
    bit for bit; the 25-point golden gate pins that contract.
    """

    ranks: int = 4
    banks_per_rank: int = 8
    row_size: int = 4096
    #: Activate (tRCD), precharge (tRP) and CAS (tCL) in core cycles.
    t_rcd: int = 36
    t_rp: int = 36
    t_cl: int = 36
    #: Minimum gap between data bursts on the shared bus (bandwidth model);
    #: doubles as tCCD, the back-to-back column-read spacing.
    bus_cycles_per_access: int = 4
    #: Fixed controller/interconnect overhead per access.
    controller_latency: int = 20
    #: Protocol preset label (informational; the timing fields above are
    #: already resolved to core cycles when a preset is instantiated).
    protocol: str = "ddr3-1600"
    #: Independent channels, each with its own banks and data bus.
    channels: int = 1
    #: Refresh: every ``t_refi`` core cycles each bank is blocked for
    #: ``t_rfc`` cycles and its row buffer closes. ``t_refi=0`` disables
    #: refresh entirely (the seed-compatible default).
    t_rfc: int = 0
    t_refi: int = 0
    #: Request scheduling policy: "fcfs" (arrival order, the default) or
    #: "frfcfs" (row-hit-first with an age-based starvation cap).
    scheduler: str = "fcfs"
    #: Address mapping policy: "row" (row-interleaved, the default) or
    #: "xor" (bank/channel bits XOR-permuted with low row bits).
    mapping: str = "row"
    #: FR-FCFS only: a row hit may not bypass any queued request older
    #: than this many cycles.
    frfcfs_cap: int = 512

    @property
    def num_banks(self) -> int:
        """Banks per channel (ranks × banks-per-rank)."""
        return self.ranks * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        return self.num_banks * self.channels

    @property
    def row_hit_latency(self) -> int:
        return self.controller_latency + self.t_cl

    @property
    def row_miss_latency(self) -> int:
        return self.controller_latency + self.t_rp + self.t_rcd + self.t_cl

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate data-bus ceiling in bytes per core cycle (64 B lines)."""
        return self.channels * 64.0 / self.bus_cycles_per_access


@dataclass(frozen=True)
class PrefetcherParams:
    """Stream/stride prefetcher configuration (Section V-F).

    Defaults model the paper's "aggressive" 16-stream prefetcher: once a
    stream is confident, issue ``degree`` lines starting ``distance``
    strides ahead of the stream head on every training access.
    """

    streams: int = 16
    degree: int = 4
    distance: int = 8
    #: Cache levels the prefetcher trains at and fills into:
    #: ("l3",) for the +L3 configuration, ("l1", "l2", "l3") for +ALL.
    levels: Tuple[str, ...] = ("l3",)
    #: Maximum in-flight hardware prefetches (separate from demand MSHRs).
    queue: int = 16


@dataclass(frozen=True)
class MachineParams:
    """A complete machine: core + cache hierarchy + DRAM (+ prefetcher)."""

    name: str = "baseline"
    core: CoreParams = field(default_factory=CoreParams)
    l1i: CacheParams = field(default_factory=lambda: CacheParams(32 * 1024, 4, 2))
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 8, 4, mshrs=20)
    )
    l2: CacheParams = field(default_factory=lambda: CacheParams(256 * 1024, 8, 8))
    l3: CacheParams = field(default_factory=lambda: CacheParams(1024 * 1024, 16, 30))
    dram: DramParams = field(default_factory=DramParams)
    prefetcher: Optional[PrefetcherParams] = None
    #: When set, virtual pages are mapped to pseudo-random physical frames
    #: (deterministic in the seed) before DRAM address decoding — modelling
    #: OS page allocation, which breaks the perfect row-buffer locality
    #: that identity mapping gives to large streams. None = identity
    #: mapping (the default used throughout the paper reproduction).
    page_shuffle_seed: Optional[int] = None

    def with_core(self, core: CoreParams, name: Optional[str] = None) -> "MachineParams":
        return replace(self, core=core, name=name or self.name)

    def with_prefetcher(
        self, prefetcher: PrefetcherParams, name: Optional[str] = None
    ) -> "MachineParams":
        return replace(self, prefetcher=prefetcher, name=name or self.name)

    def with_dram(
        self, dram: DramParams, name: Optional[str] = None
    ) -> "MachineParams":
        return replace(self, dram=dram, name=name or self.name)


def _scaled_core(rob: int, iq: int, lq: int, sq: int, regs: int) -> CoreParams:
    return CoreParams(
        rob_size=rob, iq_size=iq, lq_size=lq, sq_size=sq, int_regs=regs, fp_regs=regs
    )


#: Table I — four OoO core generations (Nehalem→Ice Lake-like scaling).
CORE1 = MachineParams(name="core-1", core=_scaled_core(128, 36, 48, 32, 120))
CORE2 = MachineParams(name="core-2", core=_scaled_core(192, 92, 64, 64, 168))
CORE3 = MachineParams(name="core-3", core=_scaled_core(224, 97, 64, 60, 180))
CORE4 = MachineParams(name="core-4", core=_scaled_core(352, 128, 128, 72, 256))

#: Table II — the baseline machine used throughout the evaluation
#: (identical core sizing to CORE2).
BASELINE = MachineParams(name="baseline", core=CORE2.core)

SCALED_MACHINES: Tuple[MachineParams, ...] = (CORE1, CORE2, CORE3, CORE4)
