"""Enumerations shared across the simulator.

The integer values matter for speed: hot-path code compares against the
``int`` value of these enums directly, so they are ``IntEnum`` subclasses.
"""

from enum import IntEnum


class UopClass(IntEnum):
    """Micro-op classes understood by the core and the FU pool.

    The class determines the functional unit used, its latency, and how the
    ACE model charges functional-unit bits (64-bit integer units vs.
    128-bit floating-point units, per Table II of the paper).
    """

    NOP = 0
    INT_ADD = 1
    INT_MUL = 2
    INT_DIV = 3
    FP_ADD = 4
    FP_MUL = 5
    FP_DIV = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9
    #: flag-setting compare/test: executes on an integer ALU but writes no
    #: renamed register (keeps realistic dest density ~65-70%)
    INT_CMP = 10

    @property
    def is_mem(self) -> bool:
        return self in (UopClass.LOAD, UopClass.STORE)

    @property
    def is_fp(self) -> bool:
        return self in (UopClass.FP_ADD, UopClass.FP_MUL, UopClass.FP_DIV)

    @property
    def has_dest(self) -> bool:
        """Whether a uop of this class writes a destination register."""
        return self not in (UopClass.NOP, UopClass.STORE, UopClass.BRANCH,
                            UopClass.INT_CMP)


#: uop class -> FU class actually used, indexable by ``int(UopClass)``.
#: Loads, stores, branches and compares execute on an integer-add unit
#: (address generation / condition evaluation); NOPs are charged to the
#: integer adder for latency-table purposes but never reach the IQ.
FU_CLASS = tuple(
    int({
        UopClass.NOP: UopClass.INT_ADD,
        UopClass.INT_ADD: UopClass.INT_ADD,
        UopClass.INT_MUL: UopClass.INT_MUL,
        UopClass.INT_DIV: UopClass.INT_DIV,
        UopClass.FP_ADD: UopClass.FP_ADD,
        UopClass.FP_MUL: UopClass.FP_MUL,
        UopClass.FP_DIV: UopClass.FP_DIV,
        UopClass.LOAD: UopClass.INT_ADD,
        UopClass.STORE: UopClass.INT_ADD,
        UopClass.BRANCH: UopClass.INT_ADD,
        UopClass.INT_CMP: UopClass.INT_ADD,
    }[c])
    for c in UopClass
)

#: ``has_dest``/``is_fp`` by ``int(UopClass)`` — the hot path reads these
#: tables (via precomputed :class:`repro.isa.uop.StaticUop` slots) instead
#: of re-deriving the class properties per call.
HAS_DEST = tuple(bool(c.has_dest) for c in UopClass)
IS_FP = tuple(bool(c.is_fp) for c in UopClass)


class Mode(IntEnum):
    """Execution mode of the core."""

    NORMAL = 0
    RUNAHEAD = 1
    #: Pipeline drained by the FLUSH (Weaver et al.) mechanism, waiting for
    #: the blocking load to return before refetching.
    FLUSH_STALL = 2


class SquashCause(IntEnum):
    """Why a dynamic uop instance was squashed.

    Every squashed instance is un-ACE regardless of cause; the cause is kept
    for attribution statistics and tests.
    """

    NONE = 0
    BRANCH_MISPREDICT = 1
    RUNAHEAD_EXIT_FLUSH = 2
    FLUSH_MECHANISM = 3
    RUNAHEAD_SPECULATIVE = 4
    END_OF_SIM = 5
