"""Small filesystem helpers shared by the cache and artifact writers."""

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_json"]


def atomic_write_json(path: str, payload: Any, indent=None) -> None:
    """Write JSON so readers never observe a partial file.

    The payload is serialised to a unique temp file in the destination
    directory (same filesystem, so the final ``os.replace`` is atomic),
    fsynced, then renamed over ``path``. A crash or interrupt mid-write
    leaves the previous file intact; concurrent writers last-write-win
    at whole-file granularity instead of interleaving.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, indent=indent)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
