"""Small filesystem helpers shared by the cache and artifact writers."""

import json
import os
import tempfile
from typing import Any, Iterator, List

__all__ = ["atomic_write_json", "append_jsonl", "iter_jsonl", "read_jsonl"]


def atomic_write_json(path: str, payload: Any, indent=None) -> None:
    """Write JSON so readers never observe a partial file.

    The payload is serialised to a unique temp file in the destination
    directory (same filesystem, so the final ``os.replace`` is atomic),
    fsynced, then renamed over ``path``. A crash or interrupt mid-write
    leaves the previous file intact; concurrent writers last-write-win
    at whole-file granularity instead of interleaving.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, indent=indent)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_jsonl(path: str, record: Any) -> None:
    """Append one JSON record as a single line, multi-writer safe.

    The serialised line is written with one ``os.write`` on an
    ``O_APPEND`` descriptor, so concurrent appenders (sweep pool
    workers) emit whole lines that never interleave — POSIX guarantees
    append-mode writes are atomic for a single ``write`` call of this
    size. Newlines inside the record are impossible (JSON escapes
    them), so the file stays one record per line.
    """
    line = json.dumps(record, separators=(",", ":"),
                      default=str) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def iter_jsonl(path: str) -> Iterator[Any]:
    """Yield records from a JSONL file, tolerating a torn tail.

    A reader tailing a file that a crashed (or still-running) writer
    appends to may observe a partial final line; it is skipped rather
    than raised so live monitors and post-mortem summaries degrade
    gracefully. A corrupt line *followed by* valid ones still raises —
    that is real corruption, not an in-flight append.
    """
    with open(path, encoding="utf-8") as f:
        pending_error = None
        for line in f:
            if pending_error is not None:
                raise pending_error
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as e:
                pending_error = ValueError(
                    f"{path}: corrupt JSONL line: {e}")


def read_jsonl(path: str) -> List[Any]:
    """All records of a JSONL file as a list (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(path))
