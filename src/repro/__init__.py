"""repro — Reliability-Aware Runahead (HPCA 2022) in Python.

A cycle-level out-of-order core simulator with ACE-bit soft-error
accounting and the full runahead design space of the paper: FLUSH, TR,
TR-EARLY, PRE, PRE-EARLY, RAR-LATE and RAR.

Quickstart::

    from repro import simulate, BASELINE, OOO, RAR

    base = simulate("mcf", BASELINE, OOO, instructions=20_000)
    rar = simulate("mcf", BASELINE, RAR, instructions=20_000)
    print(f"IPC {rar.ipc_rel(base):.2f}x, MTTF {rar.mttf_rel(base):.1f}x")
"""

from repro.analysis.experiments import ExperimentRunner
from repro.analysis.stats import amean, gmean, hmean
from repro.checkpoint import Checkpoint, simulate_from, warm_checkpoint
from repro.common.params import (
    BASELINE,
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    CORE1,
    CORE2,
    CORE3,
    CORE4,
    CacheParams,
    CoreParams,
    DramParams,
    MachineParams,
    PrefetcherParams,
)
from repro.core.core import OutOfOrderCore
from repro.obs import Telemetry
from repro.core.runahead import (
    ALL_POLICIES,
    EXTENSION_POLICIES,
    FLUSH,
    OOO,
    PRE,
    PRE_EARLY,
    RA_BUFFER,
    RAR,
    RAR_LATE,
    THROTTLE,
    TR,
    TR_EARLY,
    VEC_RAR,
    RunaheadPolicy,
    get_policy,
)
from repro.sim import SimResult, simulate
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    COMPUTE_WORKLOADS,
    EXTRA_WORKLOADS,
    MEMORY_WORKLOADS,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "SimResult",
    "Checkpoint",
    "warm_checkpoint",
    "simulate_from",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "OutOfOrderCore",
    "Telemetry",
    "ExperimentRunner",
    "RunaheadPolicy",
    "OOO",
    "FLUSH",
    "TR",
    "TR_EARLY",
    "PRE",
    "PRE_EARLY",
    "RAR_LATE",
    "RAR",
    "THROTTLE",
    "RA_BUFFER",
    "VEC_RAR",
    "ALL_POLICIES",
    "EXTENSION_POLICIES",
    "get_policy",
    "MachineParams",
    "CoreParams",
    "CacheParams",
    "DramParams",
    "PrefetcherParams",
    "BASELINE",
    "CORE1",
    "CORE2",
    "CORE3",
    "CORE4",
    "get_workload",
    "workload_names",
    "MEMORY_WORKLOADS",
    "COMPUTE_WORKLOADS",
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "amean",
    "hmean",
    "gmean",
    "__version__",
]
