"""Synthetic SPEC-like workload generators.

SPEC CPU2006/2017 traces are not redistributable, so the evaluation runs on
deterministic synthetic workloads whose *characteristics* (MPKI, dependent
vs. independent misses, branch predictability, instruction mix) are tuned
per benchmark to match the behaviour the paper describes. See DESIGN.md
section 2 for the substitution rationale.
"""

from repro.workloads.base import BranchSpec, SlotSpec, WorkloadSpec, make_body
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    COMPUTE_WORKLOADS,
    MEMORY_WORKLOADS,
    get_workload,
    workload_names,
)
from repro.workloads.patterns import (
    MixPattern,
    PatternSpec,
    PointerChasePattern,
    RandomPattern,
    StreamPattern,
    build_pattern,
)

__all__ = [
    "WorkloadSpec",
    "SlotSpec",
    "BranchSpec",
    "make_body",
    "PatternSpec",
    "StreamPattern",
    "PointerChasePattern",
    "RandomPattern",
    "MixPattern",
    "build_pattern",
    "MEMORY_WORKLOADS",
    "COMPUTE_WORKLOADS",
    "ALL_WORKLOADS",
    "get_workload",
    "workload_names",
]
