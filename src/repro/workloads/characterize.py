"""Programmatic workload characterisation.

The paper classifies benchmarks by their baseline-core behaviour
(MPKI > 8 ⇒ memory-intensive) and reasons about per-benchmark character
(MLP, mispredicts in the miss shadow). This module measures exactly those
properties for any workload — catalog, extended, or user-defined — so a
study can verify a workload behaves as intended before using it.
"""

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.common.params import BASELINE, MachineParams
from repro.sim import simulate
from repro.workloads.base import WorkloadSpec

#: the paper's classification threshold
MPKI_THRESHOLD = 8.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured baseline-core character of one workload."""

    name: str
    ipc: float
    mpki: float
    mlp: float
    mispredicts_per_kinst: float
    head_blocked_share: float

    @property
    def memory_intensive(self) -> bool:
        """The paper's rule: MPKI > 8 on the baseline OoO core."""
        return self.mpki > MPKI_THRESHOLD

    @property
    def character(self) -> str:
        """Coarse label used in reports: how the workload stresses the
        machine. Thresholds follow the catalog's observed clusters."""
        if not self.memory_intensive:
            return "compute-bound"
        if self.mlp < 2.5 and self.mispredicts_per_kinst > 20:
            return "pointer-chasing/branchy"
        if self.mlp >= 2.5:
            return "streaming"
        return "irregular memory-bound"


def characterize(
    workload: Union[str, WorkloadSpec],
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
) -> WorkloadProfile:
    """Measure one workload's baseline character."""
    r = simulate(workload, machine, "OOO",
                 instructions=instructions, warmup=warmup)
    return WorkloadProfile(
        name=r.workload,
        ipc=r.ipc,
        mpki=r.mpki,
        mlp=r.mlp,
        mispredicts_per_kinst=1000.0 * r.branch_mispredicts / r.instructions,
        head_blocked_share=(r.abc_head_blocked / r.abc_total
                            if r.abc_total else 0.0),
    )


def characterize_all(
    workloads: Sequence[Union[str, WorkloadSpec]],
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
) -> List[WorkloadProfile]:
    return [characterize(w, machine, instructions, warmup)
            for w in workloads]
