"""Programmatic workload characterisation.

The paper classifies benchmarks by their baseline-core behaviour
(MPKI > 8 ⇒ memory-intensive) and reasons about per-benchmark character
(MLP, mispredicts in the miss shadow). This module measures exactly those
properties for any workload — catalog, extended, or user-defined — so a
study can verify a workload behaves as intended before using it.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.common.params import BASELINE, MachineParams
from repro.sim import simulate
from repro.workloads.base import WorkloadSpec

#: the paper's classification threshold
MPKI_THRESHOLD = 8.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured baseline-core character of one workload."""

    name: str
    ipc: float
    mpki: float
    mlp: float
    mispredicts_per_kinst: float
    head_blocked_share: float

    @property
    def memory_intensive(self) -> bool:
        """The paper's rule: MPKI > 8 on the baseline OoO core."""
        return self.mpki > MPKI_THRESHOLD

    @property
    def character(self) -> str:
        """Coarse label used in reports: how the workload stresses the
        machine. Thresholds follow the catalog's observed clusters."""
        if not self.memory_intensive:
            return "compute-bound"
        if self.mlp < 2.5 and self.mispredicts_per_kinst > 20:
            return "pointer-chasing/branchy"
        if self.mlp >= 2.5:
            return "streaming"
        return "irregular memory-bound"


def characterize(
    workload: Union[str, WorkloadSpec],
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
) -> WorkloadProfile:
    """Measure one workload's baseline character."""
    r = simulate(workload, machine, "OOO",
                 instructions=instructions, warmup=warmup)
    return WorkloadProfile(
        name=r.workload,
        ipc=r.ipc,
        mpki=r.mpki,
        mlp=r.mlp,
        mispredicts_per_kinst=1000.0 * r.branch_mispredicts / r.instructions,
        head_blocked_share=(r.abc_head_blocked / r.abc_total
                            if r.abc_total else 0.0),
    )


def characterize_all(
    workloads: Sequence[Union[str, WorkloadSpec]],
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
) -> List[WorkloadProfile]:
    return [characterize(w, machine, instructions, warmup)
            for w in workloads]


# ----------------------------------------------------------- auto-tuner
#
# The phased catalog tranche is calibrated, not hand-tuned: each builder
# exposes two monotone dials — hot_fraction (raising it lowers MPKI) and
# data_bias (raising it towards 1 lowers branch mispredicts/kinst) — and
# the tuner bisects each against the per-benchmark targets declared in
# workloads/catalog.py (PHASED_TARGETS). The dials are independent to
# first order (hot_fraction moves cache behaviour, data_bias moves only
# the noise branches' outcomes), so two sequential 1-D searches converge
# where a joint 2-D search would be 10x the simulation cost.

#: |measured − target| ≤ max(REL_TOL·target, ABS_FLOOR) — the documented
#: calibration tolerance (mirrors the warmval tolerance semantics).
MPKI_REL_TOL = 0.15
MPKI_ABS_FLOOR = 1.5
BRMISS_REL_TOL = 0.15
BRMISS_ABS_FLOOR = 1.5

#: bisection iteration budget per dial; each iteration is one bench-sized
#: simulate() call, so a full workload calibrates in ≤ 2·MAX_ITERS runs.
MAX_ITERS = 9

#: search ranges. hot_fraction stays below 1 (hot_mix requires it) and
#: above 0.5 (below that the workload saturates the DRAM model and MPKI
#: stops responding); data_bias spans even-coin to fully-predictable.
HOT_RANGE = (0.5, 0.995)
BIAS_RANGE = (0.5, 0.995)


def _within(measured: float, target: float, rel: float,
            floor: float) -> bool:
    return abs(measured - target) <= max(rel * target, floor)


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of auto-tuning one phased workload."""

    name: str
    hot_fraction: float
    data_bias: float
    mpki_target: float
    mpki_measured: float
    brmiss_target: float
    brmiss_measured: float
    iterations: int
    converged: bool

    @property
    def mpki_ok(self) -> bool:
        return _within(self.mpki_measured, self.mpki_target,
                       MPKI_REL_TOL, MPKI_ABS_FLOOR)

    @property
    def brmiss_ok(self) -> bool:
        return _within(self.brmiss_measured, self.brmiss_target,
                       BRMISS_REL_TOL, BRMISS_ABS_FLOOR)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "params": {"hot_fraction": self.hot_fraction,
                       "data_bias": self.data_bias},
            "mpki": {"target": self.mpki_target,
                     "measured": self.mpki_measured,
                     "tolerance": max(MPKI_REL_TOL * self.mpki_target,
                                      MPKI_ABS_FLOOR),
                     "ok": self.mpki_ok},
            "brmiss": {"target": self.brmiss_target,
                       "measured": self.brmiss_measured,
                       "tolerance": max(BRMISS_REL_TOL * self.brmiss_target,
                                        BRMISS_ABS_FLOOR),
                       "ok": self.brmiss_ok},
            "iterations": self.iterations,
            "converged": self.converged,
        }


def _bisect_dial(measure, target: float, lo: float, hi: float,
                 rel: float, floor: float, max_iters: int = MAX_ITERS):
    """Bisect a monotone-decreasing dial until ``measure`` hits target.

    ``measure(x)`` must decrease as ``x`` grows (both dials do). Returns
    (x, measured, iterations). Stops early inside tolerance; when the
    target lies outside the reachable range the endpoint wins.
    """
    best_x, best_m = None, None
    iters = 0
    for _ in range(max_iters):
        mid = (lo + hi) / 2.0
        m = measure(mid)
        iters += 1
        if best_m is None or abs(m - target) < abs(best_m - target):
            best_x, best_m = mid, m
        if _within(m, target, rel, floor):
            return mid, m, iters
        if m > target:   # too many misses/mispredicts -> raise the dial
            lo = mid
        else:
            hi = mid
    return best_x, best_m, iters


def autotune_workload(
    builder,
    mpki_target: float,
    brmiss_target: float,
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
    max_iters: int = MAX_ITERS,
) -> CalibrationResult:
    """Search a phased builder's dials to hit its calibration targets.

    ``builder(hot_fraction, data_bias)`` must return a
    :class:`WorkloadSpec`. hot_fraction is bisected against MPKI first
    (with data_bias pinned mid-range), then data_bias against branch
    mispredicts/kinst at the tuned hot_fraction; a final joint
    measurement reports both dials together.
    """
    total = 0

    def mpki_at(hf: float) -> float:
        p = characterize(builder(hf, 0.75), machine, instructions, warmup)
        return p.mpki

    hf, _, it1 = _bisect_dial(mpki_at, mpki_target, *HOT_RANGE,
                              rel=MPKI_REL_TOL, floor=MPKI_ABS_FLOOR,
                              max_iters=max_iters)
    total += it1

    def brmiss_at(db: float) -> float:
        p = characterize(builder(hf, db), machine, instructions, warmup)
        return p.mispredicts_per_kinst

    db, _, it2 = _bisect_dial(brmiss_at, brmiss_target, *BIAS_RANGE,
                              rel=BRMISS_REL_TOL, floor=BRMISS_ABS_FLOOR,
                              max_iters=max_iters)
    total += it2

    final = characterize(builder(hf, db), machine, instructions, warmup)
    total += 1
    result = CalibrationResult(
        name=final.name,
        hot_fraction=round(hf, 6), data_bias=round(db, 6),
        mpki_target=mpki_target, mpki_measured=final.mpki,
        brmiss_target=brmiss_target,
        brmiss_measured=final.mispredicts_per_kinst,
        iterations=total,
        converged=_within(final.mpki, mpki_target, MPKI_REL_TOL,
                          MPKI_ABS_FLOOR)
        and _within(final.mispredicts_per_kinst, brmiss_target,
                    BRMISS_REL_TOL, BRMISS_ABS_FLOOR),
    )
    return result


def verify_tuned(
    name: str,
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
) -> CalibrationResult:
    """Re-measure one phased workload with its *baked* tuned parameters
    (no search) — the calibration regression check."""
    from repro.workloads.catalog import (PHASED_BUILDERS, PHASED_TARGETS,
                                         _TUNED)
    params = _TUNED[name]
    targets = PHASED_TARGETS[name]
    p = characterize(PHASED_BUILDERS[name](**params), machine,
                     instructions, warmup)
    return CalibrationResult(
        name=name,
        hot_fraction=params["hot_fraction"], data_bias=params["data_bias"],
        mpki_target=targets["mpki"], mpki_measured=p.mpki,
        brmiss_target=targets["brmiss"],
        brmiss_measured=p.mispredicts_per_kinst,
        iterations=1,
        converged=_within(p.mpki, targets["mpki"], MPKI_REL_TOL,
                          MPKI_ABS_FLOOR)
        and _within(p.mispredicts_per_kinst, targets["brmiss"],
                    BRMISS_REL_TOL, BRMISS_ABS_FLOOR),
    )


def calibrate_catalog(
    names: Optional[Sequence[str]] = None,
    machine: MachineParams = BASELINE,
    instructions: int = 8_000,
    warmup: int = 15_000,
    check: bool = False,
) -> List[CalibrationResult]:
    """Auto-tune (or with ``check=True`` just re-verify) the phased
    tranche; returns one :class:`CalibrationResult` per workload."""
    from repro.workloads.catalog import PHASED_BUILDERS, PHASED_TARGETS
    todo = list(names) if names else list(PHASED_BUILDERS)
    out: List[CalibrationResult] = []
    for name in todo:
        if name not in PHASED_BUILDERS:
            raise KeyError(f"not a phased workload: {name!r} "
                           f"(phased: {sorted(PHASED_BUILDERS)})")
        if check:
            out.append(verify_tuned(name, machine, instructions, warmup))
        else:
            t = PHASED_TARGETS[name]
            out.append(autotune_workload(
                PHASED_BUILDERS[name], t["mpki"], t["brmiss"],
                machine, instructions, warmup))
    return out
