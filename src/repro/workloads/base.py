"""Workload specification and trace generation.

A workload is described by a *loop body*: a short list of :class:`SlotSpec`
entries (one per static instruction) that the generator unrolls into an
infinite dynamic trace. Slots keep the same PC across iterations, so branch
predictors and the Stalling Slice Table see learnable, program-like PC
streams; addresses and branch outcomes vary per iteration according to the
slot's pattern/branch specification.

Dependencies are expressed as ``(iteration_delta, slot_index)`` pairs and
resolved to absolute trace indices during unrolling. Loads drawn from a
*dependent* address pattern (pointer chasing) additionally gain a dynamic
dependence on the previous load of the same pattern — that is what makes
chase misses serialise and makes runahead unable to prefetch them.
"""

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.enums import UopClass
from repro.isa.trace import Trace
from repro.isa.uop import NO_ADDR, StaticUop
from repro.workloads.patterns import AddressPattern, PatternSpec


@dataclass(frozen=True)
class BranchSpec:
    """Behaviour of one static branch slot.

    kinds:
        ``loop``   — taken except every ``period``-th iteration (back-edge).
        ``biased`` — independently taken with probability ``bias``.
        ``data``   — taken with probability ``bias`` *and* data-dependent on
                     the most recent load, so it is unpredictable noise to
                     the predictor and INV in runahead when that load is in
                     the blocking load's shadow.
    """

    kind: str = "loop"
    bias: float = 0.5
    period: int = 64


@dataclass(frozen=True)
class SlotSpec:
    """One static instruction of the loop body."""

    cls: int
    #: producer references as (iteration_delta, slot_index); delta 0 means
    #: "earlier in the same iteration", 1 means "previous iteration", ...
    srcs: Tuple[Tuple[int, int], ...] = ()
    #: pattern id (key into WorkloadSpec.patterns) for loads/stores
    pattern: Optional[str] = None
    branch: Optional[BranchSpec] = None


def _shift_base(spec: PatternSpec, offset: int) -> PatternSpec:
    """A copy of ``spec`` with every region base shifted by ``offset``.

    Mix parts shift recursively; residency hints are dropped because a
    drifting region is by definition not in cache steady state (and a
    stale preload would be actively misleading)."""
    if offset == 0:
        return spec
    parts = tuple((w, _shift_base(s, offset)) for w, s in spec.mix_parts)
    return replace(spec, base=spec.base + offset, mix_parts=parts,
                   resident="")


@dataclass(frozen=True)
class PhaseSpec:
    """One segment of a piecewise phase schedule.

    A phased workload cycles through its ``phases`` tuple; each segment
    lasts ``duration`` loop iterations and *overrides* some of the
    workload's patterns while it is active (an empty override set means
    "run the base patterns"). This expresses the three canonical
    non-stationary behaviours (cf. the dynamic/oscillating trace
    generator exemplar, SNIPPETS.md §3):

    - **abrupt phase swap** — consecutive segments override the same
      pattern id with different kinds (chase ↔ stream);
    - **oscillating hot/scan** — alternate a hot-dominated mix with a
      scanning stream;
    - **hot-set drift** — ``drift`` bytes are added to the overriding
      patterns' bases on every full pass through the schedule, so the
      "hot" region migrates and previously-warmed lines go cold.

    Overridden patterns get a *fresh* engine at each segment entry
    (cursors reset — a new program phase does not resume the old
    phase's stream positions); non-overridden patterns keep their state
    across segments.
    """

    duration: int
    patterns: Tuple[Tuple[str, PatternSpec], ...] = ()
    drift: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")


@dataclass
class WorkloadSpec:
    """A named synthetic workload.

    Attributes:
        name: benchmark name (e.g. ``"mcf"``).
        memory_intensive: which evaluation set the workload belongs to.
        body: the loop body (slots).
        patterns: address-pattern specs keyed by the ids slots reference.
        pc_base: base address for slot PCs.
        seed: default RNG seed; traces are reproducible given (name, seed).
        description: one-line characterisation (for docs/reports).
        phases: optional cyclic phase schedule (:class:`PhaseSpec`); empty
            means stationary behaviour (every pre-phase workload).
    """

    name: str
    memory_intensive: bool
    body: Tuple[SlotSpec, ...]
    patterns: Dict[str, PatternSpec] = field(default_factory=dict)
    pc_base: int = 0x400000
    seed: int = 12345
    description: str = ""
    phases: Tuple[PhaseSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("workload body must not be empty")
        for slot in self.body:
            if UopClass(slot.cls).is_mem and slot.pattern not in self.patterns:
                raise ValueError(
                    f"{self.name}: mem slot references unknown pattern "
                    f"{slot.pattern!r}"
                )
        for phase in self.phases:
            for pid, _ in phase.patterns:
                if pid not in self.patterns:
                    raise ValueError(
                        f"{self.name}: phase overrides unknown pattern "
                        f"{pid!r}"
                    )

    def build_trace(self, seed: Optional[int] = None) -> Trace:
        """Materialise a fresh, rewindable trace for this workload."""
        trace = Trace(
            self._generate(self.seed if seed is None else seed), name=self.name
        )
        if self.phases:
            trace.set_phase_fn(self._phase_fn())
        return trace

    def _phase_fn(self):
        """Map a trace index to its phase id (segment index in the
        cyclic schedule) — O(log #phases), no trace materialisation."""
        from bisect import bisect_right

        nslots = len(self.body)
        bounds: List[int] = []
        acc = 0
        for p in self.phases:
            acc += p.duration
            bounds.append(acc)
        cycle = acc

        def fn(idx: int) -> int:
            return bisect_right(bounds, (idx // nslots) % cycle)

        return fn

    def resident_regions(self) -> List[Tuple[str, int, int]]:
        """(level, base, size) regions that are cache-resident in steady
        state — the simulator preloads these instead of simulating the
        hundreds of thousands of warmup instructions they would need."""
        out: List[Tuple[str, int, int]] = []
        seen = set()

        def walk(spec: PatternSpec) -> None:
            if spec.resident and (spec.base, spec.working_set) not in seen:
                seen.add((spec.base, spec.working_set))
                out.append((spec.resident, spec.base, spec.working_set))
            for _, sub in spec.mix_parts:
                walk(sub)

        for spec in self.patterns.values():
            walk(spec)
        return out

    def _generate(self, seed: int) -> Iterator[StaticUop]:
        rng = random.Random(seed)
        body = self.body
        nslots = len(body)
        engines: Dict[str, AddressPattern] = {
            pid: spec.build() for pid, spec in self.patterns.items()
        }
        # Cyclic phase schedule: segment k of pass p starts at a known
        # iteration; on entry its overrides get fresh (possibly
        # base-drifted) engines and the previous segment's overrides
        # revert to the base patterns.
        phases = self.phases
        phase_k = -1
        pass_num = 0
        next_switch_t = 0
        overridden: set = set()
        # Dynamic state threaded across iterations:
        last_load_by_pattern: Dict[str, int] = {}
        last_load_idx = -1
        idx = 0
        t = 0
        while True:
            if phases and t == next_switch_t:
                phase_k += 1
                if phase_k == len(phases):
                    phase_k = 0
                    pass_num += 1
                phase = phases[phase_k]
                next_switch_t = t + phase.duration
                now = {pid for pid, _ in phase.patterns}
                for pid in overridden - now:
                    engines[pid] = self.patterns[pid].build()
                for pid, pspec in phase.patterns:
                    engines[pid] = _shift_base(
                        pspec, pass_num * phase.drift).build()
                overridden = now
            base_idx = t * nslots
            for s, slot in enumerate(body):
                pc = self.pc_base + s * 4
                srcs: List[int] = []
                for delta, prod_slot in slot.srcs:
                    prod_iter = t - delta
                    if prod_iter < 0:
                        continue
                    prod_idx = prod_iter * nslots + prod_slot
                    if prod_idx < idx:
                        srcs.append(prod_idx)
                addr = NO_ADDR
                taken = False
                target = 0
                cls = slot.cls
                if slot.pattern is not None:
                    engine = engines[slot.pattern]
                    addr = engine.next_addr(rng)
                    if engine.dependent:
                        prev = last_load_by_pattern.get(slot.pattern, -1)
                        if prev >= 0:
                            srcs.append(prev)
                    if cls == UopClass.LOAD:
                        last_load_by_pattern[slot.pattern] = idx
                        last_load_idx = idx
                elif cls == UopClass.BRANCH:
                    spec = slot.branch or BranchSpec()
                    if spec.kind == "loop":
                        taken = (t % spec.period) != spec.period - 1
                    elif spec.kind == "biased":
                        taken = rng.random() < spec.bias
                    elif spec.kind == "data":
                        taken = rng.random() < spec.bias
                        if last_load_idx >= 0:
                            srcs.append(last_load_idx)
                    else:
                        raise ValueError(f"unknown branch kind {spec.kind!r}")
                    target = self.pc_base if taken else pc + 4
                yield StaticUop(
                    idx=idx,
                    pc=pc,
                    cls=cls,
                    srcs=tuple(srcs),
                    addr=addr,
                    taken=taken,
                    target=target,
                )
                idx += 1
            t += 1


def make_body(
    rng: random.Random,
    n_slots: int = 64,
    load_frac: float = 0.22,
    store_frac: float = 0.08,
    branch_frac: float = 0.12,
    fp_frac: float = 0.0,
    nop_frac: float = 0.01,
    chain: float = 0.3,
    hard_branch_frac: float = 0.0,
    load_consume: float = 0.35,
    data_bias: float = 0.5,
    pattern_weights: Optional[Dict[str, float]] = None,
) -> Tuple[SlotSpec, ...]:
    """Build a randomised loop body with the requested characteristics.

    Args:
        rng: seeded RNG (body structure is deterministic given the seed).
        n_slots: static instructions per loop iteration.
        load_frac/store_frac/branch_frac/fp_frac/nop_frac: class mix; the
            remainder are integer ALU ops.
        chain: probability an ALU op extends the most recent dependence
            chain instead of reading a distant producer — higher values
            mean deeper chains and lower ILP (lbm-like IQ pressure).
        hard_branch_frac: fraction of branches that are data-dependent
            noise (mcf/gcc-like mispredicts in the miss shadow).
        load_consume: probability an ALU/FP op reads the latest load's
            value. This controls what fraction of the window becomes
            (transitively) miss-dependent — the knob that decides whether
            a blocked LLC miss turns into a full-ROB stall (independent
            work drains, the ROB fills) or an IQ-full stall (dependent
            work piles up in the issue queue first).
        data_bias: taken-probability of the data-dependent noise
            branches. ``hard_branch_frac`` quantises to whole slots
            (steps of ~1/n_branches); ``data_bias`` is the *continuous*
            branch-miss dial the auto-tuner searches — the predictor
            learns the bias direction, so each hard branch mispredicts
            at roughly ``min(data_bias, 1-data_bias)``.
        pattern_weights: pattern-id → weight; each memory slot is assigned
            a pattern id drawn from this distribution (default: all "main").
    """
    if pattern_weights is None:
        pattern_weights = {"main": 1.0}
    pattern_ids = list(pattern_weights)
    weights = [pattern_weights[p] for p in pattern_ids]

    def pick_pattern() -> str:
        return rng.choices(pattern_ids, weights=weights)[0]

    slots: List[SlotSpec] = []
    #: earlier slots producing register values, split so that address
    #: computation can stay independent of loaded data
    alu_producers: List[int] = []   # int ALU results (never loads)
    load_producers: List[int] = []  # load results
    fp_producers: List[int] = []

    def pick_producer(pool: List[int], s: int,
                      may_consume_load: bool = False
                      ) -> Tuple[Tuple[int, int], ...]:
        """One or two producers; same iteration when possible, else prior."""
        picks: List[Tuple[int, int]] = []
        if may_consume_load and load_producers and rng.random() < load_consume:
            prod = load_producers[-1]
            picks.append((0, prod) if prod < s else (1, prod))
        n = 1 if rng.random() < 0.6 else 2
        while len(picks) < n and pool:
            if rng.random() < chain:
                prod = pool[-1]
            else:
                prod = pool[rng.randrange(len(pool))]
            # A slot can only read same-iteration values produced earlier.
            picks.append((0, prod) if prod < s else (1, prod))
        return tuple(picks)

    n_loads = max(1, round(n_slots * load_frac))
    n_stores = round(n_slots * store_frac)
    n_branches = max(1, round(n_slots * branch_frac))
    n_fp = round(n_slots * fp_frac)
    n_nops = round(n_slots * nop_frac)
    classes: List[int] = (
        [int(UopClass.LOAD)] * n_loads
        + [int(UopClass.STORE)] * n_stores
        + [int(UopClass.BRANCH)] * (n_branches - 1)
        + [int(UopClass.NOP)] * n_nops
    )
    # Divides are rare in real code (~0.5%); one every ~25 FP / ~50 int ops
    # keeps the single non-pipelined divider from dominating runtime.
    fp_classes = ([UopClass.FP_ADD] * 14 + [UopClass.FP_MUL] * 10
                  + [UopClass.FP_DIV])
    for i in range(n_fp):
        classes.append(int(fp_classes[i % len(fp_classes)]))
    # Dest-less compares/tests keep integer dest density ≈ 62-66% of the
    # window, so the 192-entry ROB fills *before* the 136 free renaming
    # registers run out — PRE's premise that free registers exist at a
    # full-window stall (otherwise lean runahead cannot allocate slices).
    int_classes = [UopClass.INT_ADD] * 24 + [UopClass.INT_CMP] * 16 \
        + [UopClass.INT_MUL] * 9 + [UopClass.INT_DIV]
    i = 0
    while len(classes) < n_slots - 1:
        classes.append(int(int_classes[i % len(int_classes)]))
        i += 1
    classes = classes[: n_slots - 1]
    rng.shuffle(classes)

    n_hard = round(n_branches * hard_branch_frac)
    branch_specs: List[BranchSpec] = [
        BranchSpec(kind="data", bias=data_bias) for _ in range(n_hard)
    ]
    while len(branch_specs) < n_branches - 1:
        branch_specs.append(BranchSpec(kind="biased", bias=0.9))
    rng.shuffle(branch_specs)
    branch_iter = iter(branch_specs)

    for s, cls in enumerate(classes):
        if cls == UopClass.LOAD:
            # Address generation reads ALU results only: streaming/strided
            # loads issue independently of earlier loads' data (pointer
            # chasing adds its data dependence dynamically, per pattern).
            slots.append(
                SlotSpec(cls=cls, srcs=pick_producer(alu_producers, s)[:1],
                         pattern=pick_pattern())
            )
            load_producers.append(s)
        elif cls == UopClass.STORE:
            slots.append(
                SlotSpec(cls=cls,
                         srcs=pick_producer(alu_producers, s,
                                            may_consume_load=True),
                         pattern=pick_pattern())
            )
        elif cls == UopClass.BRANCH:
            slots.append(SlotSpec(cls=cls, srcs=(), branch=next(branch_iter)))
        elif cls == UopClass.NOP:
            slots.append(SlotSpec(cls=cls))
        elif UopClass(cls).is_fp:
            slots.append(SlotSpec(cls=cls,
                                  srcs=pick_producer(fp_producers, s,
                                                     may_consume_load=True)))
            fp_producers.append(s)
        elif cls == UopClass.INT_CMP:
            slots.append(SlotSpec(cls=cls,
                                  srcs=pick_producer(alu_producers, s,
                                                     may_consume_load=True)))
        else:
            slots.append(SlotSpec(cls=cls,
                                  srcs=pick_producer(alu_producers, s,
                                                     may_consume_load=True)))
            alu_producers.append(s)
    # Loop back-edge: a highly predictable taken branch closes the body.
    slots.append(SlotSpec(cls=int(UopClass.BRANCH), srcs=(),
                          branch=BranchSpec(kind="loop", period=256)))
    return tuple(slots)
