"""Address-pattern engines for synthetic workloads.

Each engine produces a deterministic stream of byte addresses given a
seeded :class:`random.Random`. Engines model the canonical SPEC memory
behaviours the paper's benchmarks exhibit:

- :class:`StreamPattern` — sequential unit- or large-stride streams
  (libquantum, lbm, fotonik): independent misses, high MLP potential,
  stride-prefetchable when the stride is regular.
- :class:`PointerChasePattern` — dependent loads walking a randomised
  linked structure (mcf, omnetpp): one outstanding miss at a time,
  prefetch-hostile.
- :class:`RandomPattern` — uniform random over a working set (gcc-, astar-
  like irregular accesses).
- :class:`MixPattern` — weighted combination, with a ``hot`` fraction
  directed at a cache-resident region to dial in the target MPKI.
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

LINE = 64


class AddressPattern:
    """Base class: a stateful deterministic address stream."""

    #: True when consecutive addresses are data-dependent (the next address
    #: is computed from the previous load's value, as in pointer chasing).
    dependent = False

    def next_addr(self, rng: random.Random) -> int:
        raise NotImplementedError


class StreamPattern(AddressPattern):
    """Round-robin sequential streams over a large region.

    Args:
        working_set: bytes per stream region.
        streams: number of concurrent streams (round-robin).
        stride: bytes between consecutive accesses of one stream.
        base: base address of the region.
    """

    dependent = False

    def __init__(self, working_set: int, streams: int = 4, stride: int = LINE,
                 base: int = 0x1000_0000):
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self.working_set = working_set
        self.streams = streams
        self.stride = stride
        self.base = base
        self._cursors = [base + i * working_set for i in range(streams)]
        self._which = 0

    def next_addr(self, rng: random.Random) -> int:
        i = self._which
        self._which = (i + 1) % self.streams
        addr = self._cursors[i]
        nxt = addr + self.stride
        region_start = self.base + i * self.working_set
        if nxt >= region_start + self.working_set:
            nxt = region_start
        self._cursors[i] = nxt
        return addr


class PointerChasePattern(AddressPattern):
    """Random walk over a large region; each address depends on the last.

    The walk is a pseudo-random permutation step: the next node is drawn
    uniformly from the region, which defeats both caches (when the region
    exceeds the LLC) and stride prefetchers, and — because ``dependent`` is
    True — the workload generator makes the next chase load's address
    *data-dependent* on the previous chase load.
    """

    dependent = True

    def __init__(self, working_set: int, node_size: int = LINE,
                 base: int = 0x4000_0000):
        self.working_set = working_set
        self.node_size = node_size
        self.base = base
        self._nodes = max(1, working_set // node_size)

    def next_addr(self, rng: random.Random) -> int:
        return self.base + rng.randrange(self._nodes) * self.node_size


class RandomPattern(AddressPattern):
    """Uniform random line-granular accesses over a working set."""

    dependent = False

    def __init__(self, working_set: int, base: int = 0x7000_0000):
        self.working_set = working_set
        self.base = base
        self._lines = max(1, working_set // LINE)

    def next_addr(self, rng: random.Random) -> int:
        return self.base + rng.randrange(self._lines) * LINE


class HotPattern(AddressPattern):
    """Small cache-resident region (stack/locals): (almost) always hits."""

    dependent = False

    def __init__(self, working_set: int = 16 * 1024, base: int = 0x0001_0000):
        self.working_set = working_set
        self.base = base
        self._lines = max(1, working_set // LINE)

    def next_addr(self, rng: random.Random) -> int:
        return self.base + rng.randrange(self._lines) * LINE


class MixPattern(AddressPattern):
    """Weighted mixture of sub-patterns.

    ``dependent`` reflects the pattern chosen for the *current* address, so
    the generator queries :attr:`last_dependent` after each draw.
    """

    def __init__(self, parts: List[Tuple[float, AddressPattern]]):
        if not parts:
            raise ValueError("MixPattern needs at least one part")
        total = sum(w for w, _ in parts)
        if total <= 0:
            raise ValueError("MixPattern weights must sum to > 0")
        self._parts = [(w / total, p) for w, p in parts]
        self.last_dependent = False

    @property
    def dependent(self) -> bool:  # type: ignore[override]
        return self.last_dependent

    def next_addr(self, rng: random.Random) -> int:
        x = rng.random()
        acc = 0.0
        part = self._parts[-1][1]
        for w, p in self._parts:
            acc += w
            if x < acc:
                part = p
                break
        self.last_dependent = part.dependent
        return part.next_addr(rng)


@dataclass(frozen=True)
class PatternSpec:
    """Declarative, hashable description of an address pattern.

    ``kind`` is one of ``stream``, ``chase``, ``random``, ``hot`` or
    ``mix``; ``mix_parts`` holds (weight, PatternSpec) pairs for mixes.
    """

    kind: str
    working_set: int = 16 * 1024 * 1024
    streams: int = 4
    stride: int = LINE
    base: int = 0x1000_0000
    mix_parts: Tuple[Tuple[float, "PatternSpec"], ...] = field(default=())
    #: steady-state cache residency hint: "" (none), "l1" or "l3". Regions
    #: whose reuse distance keeps them resident take hundreds of thousands
    #: of instructions to warm naturally; the simulator preloads them
    #: instead (see MemoryHierarchy.preload), which is equivalent to a
    #: long warmup at a fraction of the cost.
    resident: str = ""

    def build(self) -> AddressPattern:
        return build_pattern(self)


def build_pattern(spec: PatternSpec) -> AddressPattern:
    """Instantiate a fresh stateful engine from a :class:`PatternSpec`."""
    if spec.kind == "stream":
        return StreamPattern(spec.working_set, spec.streams, spec.stride, spec.base)
    if spec.kind == "chase":
        return PointerChasePattern(spec.working_set, base=spec.base)
    if spec.kind == "random":
        return RandomPattern(spec.working_set, base=spec.base)
    if spec.kind == "hot":
        return HotPattern(spec.working_set, base=spec.base)
    if spec.kind == "mix":
        return MixPattern([(w, build_pattern(s)) for w, s in spec.mix_parts])
    raise ValueError(f"unknown pattern kind: {spec.kind!r}")


def hot_mix(cold: PatternSpec, hot_fraction: float,
            hot_ws: int = 16 * 1024,
            warm_fraction: float = 0.16,
            warm_ws: int = 448 * 1024) -> PatternSpec:
    """Three-tier mixture: hot (L1), warm (L2/L3) and cold accesses.

    ``hot_fraction`` is the MPKI dial: raising it lowers the miss rate
    without changing the cold pattern's character. ``warm_fraction`` is
    carved out of the hot share and directed at an L3-resident region (larger than the private L2, far
    smaller than the LLC's eviction-cycling footprint) —
    those loads stall the head for tens of cycles without being LLC misses,
    which is where the paper's ~30% of *non*-miss-shadow vulnerable state
    comes from (Figure 5). The warm region must stay small enough that its
    LRU retouch interval beats the cold stream's eviction cycling, or it
    degenerates into extra LLC misses.
    """
    if not 0.0 <= hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in [0, 1)")
    warm = min(warm_fraction, hot_fraction)
    # Region layout is disjoint by construction: hot at 64 KB, warm at
    # 128 MB, streams at 256 MB+, chase at 1 GB, cold randoms at ~1.8 GB.
    return PatternSpec(
        kind="mix",
        mix_parts=(
            (hot_fraction - warm, PatternSpec(kind="hot", working_set=hot_ws,
                                              base=0x0001_0000,
                                              resident="l1")),
            (warm, PatternSpec(kind="random", working_set=warm_ws,
                               base=0x0800_0000, resident="l3")),
            (1.0 - hot_fraction, cold),
        ),
    )
