"""Named synthetic benchmarks mirroring the paper's evaluation sets.

The memory-intensive set carries the names the paper plots (astar, bwaves,
fotonik, gcc, gems, lbm, leslie3d, libquantum, mcf, milc, omnetpp, roms,
soplex, sphinx); each generator is tuned to the per-benchmark behaviour the
paper describes:

- mcf / omnetpp: pointer chasing with data-dependent branches — serialised
  misses, mispredicts in the miss shadow, ROB-head-blocked ≫ full-ROB-stall.
- libquantum / fotonik / bwaves: wide independent streaming — full-ROB
  stalls, huge MLP headroom for runahead.
- lbm: streaming plus deep FP dependence chains — the issue queue fills
  before the ROB does (the paper: "lbm is stalled on a full issue queue
  about 20% of the time").
- gcc / astar / soplex: irregular accesses with hard branches.

The compute-intensive set keeps working sets cache-resident (MPKI < 8).
"""

import random
import zlib
from typing import Dict, List

from repro.workloads.base import WorkloadSpec, make_body
from repro.workloads.patterns import PatternSpec, hot_mix

MB = 1024 * 1024

#: Cold working set: large enough that the 1 MB LLC cannot hold it.
COLD_WS = 32 * MB


def _seed(name: str) -> int:
    return zlib.crc32(name.encode()) & 0x7FFFFFFF


def _stream(streams: int = 8, stride: int = 64, ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="stream", working_set=ws // max(1, streams),
                       streams=streams, stride=stride)


def _chase(ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="chase", working_set=ws)


def _random(ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="random", working_set=ws)


def _hot(ws: int = 16 * 1024) -> PatternSpec:
    return PatternSpec(kind="hot", working_set=ws, base=0x0001_0000,
                       resident="l1")


def _spec(
    name: str,
    memory_intensive: bool,
    description: str,
    patterns: Dict[str, PatternSpec],
    pattern_weights: Dict[str, float],
    **body_kwargs,
) -> WorkloadSpec:
    rng = random.Random(_seed(name))
    body = make_body(rng, pattern_weights=pattern_weights, **body_kwargs)
    return WorkloadSpec(
        name=name,
        memory_intensive=memory_intensive,
        body=body,
        patterns=patterns,
        seed=_seed(name) ^ 0x5EED,
        description=description,
    )


def _memory_set() -> List[WorkloadSpec]:
    w: List[WorkloadSpec] = []
    w.append(_spec(
        "astar", True, "graph search: irregular accesses, hard branches",
        patterns={"main": hot_mix(_random(), 0.96)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.06, branch_frac=0.15,
        hard_branch_frac=0.35, chain=0.35, load_consume=0.45,
    ))
    w.append(_spec(
        "bwaves", True, "FP blast-wave solver: wide independent streams",
        patterns={"main": hot_mix(_stream(streams=12), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.10, branch_frac=0.04, fp_frac=0.30,
        chain=0.25, load_consume=0.30,
    ))
    w.append(_spec(
        "fotonik", True, "FDTD: massive independent streaming, best MLP",
        patterns={"main": hot_mix(_stream(streams=16), 0.91)},
        pattern_weights={"main": 1.0},
        load_frac=0.32, store_frac=0.12, branch_frac=0.04, fp_frac=0.28,
        chain=0.2, load_consume=0.25,
    ))
    w.append(_spec(
        "gcc", True, "compiler: irregular pointer traffic, many hard branches",
        patterns={"main": hot_mix(_random(), 0.95), "ptr": hot_mix(_chase(), 0.95)},
        pattern_weights={"main": 0.7, "ptr": 0.3},
        load_frac=0.26, store_frac=0.10, branch_frac=0.18,
        hard_branch_frac=0.40, chain=0.3, load_consume=0.45,
    ))
    w.append(_spec(
        "gems", True, "FDTD stencil: streaming FP with moderate chains",
        patterns={"main": hot_mix(_stream(streams=10), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.10, branch_frac=0.05, fp_frac=0.30,
        chain=0.3, load_consume=0.30,
    ))
    w.append(_spec(
        "lbm", True, "lattice Boltzmann: streams + deep FP chains (IQ fills)",
        patterns={"main": hot_mix(_stream(streams=8), 0.90)},
        pattern_weights={"main": 1.0},
        load_frac=0.26, store_frac=0.14, branch_frac=0.02, fp_frac=0.42,
        chain=0.85, load_consume=0.60,
    ))
    w.append(_spec(
        "leslie3d", True, "CFD: streaming FP, moderate MPKI",
        patterns={"main": hot_mix(_stream(streams=8), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.10, branch_frac=0.06, fp_frac=0.32,
        chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "libquantum", True, "quantum sim: single hot loop, pure streaming",
        patterns={"main": hot_mix(_stream(streams=4), 0.90)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.12, branch_frac=0.10,
        hard_branch_frac=0.0, chain=0.2, load_consume=0.30,
    ))
    w.append(_spec(
        "mcf", True, "network simplex: pointer chasing + data-dep branches",
        patterns={"main": hot_mix(_chase(), 0.85), "aux": hot_mix(_random(), 0.97)},
        pattern_weights={"main": 0.75, "aux": 0.25},
        load_frac=0.30, store_frac=0.06, branch_frac=0.17,
        hard_branch_frac=0.45, chain=0.4, load_consume=0.50,
    ))
    w.append(_spec(
        "milc", True, "lattice QCD: streaming FP + gather-ish randoms",
        patterns={"main": hot_mix(_stream(streams=8), 0.93),
                  "gather": hot_mix(_random(), 0.92)},
        pattern_weights={"main": 0.7, "gather": 0.3},
        load_frac=0.30, store_frac=0.10, branch_frac=0.05, fp_frac=0.30,
        chain=0.3, load_consume=0.30,
    ))
    w.append(_spec(
        "omnetpp", True, "discrete-event sim: pointer chasing, hard branches",
        patterns={"main": hot_mix(_chase(), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.27, store_frac=0.09, branch_frac=0.16,
        hard_branch_frac=0.35, chain=0.35, load_consume=0.50,
    ))
    w.append(_spec(
        "roms", True, "ocean model: streaming FP, shorter miss bursts",
        patterns={"main": hot_mix(_stream(streams=6), 0.95)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.11, branch_frac=0.06, fp_frac=0.30,
        chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "soplex", True, "LP solver: sparse matrix randoms + some streams",
        patterns={"main": hot_mix(_random(), 0.92), "col": hot_mix(_stream(streams=4), 0.93)},
        pattern_weights={"main": 0.6, "col": 0.4},
        load_frac=0.28, store_frac=0.08, branch_frac=0.13,
        hard_branch_frac=0.25, chain=0.35, fp_frac=0.10, load_consume=0.40,
    ))
    w.append(_spec(
        "sphinx", True, "speech recognition: random accesses, FP scoring",
        patterns={"main": hot_mix(_random(), 0.96)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.06, branch_frac=0.10, fp_frac=0.20,
        hard_branch_frac=0.15, chain=0.3, load_consume=0.40,
    ))
    return w


def _compute_set() -> List[WorkloadSpec]:
    w: List[WorkloadSpec] = []

    def cspec(name: str, description: str, **kw) -> WorkloadSpec:
        """Compute-intensive: cache-resident with a small cold residue.

        The paper's compute set has MPKI < 8, not zero — the residual
        misses are what gives RAR its modest 1.5x MTTF gain there.
        """
        cold_frac = kw.pop("cold_frac", 0.015)
        hot = _hot(kw.pop("hot_ws", 64 * 1024))
        cold = _random(4 * MB)
        patterns = {"main": PatternSpec(
            kind="mix",
            mix_parts=((1.0 - cold_frac, hot), (cold_frac, cold)),
        )}
        return _spec(name, False, description, patterns=patterns,
                     pattern_weights={"main": 1.0}, **kw)

    w.append(cspec("deepsjeng", "chess engine: int, branchy",
                   load_frac=0.22, store_frac=0.08, branch_frac=0.18,
                   hard_branch_frac=0.20, chain=0.3, cold_frac=0.005))
    w.append(cspec("exchange2", "puzzle generator: int, predictable",
                   load_frac=0.18, store_frac=0.10, branch_frac=0.14,
                   chain=0.25, cold_frac=0.002))
    w.append(cspec("imagick", "image ops: FP kernels, cache resident",
                   load_frac=0.24, store_frac=0.10, branch_frac=0.05,
                   fp_frac=0.35, chain=0.3, hot_ws=128 * 1024, cold_frac=0.003))
    w.append(cspec("leela", "Go engine: int, moderate branches",
                   load_frac=0.22, store_frac=0.07, branch_frac=0.15,
                   hard_branch_frac=0.15, chain=0.3, cold_frac=0.004))
    w.append(cspec("nab", "molecular dynamics: FP, small sets",
                   load_frac=0.25, store_frac=0.08, branch_frac=0.05,
                   fp_frac=0.38, chain=0.4, hot_ws=128 * 1024, cold_frac=0.005))
    w.append(cspec("namd", "molecular dynamics: FP, high ILP",
                   load_frac=0.24, store_frac=0.08, branch_frac=0.04,
                   fp_frac=0.40, chain=0.15, hot_ws=128 * 1024, cold_frac=0.004))
    w.append(cspec("povray", "ray tracing: FP + branches",
                   load_frac=0.22, store_frac=0.08, branch_frac=0.13,
                   fp_frac=0.28, hard_branch_frac=0.10, chain=0.3, cold_frac=0.003))
    w.append(cspec("x264", "video encode: int/FP mix",
                   load_frac=0.26, store_frac=0.12, branch_frac=0.08,
                   fp_frac=0.12, chain=0.25, hot_ws=192 * 1024, cold_frac=0.012))
    return w


def _extra_set() -> List[WorkloadSpec]:
    """Extended catalog beyond the paper's evaluated sets.

    Useful for broader studies; NOT included in MEMORY_WORKLOADS /
    COMPUTE_WORKLOADS so the paper-reproduction figures stay comparable.
    """
    w: List[WorkloadSpec] = []
    w.append(_spec(
        "xalancbmk", True, "XML transform: pointer-heavy, very branchy",
        patterns={"main": hot_mix(_chase(), 0.93), "aux": hot_mix(_random(), 0.97)},
        pattern_weights={"main": 0.6, "aux": 0.4},
        load_frac=0.27, store_frac=0.08, branch_frac=0.20,
        hard_branch_frac=0.45, chain=0.3, load_consume=0.5,
    ))
    w.append(_spec(
        "wrf", True, "weather model: wide FP streaming",
        patterns={"main": hot_mix(_stream(streams=12), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.11, branch_frac=0.05, fp_frac=0.32,
        chain=0.3, load_consume=0.3,
    ))
    w.append(_spec(
        "cactu", True, "relativity stencil: store-heavy FP streams",
        patterns={"main": hot_mix(_stream(streams=10), 0.93)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.16, branch_frac=0.03, fp_frac=0.34,
        chain=0.45, load_consume=0.4,
    ))
    w.append(_spec(
        "parest", True, "finite elements: random sparse FP",
        patterns={"main": hot_mix(_random(), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.29, store_frac=0.07, branch_frac=0.08, fp_frac=0.28,
        hard_branch_frac=0.10, chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "blender", False, "render engine: FP compute, cache resident",
        patterns={"main": PatternSpec(
            kind="mix",
            mix_parts=((0.99, _hot(96 * 1024)), (0.01, _random(4 * MB))),
        )},
        pattern_weights={"main": 1.0},
        load_frac=0.24, store_frac=0.09, branch_frac=0.09, fp_frac=0.30,
        hard_branch_frac=0.08, chain=0.3,
    ))
    w.append(_spec(
        "pchase", True,
        "microbenchmark: serialised pointer-chase latency ladder "
        "(repro memval measures the raw controller; this exercises the "
        "full hierarchy)",
        patterns={"main": _chase()},
        pattern_weights={"main": 1.0},
        load_frac=0.35, store_frac=0.0, branch_frac=0.02,
        chain=0.9, load_consume=1.0,
    ))
    w.append(_spec(
        "streambw", True,
        "microbenchmark: independent streams pushing the DRAM "
        "bandwidth ceiling",
        patterns={"main": _stream(streams=16)},
        pattern_weights={"main": 1.0},
        load_frac=0.45, store_frac=0.0, branch_frac=0.02,
        chain=0.0, load_consume=0.0,
    ))
    w.append(_spec(
        "gromacs", False, "molecular dynamics: FP compute, high ILP",
        patterns={"main": PatternSpec(
            kind="mix",
            mix_parts=((0.994, _hot(128 * 1024)), (0.006, _random(4 * MB))),
        )},
        pattern_weights={"main": 1.0},
        load_frac=0.25, store_frac=0.08, branch_frac=0.04, fp_frac=0.4,
        chain=0.2,
    ))
    return w


MEMORY_WORKLOADS: List[WorkloadSpec] = _memory_set()
COMPUTE_WORKLOADS: List[WorkloadSpec] = _compute_set()
ALL_WORKLOADS: List[WorkloadSpec] = MEMORY_WORKLOADS + COMPUTE_WORKLOADS
#: Extended catalog (not part of the paper-reproduction sets).
EXTRA_WORKLOADS: List[WorkloadSpec] = _extra_set()

_BY_NAME: Dict[str, WorkloadSpec] = {
    w.name: w for w in ALL_WORKLOADS + EXTRA_WORKLOADS
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a catalog workload by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def workload_names(memory_only: bool = False) -> List[str]:
    pool = MEMORY_WORKLOADS if memory_only else ALL_WORKLOADS
    return [w.name for w in pool]
