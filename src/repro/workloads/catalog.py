"""Named synthetic benchmarks mirroring the paper's evaluation sets.

The memory-intensive set carries the names the paper plots (astar, bwaves,
fotonik, gcc, gems, lbm, leslie3d, libquantum, mcf, milc, omnetpp, roms,
soplex, sphinx); each generator is tuned to the per-benchmark behaviour the
paper describes:

- mcf / omnetpp: pointer chasing with data-dependent branches — serialised
  misses, mispredicts in the miss shadow, ROB-head-blocked ≫ full-ROB-stall.
- libquantum / fotonik / bwaves: wide independent streaming — full-ROB
  stalls, huge MLP headroom for runahead.
- lbm: streaming plus deep FP dependence chains — the issue queue fills
  before the ROB does (the paper: "lbm is stalled on a full issue queue
  about 20% of the time").
- gcc / astar / soplex: irregular accesses with hard branches.

The compute-intensive set keeps working sets cache-resident (MPKI < 8).
"""

import random
import zlib
from typing import Dict, List

from repro.workloads.base import PhaseSpec, WorkloadSpec, make_body
from repro.workloads.patterns import PatternSpec, hot_mix
from repro.workloads.tracewl import is_trace_name, resolve_trace_workload

MB = 1024 * 1024

#: Cold working set: large enough that the 1 MB LLC cannot hold it.
COLD_WS = 32 * MB


def _seed(name: str) -> int:
    return zlib.crc32(name.encode()) & 0x7FFFFFFF


def _stream(streams: int = 8, stride: int = 64, ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="stream", working_set=ws // max(1, streams),
                       streams=streams, stride=stride)


def _chase(ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="chase", working_set=ws)


def _random(ws: int = COLD_WS) -> PatternSpec:
    return PatternSpec(kind="random", working_set=ws)


def _hot(ws: int = 16 * 1024) -> PatternSpec:
    return PatternSpec(kind="hot", working_set=ws, base=0x0001_0000,
                       resident="l1")


def _spec(
    name: str,
    memory_intensive: bool,
    description: str,
    patterns: Dict[str, PatternSpec],
    pattern_weights: Dict[str, float],
    phases: tuple = (),
    **body_kwargs,
) -> WorkloadSpec:
    rng = random.Random(_seed(name))
    body = make_body(rng, pattern_weights=pattern_weights, **body_kwargs)
    return WorkloadSpec(
        name=name,
        memory_intensive=memory_intensive,
        body=body,
        patterns=patterns,
        seed=_seed(name) ^ 0x5EED,
        description=description,
        phases=phases,
    )


def _memory_set() -> List[WorkloadSpec]:
    w: List[WorkloadSpec] = []
    w.append(_spec(
        "astar", True, "graph search: irregular accesses, hard branches",
        patterns={"main": hot_mix(_random(), 0.96)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.06, branch_frac=0.15,
        hard_branch_frac=0.35, chain=0.35, load_consume=0.45,
    ))
    w.append(_spec(
        "bwaves", True, "FP blast-wave solver: wide independent streams",
        patterns={"main": hot_mix(_stream(streams=12), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.10, branch_frac=0.04, fp_frac=0.30,
        chain=0.25, load_consume=0.30,
    ))
    w.append(_spec(
        "fotonik", True, "FDTD: massive independent streaming, best MLP",
        patterns={"main": hot_mix(_stream(streams=16), 0.91)},
        pattern_weights={"main": 1.0},
        load_frac=0.32, store_frac=0.12, branch_frac=0.04, fp_frac=0.28,
        chain=0.2, load_consume=0.25,
    ))
    w.append(_spec(
        "gcc", True, "compiler: irregular pointer traffic, many hard branches",
        patterns={"main": hot_mix(_random(), 0.95), "ptr": hot_mix(_chase(), 0.95)},
        pattern_weights={"main": 0.7, "ptr": 0.3},
        load_frac=0.26, store_frac=0.10, branch_frac=0.18,
        hard_branch_frac=0.40, chain=0.3, load_consume=0.45,
    ))
    w.append(_spec(
        "gems", True, "FDTD stencil: streaming FP with moderate chains",
        patterns={"main": hot_mix(_stream(streams=10), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.10, branch_frac=0.05, fp_frac=0.30,
        chain=0.3, load_consume=0.30,
    ))
    w.append(_spec(
        "lbm", True, "lattice Boltzmann: streams + deep FP chains (IQ fills)",
        patterns={"main": hot_mix(_stream(streams=8), 0.90)},
        pattern_weights={"main": 1.0},
        load_frac=0.26, store_frac=0.14, branch_frac=0.02, fp_frac=0.42,
        chain=0.85, load_consume=0.60,
    ))
    w.append(_spec(
        "leslie3d", True, "CFD: streaming FP, moderate MPKI",
        patterns={"main": hot_mix(_stream(streams=8), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.10, branch_frac=0.06, fp_frac=0.32,
        chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "libquantum", True, "quantum sim: single hot loop, pure streaming",
        patterns={"main": hot_mix(_stream(streams=4), 0.90)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.12, branch_frac=0.10,
        hard_branch_frac=0.0, chain=0.2, load_consume=0.30,
    ))
    w.append(_spec(
        "mcf", True, "network simplex: pointer chasing + data-dep branches",
        patterns={"main": hot_mix(_chase(), 0.85), "aux": hot_mix(_random(), 0.97)},
        pattern_weights={"main": 0.75, "aux": 0.25},
        load_frac=0.30, store_frac=0.06, branch_frac=0.17,
        hard_branch_frac=0.45, chain=0.4, load_consume=0.50,
    ))
    w.append(_spec(
        "milc", True, "lattice QCD: streaming FP + gather-ish randoms",
        patterns={"main": hot_mix(_stream(streams=8), 0.93),
                  "gather": hot_mix(_random(), 0.92)},
        pattern_weights={"main": 0.7, "gather": 0.3},
        load_frac=0.30, store_frac=0.10, branch_frac=0.05, fp_frac=0.30,
        chain=0.3, load_consume=0.30,
    ))
    w.append(_spec(
        "omnetpp", True, "discrete-event sim: pointer chasing, hard branches",
        patterns={"main": hot_mix(_chase(), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.27, store_frac=0.09, branch_frac=0.16,
        hard_branch_frac=0.35, chain=0.35, load_consume=0.50,
    ))
    w.append(_spec(
        "roms", True, "ocean model: streaming FP, shorter miss bursts",
        patterns={"main": hot_mix(_stream(streams=6), 0.95)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.11, branch_frac=0.06, fp_frac=0.30,
        chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "soplex", True, "LP solver: sparse matrix randoms + some streams",
        patterns={"main": hot_mix(_random(), 0.92), "col": hot_mix(_stream(streams=4), 0.93)},
        pattern_weights={"main": 0.6, "col": 0.4},
        load_frac=0.28, store_frac=0.08, branch_frac=0.13,
        hard_branch_frac=0.25, chain=0.35, fp_frac=0.10, load_consume=0.40,
    ))
    w.append(_spec(
        "sphinx", True, "speech recognition: random accesses, FP scoring",
        patterns={"main": hot_mix(_random(), 0.96)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.06, branch_frac=0.10, fp_frac=0.20,
        hard_branch_frac=0.15, chain=0.3, load_consume=0.40,
    ))
    return w


def _compute_set() -> List[WorkloadSpec]:
    w: List[WorkloadSpec] = []

    def cspec(name: str, description: str, **kw) -> WorkloadSpec:
        """Compute-intensive: cache-resident with a small cold residue.

        The paper's compute set has MPKI < 8, not zero — the residual
        misses are what gives RAR its modest 1.5x MTTF gain there.
        """
        cold_frac = kw.pop("cold_frac", 0.015)
        hot = _hot(kw.pop("hot_ws", 64 * 1024))
        cold = _random(4 * MB)
        patterns = {"main": PatternSpec(
            kind="mix",
            mix_parts=((1.0 - cold_frac, hot), (cold_frac, cold)),
        )}
        return _spec(name, False, description, patterns=patterns,
                     pattern_weights={"main": 1.0}, **kw)

    w.append(cspec("deepsjeng", "chess engine: int, branchy",
                   load_frac=0.22, store_frac=0.08, branch_frac=0.18,
                   hard_branch_frac=0.20, chain=0.3, cold_frac=0.005))
    w.append(cspec("exchange2", "puzzle generator: int, predictable",
                   load_frac=0.18, store_frac=0.10, branch_frac=0.14,
                   chain=0.25, cold_frac=0.002))
    w.append(cspec("imagick", "image ops: FP kernels, cache resident",
                   load_frac=0.24, store_frac=0.10, branch_frac=0.05,
                   fp_frac=0.35, chain=0.3, hot_ws=128 * 1024, cold_frac=0.003))
    w.append(cspec("leela", "Go engine: int, moderate branches",
                   load_frac=0.22, store_frac=0.07, branch_frac=0.15,
                   hard_branch_frac=0.15, chain=0.3, cold_frac=0.004))
    w.append(cspec("nab", "molecular dynamics: FP, small sets",
                   load_frac=0.25, store_frac=0.08, branch_frac=0.05,
                   fp_frac=0.38, chain=0.4, hot_ws=128 * 1024, cold_frac=0.005))
    w.append(cspec("namd", "molecular dynamics: FP, high ILP",
                   load_frac=0.24, store_frac=0.08, branch_frac=0.04,
                   fp_frac=0.40, chain=0.15, hot_ws=128 * 1024, cold_frac=0.004))
    w.append(cspec("povray", "ray tracing: FP + branches",
                   load_frac=0.22, store_frac=0.08, branch_frac=0.13,
                   fp_frac=0.28, hard_branch_frac=0.10, chain=0.3, cold_frac=0.003))
    w.append(cspec("x264", "video encode: int/FP mix",
                   load_frac=0.26, store_frac=0.12, branch_frac=0.08,
                   fp_frac=0.12, chain=0.25, hot_ws=192 * 1024, cold_frac=0.012))
    return w


def _extra_set() -> List[WorkloadSpec]:
    """Extended catalog beyond the paper's evaluated sets.

    Useful for broader studies; NOT included in MEMORY_WORKLOADS /
    COMPUTE_WORKLOADS so the paper-reproduction figures stay comparable.
    """
    w: List[WorkloadSpec] = []
    w.append(_spec(
        "xalancbmk", True, "XML transform: pointer-heavy, very branchy",
        patterns={"main": hot_mix(_chase(), 0.93), "aux": hot_mix(_random(), 0.97)},
        pattern_weights={"main": 0.6, "aux": 0.4},
        load_frac=0.27, store_frac=0.08, branch_frac=0.20,
        hard_branch_frac=0.45, chain=0.3, load_consume=0.5,
    ))
    w.append(_spec(
        "wrf", True, "weather model: wide FP streaming",
        patterns={"main": hot_mix(_stream(streams=12), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.30, store_frac=0.11, branch_frac=0.05, fp_frac=0.32,
        chain=0.3, load_consume=0.3,
    ))
    w.append(_spec(
        "cactu", True, "relativity stencil: store-heavy FP streams",
        patterns={"main": hot_mix(_stream(streams=10), 0.93)},
        pattern_weights={"main": 1.0},
        load_frac=0.28, store_frac=0.16, branch_frac=0.03, fp_frac=0.34,
        chain=0.45, load_consume=0.4,
    ))
    w.append(_spec(
        "parest", True, "finite elements: random sparse FP",
        patterns={"main": hot_mix(_random(), 0.94)},
        pattern_weights={"main": 1.0},
        load_frac=0.29, store_frac=0.07, branch_frac=0.08, fp_frac=0.28,
        hard_branch_frac=0.10, chain=0.35, load_consume=0.35,
    ))
    w.append(_spec(
        "blender", False, "render engine: FP compute, cache resident",
        patterns={"main": PatternSpec(
            kind="mix",
            mix_parts=((0.99, _hot(96 * 1024)), (0.01, _random(4 * MB))),
        )},
        pattern_weights={"main": 1.0},
        load_frac=0.24, store_frac=0.09, branch_frac=0.09, fp_frac=0.30,
        hard_branch_frac=0.08, chain=0.3,
    ))
    w.append(_spec(
        "pchase", True,
        "microbenchmark: serialised pointer-chase latency ladder "
        "(repro memval measures the raw controller; this exercises the "
        "full hierarchy)",
        patterns={"main": _chase()},
        pattern_weights={"main": 1.0},
        load_frac=0.35, store_frac=0.0, branch_frac=0.02,
        chain=0.9, load_consume=1.0,
    ))
    w.append(_spec(
        "streambw", True,
        "microbenchmark: independent streams pushing the DRAM "
        "bandwidth ceiling",
        patterns={"main": _stream(streams=16)},
        pattern_weights={"main": 1.0},
        load_frac=0.45, store_frac=0.0, branch_frac=0.02,
        chain=0.0, load_consume=0.0,
    ))
    w.append(_spec(
        "gromacs", False, "molecular dynamics: FP compute, high ILP",
        patterns={"main": PatternSpec(
            kind="mix",
            mix_parts=((0.994, _hot(128 * 1024)), (0.006, _random(4 * MB))),
        )},
        pattern_weights={"main": 1.0},
        load_frac=0.25, store_frac=0.08, branch_frac=0.04, fp_frac=0.4,
        chain=0.2,
    ))
    return w


# --------------------------------------------------------------- phased set
#
# Non-stationary workloads: each cycles through a PhaseSpec schedule
# (hot-set drift, oscillating hot/scan, abrupt pattern swaps — the
# dynamic/oscillating trace-generator behaviours of SNIPPETS.md §3).
# Every builder takes the two auto-tuned dials — ``hot_fraction`` (MPKI,
# monotone decreasing) and ``data_bias`` (branch mispredicts/kinst,
# monotone decreasing) — so ``repro.workloads.characterize`` can bisect
# each to its per-benchmark target instead of hand-tuning constants.
# The baked values in _TUNED below are the auto-tuner's output
# (calibration methodology: docs/workloads.md).


def _ph_drift_hot(hot_fraction: float, data_bias: float) -> WorkloadSpec:
    # warm_fraction=0: a drifting L3-resident tier would re-warm ~7k
    # lines per pass and pin the MPKI floor above any useful target.
    mix = hot_mix(_random(8 * MB), hot_fraction, warm_fraction=0.0)
    return _spec(
        "ph-drift-hot", True,
        "phased: hot working set migrates 2 MB every schedule pass — "
        "warmed lines go cold at each drift step",
        patterns={"main": mix},
        pattern_weights={"main": 1.0},
        phases=(PhaseSpec(duration=256, patterns=(("main", mix),),
                          drift=2 * MB),),
        load_frac=0.28, store_frac=0.08, branch_frac=0.13,
        hard_branch_frac=0.30, data_bias=data_bias,
        chain=0.35, load_consume=0.45,
    )


def _ph_osc_hotscan(hot_fraction: float, data_bias: float) -> WorkloadSpec:
    return _spec(
        "ph-osc-hotscan", True,
        "phased: oscillates between cache-resident compute and a "
        "streaming scan (SNIPPETS §3 OSCILLATING)",
        patterns={"main": hot_mix(_random(4 * MB), 0.985)},
        pattern_weights={"main": 1.0},
        phases=(
            PhaseSpec(duration=40),
            # drift: each oscillation scans a *fresh* window of the big
            # array — without it the reset stream cursors would re-walk
            # lines the previous scan already cached. The scan's hot
            # tier (its loop locals) is tiny because it drifts too:
            # a large one would add ~256 compulsory misses per pass.
            PhaseSpec(duration=40, patterns=(
                ("main", hot_mix(_stream(streams=8), hot_fraction,
                                 warm_fraction=0.0, hot_ws=4 * 1024)),),
                drift=MB),
        ),
        load_frac=0.29, store_frac=0.10, branch_frac=0.10,
        hard_branch_frac=0.25, data_bias=data_bias,
        chain=0.3, load_consume=0.35,
    )


def _ph_swap_chase_stream(hot_fraction: float,
                          data_bias: float) -> WorkloadSpec:
    return _spec(
        "ph-swap-chase-stream", True,
        "phased: abrupt swaps between serialised pointer chasing and "
        "wide streaming — runahead's best and worst cases back to back",
        patterns={"main": hot_mix(_chase(), hot_fraction)},
        pattern_weights={"main": 1.0},
        phases=(
            PhaseSpec(duration=56, patterns=(
                ("main", hot_mix(_chase(), hot_fraction)),)),
            PhaseSpec(duration=56, patterns=(
                ("main", hot_mix(_stream(streams=12), hot_fraction)),)),
        ),
        load_frac=0.30, store_frac=0.08, branch_frac=0.14,
        hard_branch_frac=0.35, data_bias=data_bias,
        chain=0.35, load_consume=0.50,
    )


def _ph_burst_mpki(hot_fraction: float, data_bias: float) -> WorkloadSpec:
    return _spec(
        "ph-burst-mpki", True,
        "phased: long cache-resident stretches punctuated by short "
        "cold-miss bursts (GC/rehash-like)",
        patterns={"main": hot_mix(_random(8 * MB), 0.99)},
        pattern_weights={"main": 1.0},
        phases=(
            PhaseSpec(duration=96),
            PhaseSpec(duration=16, patterns=(
                ("main", hot_mix(_random(8 * MB), hot_fraction)),)),
        ),
        load_frac=0.27, store_frac=0.08, branch_frac=0.12,
        hard_branch_frac=0.25, data_bias=data_bias,
        chain=0.3, load_consume=0.40,
    )


def _ph_drift_stream(hot_fraction: float, data_bias: float) -> WorkloadSpec:
    scan = hot_mix(_stream(streams=6, ws=8 * MB), hot_fraction,
                   warm_fraction=0.0)
    return _spec(
        "ph-drift-stream", True,
        "phased: streaming window slides 4 MB per pass over a huge "
        "array (out-of-core sweep)",
        patterns={"main": scan},
        pattern_weights={"main": 1.0},
        phases=(PhaseSpec(duration=256, patterns=(("main", scan),),
                          drift=4 * MB),),
        load_frac=0.31, store_frac=0.11, branch_frac=0.06, fp_frac=0.24,
        hard_branch_frac=0.20, data_bias=data_bias,
        chain=0.25, load_consume=0.30,
    )


def _ph_ramp_ws(hot_fraction: float, data_bias: float) -> WorkloadSpec:
    return _spec(
        "ph-ramp-ws", True,
        "phased: working set ramps resident → L3-sized → DRAM-sized and "
        "back, sweeping MPKI through the runahead entry threshold",
        patterns={"main": hot_mix(_random(256 * 1024), 0.97)},
        pattern_weights={"main": 1.0},
        phases=(
            PhaseSpec(duration=32),
            PhaseSpec(duration=32, patterns=(
                ("main", hot_mix(_random(2 * MB), (1 + hot_fraction) / 2)),)),
            PhaseSpec(duration=32, patterns=(
                ("main", hot_mix(_random(24 * MB), hot_fraction)),)),
        ),
        load_frac=0.28, store_frac=0.09, branch_frac=0.12,
        hard_branch_frac=0.30, data_bias=data_bias,
        chain=0.3, load_consume=0.40,
    )


#: builder + per-benchmark calibration targets (MPKI, branch
#: mispredicts/kinst) for the auto-tuner. Tolerances are documented in
#: repro.workloads.characterize (max of 15% relative / 1.5 absolute).
PHASED_BUILDERS = {
    "ph-drift-hot": _ph_drift_hot,
    "ph-osc-hotscan": _ph_osc_hotscan,
    "ph-swap-chase-stream": _ph_swap_chase_stream,
    "ph-burst-mpki": _ph_burst_mpki,
    "ph-drift-stream": _ph_drift_stream,
    "ph-ramp-ws": _ph_ramp_ws,
}

#: Targets are chosen inside each generator's reachable dial range
#: (measured at the dial endpoints on BASELINE at the calibration sizes;
#: see docs/workloads.md). The MPKI floors of the drift workloads are
#: set by compulsory re-warming after each drift step, not by the dial.
PHASED_TARGETS: Dict[str, Dict[str, float]] = {
    "ph-drift-hot": {"mpki": 40.0, "brmiss": 14.0},
    "ph-osc-hotscan": {"mpki": 14.0, "brmiss": 12.0},
    "ph-swap-chase-stream": {"mpki": 20.0, "brmiss": 15.0},
    "ph-burst-mpki": {"mpki": 9.0, "brmiss": 14.0},
    "ph-drift-stream": {"mpki": 40.0, "brmiss": 8.0},
    "ph-ramp-ws": {"mpki": 12.0, "brmiss": 16.0},
}

#: auto-tuner output (repro.workloads.characterize.calibrate_catalog);
#: regenerate with `repro calibrate` after changing builders/targets.
_TUNED: Dict[str, Dict[str, float]] = {
    "ph-drift-hot": {"hot_fraction": 0.964063, "data_bias": 0.964063},
    "ph-osc-hotscan": {"hot_fraction": 0.979531, "data_bias": 0.87125},
    "ph-swap-chase-stream": {"hot_fraction": 0.87125, "data_bias": 0.933125},
    "ph-burst-mpki": {"hot_fraction": 0.7475, "data_bias": 0.87125},
    "ph-drift-stream": {"hot_fraction": 0.933125, "data_bias": 0.87125},
    "ph-ramp-ws": {"hot_fraction": 0.933125, "data_bias": 0.933125},
}


def _phased_set() -> List[WorkloadSpec]:
    return [PHASED_BUILDERS[name](**_TUNED[name]) for name in PHASED_BUILDERS]


MEMORY_WORKLOADS: List[WorkloadSpec] = _memory_set()
COMPUTE_WORKLOADS: List[WorkloadSpec] = _compute_set()
ALL_WORKLOADS: List[WorkloadSpec] = MEMORY_WORKLOADS + COMPUTE_WORKLOADS
#: Extended catalog (not part of the paper-reproduction sets).
EXTRA_WORKLOADS: List[WorkloadSpec] = _extra_set()
#: Phase-structured tranche (auto-tuned; also outside the paper sets).
PHASED_WORKLOADS: List[WorkloadSpec] = _phased_set()

_BY_NAME: Dict[str, WorkloadSpec] = {
    w.name: w for w in ALL_WORKLOADS + EXTRA_WORKLOADS + PHASED_WORKLOADS
}


def get_workload(name: str):
    """Look up a workload by name.

    Catalog benchmarks resolve by benchmark name; ``trace:<path>`` names
    resolve to a :class:`~repro.workloads.tracewl.TraceWorkload` over a
    saved/imported trace file (returns a WorkloadSpec-compatible object,
    not a WorkloadSpec).
    """
    if is_trace_name(name):
        return resolve_trace_workload(name)
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)} "
            f"(or trace:<path> for a saved trace)"
        ) from None


def workload_names(memory_only: bool = False) -> List[str]:
    pool = MEMORY_WORKLOADS if memory_only else ALL_WORKLOADS
    return [w.name for w in pool]
