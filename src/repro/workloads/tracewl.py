"""Trace-backed workloads: saved/imported trace files as first-class
workloads.

``get_workload("trace:/path/to/file.trc")`` resolves to a
:class:`TraceWorkload`, so every surface that accepts a workload name —
``repro run``, ``sweep``, ``submit``, ``warmval``, the farm, checkpoint
warming — drives the core from an on-disk trace instead of a synthetic
generator. The object quacks like :class:`WorkloadSpec` where the
simulator cares (``name``, ``memory_intensive``, ``build_trace``,
``resident_regions``, ``description``) and is picklable by path, so the
farm ships it to workers the same way it ships catalog specs.

Trace-backed runs are *finite*: when the file ends, the engine drains
and stops at end-of-stream exactly like the oracle-validated EOS path
(PR 5). ``seed`` is accepted and ignored — a recorded trace has one
behaviour.
"""

import hashlib
import os
from typing import List, Optional, Tuple

from repro.isa.trace import Trace
from repro.isa.uop import StaticUop

__all__ = ["MaterializedTraceWorkload", "TRACE_PREFIX", "TraceWorkload",
           "is_trace_name", "resolve_trace_workload"]

TRACE_PREFIX = "trace:"

#: (path, mtime_ns, size) -> sha256 hex digest
_SHA_CACHE: dict = {}


def is_trace_name(name: str) -> bool:
    return name.startswith(TRACE_PREFIX)


class TraceWorkload:
    """A workload backed by a saved trace file (v1 or v2, plain or .gz).

    Cheap to construct (header-only read) and to pickle (the path
    travels; workers re-open the file). ``build_trace`` returns a
    streaming :class:`Trace`, so memory scales with the simulated
    prefix, not the file.
    """

    #: trace-backed runs exercise the memory hierarchy as recorded;
    #: classify with the memory set so sweeps over memory_only grids
    #: include them.
    memory_intensive = True

    def __init__(self, path: str, name: str = ""):
        from repro.isa.tracefile import trace_info
        if not os.path.exists(path):
            raise FileNotFoundError(f"trace file not found: {path}")
        info = trace_info(path, scan=False)
        self.path = path
        self.name = name or f"{TRACE_PREFIX}{path}"
        self.trace_name = info["name"]
        self.version = info["version"]
        self.meta = info["meta"]
        self.description = (f"trace-backed workload from {path} "
                            f"(v{self.version}, {self.trace_name!r})")

    def build_trace(self, seed: Optional[int] = None) -> Trace:
        from repro.isa.tracefile import stream_trace
        trace = stream_trace(self.path)
        trace.name = self.name
        return trace

    def resident_regions(self) -> List[Tuple[str, int, int]]:
        """Recorded traces carry no residency hints: the warmup window
        does the cache warming, as on real-trace simulators."""
        return []

    def file_sha256(self) -> str:
        """Content hash of the backing file (for provenance manifests).
        Cached per (path, mtime, size) so per-point manifests don't
        re-hash a large trace for every sweep point."""
        st = os.stat(self.path)
        key = (self.path, st.st_mtime_ns, st.st_size)
        cached = _SHA_CACHE.get(key)
        if cached is not None:
            return cached
        h = hashlib.sha256()
        with open(self.path, "rb") as f:
            for chunk in iter(lambda: f.read(1 << 20), b""):
                h.update(chunk)
        _SHA_CACHE[key] = h.hexdigest()
        return _SHA_CACHE[key]

    def __repr__(self) -> str:
        return f"TraceWorkload({self.path!r})"


class MaterializedTraceWorkload:
    """A workload over an in-memory uop list (no backing file).

    Used where a trace must be embedded rather than referenced — golden
    fixtures import their raw inputs at measure time and pin the result
    here, so fingerprints cannot drift with importer-path file layout.
    Each ``build_trace`` call returns a *fresh* rewindable Trace over
    the shared immutable uops.
    """

    memory_intensive = True

    def __init__(self, uops: List[StaticUop], name: str,
                 description: str = ""):
        self._uops = list(uops)
        self.name = name
        self.description = description or f"materialized trace {name!r}"

    def build_trace(self, seed: Optional[int] = None) -> Trace:
        return Trace.from_list(self._uops, name=self.name)

    def resident_regions(self) -> List[Tuple[str, int, int]]:
        return []

    def __repr__(self) -> str:
        return (f"MaterializedTraceWorkload({self.name!r}, "
                f"{len(self._uops)} uops)")


def resolve_trace_workload(name: str) -> TraceWorkload:
    """Resolve a ``trace:<path>`` workload name."""
    path = name[len(TRACE_PREFIX):]
    if not path:
        raise KeyError(f"empty path in trace workload name {name!r}")
    try:
        return TraceWorkload(path, name=name)
    except FileNotFoundError as e:
        raise KeyError(str(e)) from None
