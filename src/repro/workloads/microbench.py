"""DRAM microbenchmarks: validate presets against their analytic curves.

Parameterising a DRAM model is not the same as getting it right — DRAM
re-evaluation work (Bostancı et al., "Cleaning up the Mess") validates
simulator timing by *measuring* latency and bandwidth with dedicated
microbenchmarks and comparing against the values the timing spec implies.
This module does that for every protocol preset, driving the raw
:class:`~repro.memory.dram.DramController` (no core, no caches):

- **pointer-chase latency ladder**: dependent accesses, each issued when
  the previous returns — row hits spaced on an open row measure
  ``row_hit_latency``; a serialised chase over distinct rows of one bank
  measures ``row_miss_latency``. Unloaded, both must land within ±1 core
  cycle of the spec value.
- **streaming bandwidth ceiling**: interleaved sequential streams with
  staggered row-crossing points (so activates hide behind other streams'
  bursts, as a real access pattern achieves) must sustain ≥ 95% of the
  per-channel data-bus ceiling ``peak_bandwidth``.

Refresh is masked (``t_refi=0``) during the two analytic comparisons —
a refresh window colliding with a probe would push it off the closed-form
value — and checked separately: with refresh on, a saturating stream must
accumulate refresh stall cycles and must not exceed the refresh-off
bandwidth.

The catalog workloads ``pchase`` and ``streambw`` are the full-hierarchy
versions of the same patterns. ``repro memval`` runs this validation from
the command line; CI runs it for every preset.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.params import DramParams
from repro.memory.dram import DramController
from repro.memory.dram.protocol import DRAM_PRESETS, DramProtocol

__all__ = [
    "MemvalResult",
    "measure_stream_bandwidth",
    "measure_unloaded_latency",
    "memval_table",
    "validate_all",
    "validate_preset",
]

#: Spacing between unloaded probes: far larger than any timing parameter,
#: so each probe sees an idle controller.
_PROBE_GAP = 1 << 20


def measure_unloaded_latency(params: DramParams,
                             probes: int = 32) -> Tuple[float, float]:
    """(mean row-hit latency, mean row-miss latency), unloaded.

    Hits: repeated dependent reads of one open row, spaced out. Misses:
    a serialised pointer chase over distinct rows of one bank — each
    access issues only when the previous one's data returns.
    """
    ctrl = DramController(params)
    unmap = ctrl.mapping.unmap
    addr = unmap(0, 0, 0)
    ctrl.access(addr, 0)  # open the row
    t = _PROBE_GAP
    hit_total = 0
    for _ in range(probes):
        hit_total += ctrl.access(addr, t) - t
        t += _PROBE_GAP
    miss_total = 0
    for i in range(probes):
        done = ctrl.access(unmap(0, 0, i + 1), t)
        miss_total += done - t
        t = done
    return hit_total / probes, miss_total / probes


def measure_stream_bandwidth(params: DramParams, lines: int = 8192,
                             streams: int = 8, stagger: int = 8,
                             ) -> Tuple[float, DramController]:
    """Sustained bandwidth (bytes/core-cycle) of interleaved streams.

    Streams walk consecutive rows (striped across channels and banks by
    the mapping); ``stagger`` offsets each stream's row-crossing points
    so activates overlap other streams' bursts instead of lining up —
    without it every stream would cross rows on the same beat and the
    shared bus would drain once per row, capping FCFS ~6% below ceiling.
    Returns the measured bandwidth and the controller (for counters).
    """
    ctrl = DramController(params)
    row_size = params.row_size
    makespan = 1
    for k in range(lines):
        s = k % streams
        j = k // streams
        addr = s * row_size + (j + stagger * s) * 64
        done = ctrl.access(addr, 0)
        if done > makespan:
            makespan = done
    return lines * 64.0 / (makespan + params.bus_cycles_per_access), ctrl


@dataclass
class MemvalResult:
    """One preset's measured-vs-analytic comparison."""

    preset: str
    scheduler: str
    spec_hit: int
    spec_miss: int
    peak_bw: float
    measured_hit: float
    measured_miss: float
    measured_bw: float
    #: Refresh-on numbers (None when the preset has no refresh).
    refresh_bw: Optional[float] = None
    refresh_stalls: int = 0
    problems: List[str] = None  # set in validate_preset

    @property
    def ok(self) -> bool:
        return not self.problems


def validate_preset(proto: DramProtocol, scheduler: str = "fcfs",
                    latency_tol: int = 1,
                    bw_frac: float = 0.95) -> MemvalResult:
    """Measure one preset and diff against its analytic spec values."""
    masked = proto.params(scheduler=scheduler, refresh=False)
    hit, miss = measure_unloaded_latency(masked)
    bw, _ = measure_stream_bandwidth(masked)
    problems: List[str] = []
    if abs(hit - masked.row_hit_latency) > latency_tol:
        problems.append(
            f"unloaded row-hit latency {hit:.1f} deviates from spec "
            f"{masked.row_hit_latency} by more than {latency_tol} cycle(s)")
    if abs(miss - masked.row_miss_latency) > latency_tol:
        problems.append(
            f"unloaded row-miss latency {miss:.1f} deviates from spec "
            f"{masked.row_miss_latency} by more than {latency_tol} cycle(s)")
    if bw < bw_frac * masked.peak_bandwidth:
        problems.append(
            f"streaming bandwidth {bw:.2f} B/cyc below "
            f"{bw_frac:.0%} of the {masked.peak_bandwidth:.1f} B/cyc ceiling")
    result = MemvalResult(
        preset=proto.name, scheduler=scheduler,
        spec_hit=masked.row_hit_latency, spec_miss=masked.row_miss_latency,
        peak_bw=masked.peak_bandwidth,
        measured_hit=hit, measured_miss=miss, measured_bw=bw,
        problems=problems)
    if proto.t_refi:
        live = proto.params(scheduler=scheduler)
        bw_ref, ctrl = measure_stream_bandwidth(live)
        result.refresh_bw = bw_ref
        result.refresh_stalls = ctrl.refresh_stall_cycles
        if ctrl.refresh_stall_cycles <= 0:
            problems.append("refresh enabled but a saturating stream "
                            "accumulated no refresh stall cycles")
        if bw_ref > bw + 1e-9:
            problems.append(
                f"refresh-on bandwidth {bw_ref:.2f} exceeds refresh-off "
                f"{bw:.2f}")
    return result


def validate_all(scheduler: str = "fcfs",
                 presets: Optional[List[str]] = None) -> List[MemvalResult]:
    """Validate presets (default: all) and the cross-preset bandwidth
    ordering hbm2 > ddr4-3200 > ddr3-1600."""
    names = list(presets) if presets else list(DRAM_PRESETS)
    results = [validate_preset(DRAM_PRESETS[n], scheduler=scheduler)
               for n in names]
    by_name = {r.preset: r for r in results}
    ordering = ("hbm2", "ddr4-3200", "ddr3-1600")
    if all(n in by_name for n in ordering):
        faster, slower = ordering[:-1], ordering[1:]
        for hi, lo in zip(faster, slower):
            if by_name[hi].measured_bw <= by_name[lo].measured_bw:
                by_name[hi].problems.append(
                    f"measured bandwidth ordering violated: {hi} "
                    f"({by_name[hi].measured_bw:.2f}) <= {lo} "
                    f"({by_name[lo].measured_bw:.2f})")
    return results


def memval_table(results: List[MemvalResult]) -> str:
    """Human-readable comparison table (used by ``repro memval``)."""
    from repro.analysis.tables import format_table

    rows = []
    for r in results:
        rows.append([
            r.preset, r.scheduler,
            f"{r.measured_hit:.1f}/{r.spec_hit}",
            f"{r.measured_miss:.1f}/{r.spec_miss}",
            f"{r.measured_bw:.2f}/{r.peak_bw:.1f}",
            "-" if r.refresh_bw is None else f"{r.refresh_bw:.2f}",
            r.refresh_stalls,
            "ok" if r.ok else "FAIL",
        ])
    return format_table(
        ["preset", "sched", "hit meas/spec", "miss meas/spec",
         "bw meas/peak", "bw+refresh", "ref stalls", "status"],
        rows)
