"""TAGE-SC-L-style branch predictor.

A faithful-in-spirit, compact implementation of the predictor family the
paper configures (8 KB TAGE-SC-L, CBP2016): a bimodal base predictor,
several partially-tagged tables indexed with geometrically increasing
global-history lengths, a loop predictor, and a small statistical corrector
that can override the TAGE output when it is historically biased wrong.

The simulator is trace-driven, so the predictor is updated with the actual
outcome immediately after each prediction (in-order, speculation-free
training — standard practice for trace-driven studies).
"""

from typing import List, Optional, Tuple


class _TaggedTable:
    __slots__ = ("size", "tag_bits", "hist_len", "tags", "ctrs", "useful",
                 "_idx_mask", "_tag_mask", "_idx_bits", "f_idx", "f_tag")

    def __init__(self, size: int, tag_bits: int, hist_len: int):
        self.size = size
        self.tag_bits = tag_bits
        self.hist_len = hist_len
        self.tags = [0] * size
        self.ctrs = [0] * size  # signed 3-bit: -4..3, taken when >= 0
        self.useful = [0] * size
        self._idx_mask = size - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._idx_bits = size.bit_length() - 1
        # Folded-history CSRs, maintained incrementally on every history
        # shift (hardware keeps exactly these registers; recomputing the
        # fold per prediction is the software-only slow path).
        self.f_idx = 0
        self.f_tag = 0

    def fold(self, hist: int, bits: int) -> int:
        h = hist & ((1 << self.hist_len) - 1)
        folded = 0
        while h:
            folded ^= h & ((1 << bits) - 1)
            h >>= bits
        return folded

    def index(self, pc: int, hist: int) -> int:
        return (pc ^ (pc >> 4) ^ self.fold(hist, self._idx_bits)) \
            & self._idx_mask

    def tag(self, pc: int, hist: int) -> int:
        return (pc ^ self.fold(hist, self.tag_bits)) & self._tag_mask or 1

    def shift_folded(self, hist: int, b: int) -> None:
        """Advance both CSRs for appending outcome bit ``b`` to ``hist``
        (pass the history *before* the shift: the outgoing bit is read
        from it). Rotate-left by one, inject the new bit at position 0
        and cancel the bit leaving the window at position ``L mod B``."""
        ln = self.hist_len
        out = (hist >> (ln - 1)) & 1
        bits = self._idx_bits
        f = self.f_idx
        f = ((f << 1) | (f >> (bits - 1))) & self._idx_mask
        self.f_idx = f ^ b ^ (out << (ln % bits))
        bits = self.tag_bits
        f = self.f_tag
        f = ((f << 1) | (f >> (bits - 1))) & self._tag_mask
        self.f_tag = f ^ b ^ (out << (ln % bits))

    def refold(self, hist: int) -> None:
        """Recompute both CSRs from scratch (history overwritten, e.g. the
        runahead-exit checkpoint restore)."""
        self.f_idx = self.fold(hist, self._idx_bits)
        self.f_tag = self.fold(hist, self.tag_bits)


class _LoopPredictor:
    """Learns fixed trip counts of loop branches."""

    __slots__ = ("_table", "_size")

    def __init__(self, size: int = 64):
        # pc -> [trip_count_learned, current_count, confidence]
        self._table: dict = {}
        self._size = size

    def predict(self, pc: int) -> Optional[bool]:
        e = self._table.get(pc)
        if e is None or e[2] < 2:
            return None
        trip, cur, _conf = e
        return cur < trip  # taken until the learned trip count is reached

    def update(self, pc: int, taken: bool) -> None:
        e = self._table.get(pc)
        if e is None:
            if len(self._table) >= self._size:
                self._table.pop(next(iter(self._table)))
            e = self._table[pc] = [0, 0, 0]
        if taken:
            e[1] += 1
            if e[1] > 4096:  # runaway: not a countable loop
                self._table.pop(pc, None)
            return
        # Loop exit: check whether the trip count repeats.
        if e[1] == e[0] and e[0] > 0:
            e[2] = min(e[2] + 1, 3)
        else:
            e[0] = e[1]
            e[2] = 0
        e[1] = 0


class TageScL:
    """Predictor facade used by the core.

    Args:
        num_tables: tagged TAGE components.
        table_size: entries per tagged component (power of two).
        min_hist/max_hist: geometric history length range.
    """

    def __init__(
        self,
        num_tables: int = 5,
        table_size: int = 1024,
        tag_bits: int = 9,
        min_hist: int = 4,
        max_hist: int = 128,
        bimodal_size: int = 8192,
    ):
        if table_size & (table_size - 1):
            raise ValueError("table_size must be a power of two")
        ratio = (max_hist / min_hist) ** (1.0 / max(1, num_tables - 1))
        self.tables: List[_TaggedTable] = []
        h = float(min_hist)
        for _ in range(num_tables):
            self.tables.append(_TaggedTable(table_size, tag_bits, int(round(h))))
            h *= ratio
        self.bimodal = [1] * bimodal_size  # 2-bit: 0..3, taken when >= 2
        self._bimodal_mask = bimodal_size - 1
        self._hist = 0
        self.loop = _LoopPredictor()
        # Statistical corrector: per-PC bias counters that veto TAGE when
        # the TAGE prediction has been persistently wrong for this PC.
        self._sc: dict = {}
        self._alloc_seed = 0x9E3779B9
        self.predictions = 0
        self.mispredictions = 0

    @property
    def hist(self) -> int:
        return self._hist

    @hist.setter
    def hist(self, value: int) -> None:
        # Overwriting the history (runahead exit restores a checkpoint)
        # invalidates every CSR: refold from scratch.
        self._hist = value
        for table in self.tables:
            table.refold(value)

    # ------------------------------------------------------------- predict

    def _tage_predict(self, pc: int) -> Tuple[bool, int, int]:
        """Returns (prediction, provider_table_index_or_-1, provider_idx)."""
        provider = -1
        pidx = 0
        pred: Optional[bool] = None
        for t in range(len(self.tables) - 1, -1, -1):
            table = self.tables[t]
            idx = (pc ^ (pc >> 4) ^ table.f_idx) & table._idx_mask
            if table.tags[idx] == ((pc ^ table.f_tag) & table._tag_mask or 1):
                provider = t
                pidx = idx
                pred = table.ctrs[idx] >= 0
                break
        if pred is None:
            pred = self.bimodal[pc & self._bimodal_mask] >= 2
        return pred, provider, pidx

    def predict(self, pc: int) -> bool:
        loop_pred = self.loop.predict(pc)
        if loop_pred is not None:
            return loop_pred
        pred, _, _ = self._tage_predict(pc)
        sc = self._sc.get(pc)
        if sc is not None and sc >= 12:
            # Corrector is confident the TAGE output is systematically
            # wrong for this PC: flip it. (Large *negative* drift means
            # TAGE is persistently right — never flip on that side.)
            pred = not pred
        return pred

    # -------------------------------------------------------------- update

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train all components with the resolved outcome."""
        self.predictions += 1
        if predicted != taken:
            self.mispredictions += 1
        self.loop.update(pc, taken)

        tage_pred, provider, pidx = self._tage_predict(pc)
        # Statistical corrector training: track whether TAGE agreed.
        sc = self._sc.get(pc, 0)
        sc += 1 if tage_pred != taken else -1
        self._sc[pc] = max(-16, min(16, sc))
        if len(self._sc) > 4096:
            self._sc.pop(next(iter(self._sc)))

        if provider >= 0:
            table = self.tables[provider]
            c = table.ctrs[pidx]
            table.ctrs[pidx] = min(3, c + 1) if taken else max(-4, c - 1)
            if tage_pred == taken:
                table.useful[pidx] = min(3, table.useful[pidx] + 1)
            else:
                table.useful[pidx] = max(0, table.useful[pidx] - 1)
        else:
            b = self.bimodal[pc & self._bimodal_mask]
            self.bimodal[pc & self._bimodal_mask] = (
                min(3, b + 1) if taken else max(0, b - 1)
            )

        if tage_pred != taken:
            self._allocate(pc, taken, provider)

    def _allocate(self, pc: int, taken: bool, provider: int) -> None:
        """On a TAGE mispredict, claim an entry in a longer-history table."""
        self._alloc_seed = (self._alloc_seed * 1103515245 + 12345) & 0x7FFFFFFF
        start = provider + 1
        if start >= len(self.tables):
            return
        # Probabilistically skip one table to spread allocations.
        if self._alloc_seed & 1 and start + 1 < len(self.tables):
            start += 1
        for t in range(start, len(self.tables)):
            table = self.tables[t]
            idx = (pc ^ (pc >> 4) ^ table.f_idx) & table._idx_mask
            if table.useful[idx] == 0:
                table.tags[idx] = (pc ^ table.f_tag) & table._tag_mask or 1
                table.ctrs[idx] = 0 if taken else -1
                return
            table.useful[idx] -= 1

    def observe(self, pc: int, taken: bool) -> bool:
        """Predict, then immediately train; returns the prediction."""
        predicted = self.predict(pc)
        self.update(pc, taken, predicted)
        self.shift_history(taken)
        return predicted

    def shift_history(self, taken: bool) -> None:
        """Append one outcome to the global history register."""
        b = 1 if taken else 0
        hist = self._hist
        for table in self.tables:
            table.shift_folded(hist, b)
        self._hist = ((hist << 1) | b) & ((1 << 256) - 1)

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
