"""Branch target buffer.

Direct-mapped, tag-checked. A taken branch whose target is absent from the
BTB costs a front-end redirect exactly like a direction mispredict (the
fetch unit cannot follow an unknown target). Catalog workloads are small
loops, so the BTB warms quickly — its effect shows only in the first
iterations and in very large bodies.
"""

from typing import List


class Btb:
    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self._mask = entries - 1
        self._tags: List[int] = [-1] * entries
        self._targets: List[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> int:
        """Return the predicted target, or -1 on a BTB miss."""
        idx = pc & self._mask
        if self._tags[idx] == pc:
            self.hits += 1
            return self._targets[idx]
        self.misses += 1
        return -1

    def update(self, pc: int, target: int) -> None:
        idx = pc & self._mask
        self._tags[idx] = pc
        self._targets[idx] = target
