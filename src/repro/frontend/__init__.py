"""Front-end substrate: branch prediction and the fetch pipe."""

from repro.frontend.btb import Btb
from repro.frontend.fetch import FrontEnd
from repro.frontend.tage import TageScL

__all__ = ["TageScL", "Btb", "FrontEnd"]
