"""Front-end pipe model.

The front-end is modelled as a latency/bandwidth stage: up to ``width``
uops are fetched per cycle and become dispatchable ``depth`` cycles later
(the 8-stage front-end of Table II). A redirect — branch mispredict
recovery, FLUSH refetch, runahead-exit flush — clears the pipe and gates
fetch until ``resume_cycle``.

Wrong-path fetch: while an unresolved mispredicted branch is in flight the
front-end synthesises wrong-path uops (see :class:`WrongPathSource`); these
allocate back-end resources and may access memory, but are squashed at
branch resolution and are un-ACE.
"""

import random
from collections import deque
from typing import Deque, Optional, Tuple

from repro.common.enums import UopClass
from repro.isa.uop import NO_ADDR, StaticUop


class WrongPathSource:
    """Synthesises plausible wrong-path instruction streams.

    Real wrong paths re-execute nearby code with garbage operands; the
    source mimics that with the workload's rough instruction mix, loads to
    arbitrary lines in a large region (cache pollution, MSHR pressure), and
    short dependence chains.
    """

    _MIX = (
        UopClass.INT_ADD, UopClass.INT_ADD, UopClass.LOAD, UopClass.INT_ADD,
        UopClass.BRANCH, UopClass.INT_ADD, UopClass.LOAD, UopClass.STORE,
    )

    #: Wrong paths re-execute nearby code on garbage operands, so most of
    #: their accesses land in data the program already touched (cached);
    #: only a minority reach cold memory.
    COLD_FRACTION = 0.15

    def __init__(self, seed: int, warm_base: int = 0x0800_0000,
                 warm_size: int = 448 * 1024,
                 cold_base: int = 0x7800_0000,
                 cold_size: int = 8 * 1024 * 1024):
        self._rng = random.Random(seed ^ 0xBAD_BAD)
        self._warm_base = warm_base
        self._warm_lines = warm_size // 64
        self._cold_base = cold_base
        self._cold_lines = cold_size // 64
        self._count = 0

    _MIX_INT = tuple(int(c) for c in _MIX)
    _IS_MEM = tuple(c in (UopClass.LOAD, UopClass.STORE) for c in _MIX)

    def next_uop(self, after_idx: int) -> StaticUop:
        """A wrong-path uop; ``idx`` is negative so it never aliases the trace."""
        self._count += 1
        slot = self._count & 7  # len(_MIX) == 8
        addr = NO_ADDR
        if self._IS_MEM[slot]:
            if self._rng.random() < self.COLD_FRACTION:
                addr = self._cold_base + self._rng.randrange(self._cold_lines) * 64
            else:
                addr = self._warm_base + self._rng.randrange(self._warm_lines) * 64
        return StaticUop(-self._count, 0x100000 + (self._count % 251) * 4,
                         self._MIX_INT[slot], (), addr, False)


class FrontEnd:
    """Fetch buffer between the fetch unit and dispatch.

    Payloads are :class:`~repro.isa.uop.DynUop` instances created at fetch
    time (branch prediction happens at fetch, so the dynamic instance and
    its predicted direction already exist when it enters the pipe).
    """

    def __init__(self, width: int, depth: int, capacity: Optional[int] = None):
        self.width = width
        self.depth = depth
        self.capacity = capacity if capacity is not None else width * depth
        #: (dyn_uop, dispatchable_cycle)
        self._pipe: Deque[Tuple[object, int]] = deque()
        self.resume_cycle = 0

    def __len__(self) -> int:
        return len(self._pipe)

    def __iter__(self):
        return (uop for uop, _ in self._pipe)

    @property
    def full(self) -> bool:
        return len(self._pipe) >= self.capacity

    def can_fetch(self, cycle: int) -> bool:
        return cycle >= self.resume_cycle and len(self._pipe) < self.capacity

    def push(self, uop, cycle: int) -> None:
        self._pipe.append((uop, cycle + self.depth))

    def peek_ready(self, cycle: int):
        """The oldest uop if it has traversed the pipe, else None."""
        if not self._pipe:
            return None
        uop, ready = self._pipe[0]
        if ready > cycle:
            return None
        return uop

    def pop(self):
        uop, _ = self._pipe.popleft()
        return uop

    def next_arrival(self) -> Optional[int]:
        """Cycle at which the oldest queued uop becomes dispatchable."""
        if not self._pipe:
            return None
        return self._pipe[0][1]

    def redirect(self, cycle: int, penalty: Optional[int] = None) -> None:
        """Clear the pipe and gate fetch (mispredict/flush recovery).

        Overwrites any previous gate: a redirect always re-steers fetch,
        including reopening a fetch unit that a mechanism had parked.
        """
        self._pipe.clear()
        self.resume_cycle = cycle + (self.depth if penalty is None else penalty)
