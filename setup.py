"""Legacy setup shim: keeps `pip install -e .` working offline with the
pinned setuptools in this environment (no wheel, no network)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reliability-Aware Runahead (HPCA 2022) — cycle-level OoO simulator "
        "with ACE-bit reliability accounting"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
