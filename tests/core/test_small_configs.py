"""Robustness across extreme machine geometries.

Every policy must run to completion — no deadlocks, no resource-accounting
violations — on cores far smaller and far larger than the paper's
baseline, with shallow and deep front-ends.
"""

from dataclasses import replace

import pytest

from repro.common.params import BASELINE, CoreParams
from repro.core.core import OutOfOrderCore
from repro.core.runahead import ALL_POLICIES, OOO, RAR
from repro.workloads.catalog import get_workload

CONFIGS = {
    "tiny": CoreParams(rob_size=16, iq_size=8, lq_size=6, sq_size=6,
                       int_regs=48, fp_regs=48),
    "narrow-iq": replace(BASELINE.core, iq_size=12),
    "small-lsq": replace(BASELINE.core, lq_size=8, sq_size=4),
    "huge": CoreParams(rob_size=512, iq_size=256, lq_size=192, sq_size=128,
                       int_regs=512, fp_regs=512),
    "shallow": replace(BASELINE.core, frontend_depth=2),
    "deep": replace(BASELINE.core, frontend_depth=20),
}


def _run(config_name, policy, instructions=600):
    machine = BASELINE.with_core(CONFIGS[config_name], name=config_name)
    spec = get_workload("soplex")
    core = OutOfOrderCore(machine, spec.build_trace(), policy)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
def test_runs_to_completion(config, policy):
    core = _run(config, policy)
    assert core.stats.committed >= 600
    assert core.ipc > 0
    # Resource accounting must end internally consistent.
    assert 0 <= core.lsq.lq_used <= core.lsq.lq_size
    assert 0 <= core.lsq.sq_used <= core.lsq.sq_size
    assert 0 <= core.regs.int_free <= core.regs.int_total
    assert 0 <= core.regs.fp_free <= core.regs.fp_total
    assert len(core.iq) <= core.iq.size


def test_tiny_core_exposes_less_state_than_huge():
    tiny = _run("tiny", OOO)
    huge = _run("huge", OOO)
    assert tiny.ace.total / tiny.stats.committed < \
        huge.ace.total / huge.stats.committed


def test_rar_still_helps_on_tiny_core():
    base = _run("tiny", OOO, 1200)
    rar = _run("tiny", RAR, 1200)
    abc = lambda c: c.ace.total / c.stats.committed  # noqa: E731
    assert abc(rar) < abc(base)
