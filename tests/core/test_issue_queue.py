"""Issue queue wakeup/select."""

import pytest

from repro.common.enums import UopClass
from repro.core.issue_queue import IssueQueue
from repro.isa.uop import DynUop, StaticUop


def dyn(seq, pending=0):
    u = DynUop(StaticUop(idx=seq, pc=0, cls=int(UopClass.INT_ADD)), seq=seq)
    u.pending = pending
    return u


class TestInsertSelect:
    def test_ready_at_insert(self):
        iq = IssueQueue(size=4)
        u = dyn(1)
        iq.insert(u)
        assert iq.ready_count == 1
        assert iq.pop_ready() is u

    def test_waiting_until_wakeup(self):
        iq = IssueQueue(size=4)
        u = dyn(1, pending=2)
        iq.insert(u)
        assert iq.ready_count == 0
        u.pending -= 1
        iq.wakeup(u)
        assert iq.ready_count == 0  # still one producer outstanding
        u.pending -= 1
        iq.wakeup(u)
        assert iq.ready_count == 1

    def test_wakeup_of_unknown_uop_is_noop(self):
        iq = IssueQueue(size=4)
        iq.wakeup(dyn(9))
        assert iq.ready_count == 0

    def test_requeue_preserves_front(self):
        iq = IssueQueue(size=4)
        a, b = dyn(1), dyn(2)
        iq.insert(a)
        iq.insert(b)
        got = iq.pop_ready()
        iq.requeue(got)
        assert iq.pop_ready() is got


class TestOccupancy:
    def test_full_counts_waiting_ready_and_runahead(self):
        iq = IssueQueue(size=3)
        iq.insert(dyn(1))
        iq.insert(dyn(2, pending=1))
        iq.runahead_used = 1
        assert iq.full
        assert iq.free == 0
        with pytest.raises(OverflowError):
            iq.insert(dyn(3))

    def test_free(self):
        iq = IssueQueue(size=5)
        iq.insert(dyn(1))
        assert iq.free == 4


class TestSquash:
    def test_squash_predicate(self):
        iq = IssueQueue(size=8)
        keep, drop = dyn(1), dyn(2)
        drop.squashed = True
        wait_drop = dyn(3, pending=1)
        wait_drop.squashed = True
        iq.insert(keep)
        iq.insert(drop)
        iq.insert(wait_drop)
        n = iq.squash(lambda u: u.squashed)
        assert n == 2
        assert len(iq) == 1
        assert iq.pop_ready() is keep

    def test_clear(self):
        iq = IssueQueue(size=8)
        iq.insert(dyn(1))
        iq.runahead_used = 3
        iq.clear()
        assert len(iq) == 0
        assert iq.runahead_used == 0
