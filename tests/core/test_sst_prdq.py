"""PRE machinery: Stalling Slice Table and PRDQ."""

import pytest

from repro.core.prdq import Prdq
from repro.core.regfile import RegisterFiles
from repro.core.sst import StallingSliceTable


class TestSst:
    def test_lookup_after_insert(self):
        sst = StallingSliceTable(size=4)
        assert not sst.lookup(0x400)
        sst.insert(0x400)
        assert sst.lookup(0x400)
        assert 0x400 in sst

    def test_lru_eviction(self):
        sst = StallingSliceTable(size=2)
        sst.insert(0x1)
        sst.insert(0x2)
        sst.lookup(0x1)      # promote
        sst.insert(0x3)      # evicts 0x2
        assert 0x1 in sst and 0x3 in sst and 0x2 not in sst

    def test_reinsert_promotes(self):
        sst = StallingSliceTable(size=2)
        sst.insert(0x1)
        sst.insert(0x2)
        sst.insert(0x1)      # promote, no growth
        sst.insert(0x3)      # evicts 0x2
        assert 0x1 in sst and 0x2 not in sst
        assert len(sst) == 2

    def test_train_slice(self):
        sst = StallingSliceTable(size=8)
        sst.train_slice([0x10, 0x20, 0x30])
        assert all(pc in sst for pc in (0x10, 0x20, 0x30))

    def test_hit_stats(self):
        sst = StallingSliceTable(size=4)
        sst.insert(0x1)
        sst.lookup(0x1)
        sst.lookup(0x2)
        assert sst.hits == 1 and sst.lookups == 2


class TestPrdq:
    def regs(self):
        return RegisterFiles(40, 40, arch_regs=32)

    def test_allocate_borrows_register(self):
        r = self.regs()
        q = Prdq(size=4, regs=r)
        q.allocate(fp=False, release_cycle=10)
        assert r.int_free == 7
        assert len(q) == 1

    def test_drain_releases_in_time_order(self):
        r = self.regs()
        q = Prdq(size=8, regs=r)
        # Out-of-order release cycles: a FIFO would head-of-line block.
        q.allocate(fp=False, release_cycle=100)
        q.allocate(fp=False, release_cycle=5)
        q.allocate(fp=True, release_cycle=6)
        assert q.drain(10) == 2
        assert r.int_free == 7 and r.fp_free == 8
        assert q.drain(100) == 1
        assert r.int_free == 8

    def test_capacity(self):
        r = self.regs()
        q = Prdq(size=2, regs=r)
        q.allocate(fp=False, release_cycle=1)
        q.allocate(fp=False, release_cycle=2)
        assert q.full
        assert not q.can_allocate(fp=False)
        with pytest.raises(OverflowError):
            q.allocate(fp=False, release_cycle=3)

    def test_can_allocate_requires_free_register(self):
        r = RegisterFiles(33, 40, arch_regs=32)
        q = Prdq(size=8, regs=r)
        q.allocate(fp=False, release_cycle=1)
        assert not q.can_allocate(fp=False)  # register file empty
        assert q.can_allocate(fp=True)

    def test_flush_returns_everything(self):
        r = self.regs()
        q = Prdq(size=8, regs=r)
        for i in range(5):
            q.allocate(fp=bool(i % 2), release_cycle=1000 + i)
        q.flush()
        assert len(q) == 0
        assert r.int_free == 8 and r.fp_free == 8

    def test_next_release(self):
        r = self.regs()
        q = Prdq(size=8, regs=r)
        assert q.next_release() is None
        q.allocate(fp=False, release_cycle=42)
        q.allocate(fp=False, release_cycle=7)
        assert q.next_release() == 7
