"""Functional-unit pool."""

import pytest

from repro.common.enums import UopClass
from repro.common.params import CoreParams
from repro.core.fu import FuPool, fu_class_for


def pool():
    return FuPool(CoreParams())


class TestMapping:
    def test_mem_and_branch_use_int_add(self):
        assert fu_class_for(int(UopClass.LOAD)) == int(UopClass.INT_ADD)
        assert fu_class_for(int(UopClass.STORE)) == int(UopClass.INT_ADD)
        assert fu_class_for(int(UopClass.BRANCH)) == int(UopClass.INT_ADD)
        assert fu_class_for(int(UopClass.INT_CMP)) == int(UopClass.INT_ADD)

    def test_latencies(self):
        p = pool()
        assert p.latency(int(UopClass.INT_ADD)) == 1
        assert p.latency(int(UopClass.INT_MUL)) == 3
        assert p.latency(int(UopClass.INT_DIV)) == 18
        assert p.latency(int(UopClass.FP_MUL)) == 5
        assert p.latency(int(UopClass.LOAD)) == 1  # AGU


class TestPipelined:
    def test_per_cycle_limit(self):
        p = pool()
        cls = int(UopClass.INT_ADD)
        for _ in range(3):  # 3 int-add units
            assert p.can_issue(cls, 10)
            p.issue(cls, 10)
        assert not p.can_issue(cls, 10)
        assert p.can_issue(cls, 11)  # fresh cycle

    def test_over_issue_raises(self):
        p = pool()
        cls = int(UopClass.INT_ADD)
        for _ in range(3):
            p.issue(cls, 5)
        with pytest.raises(OverflowError):
            p.issue(cls, 5)

    def test_completion_cycle(self):
        p = pool()
        assert p.issue(int(UopClass.FP_ADD), 10) == 13


class TestNonPipelined:
    def test_divider_busy_for_full_latency(self):
        p = pool()
        cls = int(UopClass.INT_DIV)
        done = p.issue(cls, 0)
        assert done == 18
        assert not p.can_issue(cls, 5)
        assert not p.can_issue(cls, 17)
        assert p.can_issue(cls, 18)

    def test_fp_div(self):
        p = pool()
        cls = int(UopClass.FP_DIV)
        p.issue(cls, 0)
        assert not p.can_issue(cls, 3)
        assert p.can_issue(cls, 6)

    def test_busy_issue_raises(self):
        p = pool()
        cls = int(UopClass.INT_DIV)
        p.issue(cls, 0)
        with pytest.raises(OverflowError):
            p.issue(cls, 1)

    def test_exec_cycles_for_ace(self):
        p = pool()
        assert p.exec_cycles(int(UopClass.INT_DIV)) == 18
        assert p.exec_cycles(int(UopClass.LOAD)) == 1
