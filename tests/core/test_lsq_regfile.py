"""Load/store queues and physical register file accounting."""

import pytest

from repro.common.enums import UopClass
from repro.core.lsq import LoadStoreQueues
from repro.core.regfile import RegisterFiles
from repro.isa.uop import DynUop, StaticUop


def dyn(cls, seq=1):
    return DynUop(StaticUop(idx=seq, pc=0, cls=int(cls), addr=0x100), seq=seq)


class TestLsq:
    def test_load_allocation(self):
        lsq = LoadStoreQueues(2, 2)
        u = dyn(UopClass.LOAD)
        lsq.allocate(u)
        assert lsq.lq_used == 1 and u.in_lq
        lsq.release(u)
        assert lsq.lq_used == 0 and not u.in_lq

    def test_store_allocation(self):
        lsq = LoadStoreQueues(2, 1)
        u = dyn(UopClass.STORE)
        lsq.allocate(u)
        assert lsq.sq_used == 1 and u.in_sq
        assert lsq.sq_full
        assert not lsq.can_allocate(dyn(UopClass.STORE, 2))
        assert lsq.can_allocate(dyn(UopClass.LOAD, 3))

    def test_non_mem_always_allocatable(self):
        lsq = LoadStoreQueues(0, 0)
        u = dyn(UopClass.INT_ADD)
        assert lsq.can_allocate(u)
        lsq.allocate(u)  # no-op
        lsq.release(u)   # no-op

    def test_overflow(self):
        lsq = LoadStoreQueues(1, 1)
        lsq.allocate(dyn(UopClass.LOAD, 1))
        with pytest.raises(OverflowError):
            lsq.allocate(dyn(UopClass.LOAD, 2))

    def test_double_release_detected(self):
        lsq = LoadStoreQueues(1, 1)
        u = dyn(UopClass.LOAD)
        lsq.allocate(u)
        lsq.release(u)
        u.in_lq = True  # corrupt deliberately
        with pytest.raises(RuntimeError):
            lsq.release(u)

    def test_double_release_with_cleared_flags_raises(self):
        """A second release used to silently no-op (flags already
        cleared), masking commit+squash double-accounting."""
        lsq = LoadStoreQueues(2, 2)
        load, store = dyn(UopClass.LOAD), dyn(UopClass.STORE, 2)
        for u in (load, store):
            lsq.allocate(u)
            lsq.release(u)
            with pytest.raises(RuntimeError, match="double release"):
                lsq.release(u)
        assert lsq.lq_used == 0 and lsq.sq_used == 0


class TestRegFiles:
    def test_initial_free_excludes_architectural(self):
        r = RegisterFiles(168, 168, arch_regs=32)
        assert r.int_free == 136
        assert r.fp_free == 136

    def test_int_alloc_release(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        u = dyn(UopClass.LOAD)
        r.allocate(u)
        assert r.int_free == 7
        r.release(u)
        assert r.int_free == 8

    def test_fp_alloc(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        u = dyn(UopClass.FP_MUL)
        r.allocate(u)
        assert r.fp_free == 7
        assert r.int_free == 8

    def test_no_dest_no_alloc(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        for cls in (UopClass.STORE, UopClass.BRANCH, UopClass.NOP,
                    UopClass.INT_CMP):
            r.allocate(dyn(cls))
        assert r.int_free == 8 and r.fp_free == 8

    def test_exhaustion(self):
        r = RegisterFiles(34, 34, arch_regs=32)
        r.allocate(dyn(UopClass.INT_ADD, 1))
        r.allocate(dyn(UopClass.INT_ADD, 2))
        assert not r.can_allocate(dyn(UopClass.INT_ADD, 3))
        with pytest.raises(OverflowError):
            r.allocate(dyn(UopClass.INT_ADD, 3))

    def test_overfree_detected(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        with pytest.raises(RuntimeError):
            r.release(dyn(UopClass.INT_ADD))

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterFiles(32, 168, arch_regs=32)


class TestRunaheadLending:
    def test_borrow_and_return(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        r.runahead_borrow(fp=False)
        assert r.int_free == 7 and r.runahead_int == 1
        r.runahead_return(fp=False)
        assert r.int_free == 8 and r.runahead_int == 0

    def test_return_all(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        for _ in range(3):
            r.runahead_borrow(fp=False)
        r.runahead_borrow(fp=True)
        r.runahead_return_all()
        assert r.int_free == 8 and r.fp_free == 8
        assert r.runahead_int == 0 and r.runahead_fp == 0

    def test_borrow_exhaustion(self):
        r = RegisterFiles(33, 40, arch_regs=32)
        r.runahead_borrow(fp=False)
        assert not r.runahead_available(fp=False)
        with pytest.raises(OverflowError):
            r.runahead_borrow(fp=False)

    def test_unbalanced_return_detected(self):
        r = RegisterFiles(40, 40, arch_regs=32)
        with pytest.raises(RuntimeError):
            r.runahead_return(fp=False)
