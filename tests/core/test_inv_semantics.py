"""Runahead INV propagation on hand-built traces.

These traces make the dependence structure explicit, so the tests pin the
exact semantics: uops transitively dependent on the blocking load are INV
(no prefetch), independent loads prefetch, and a wrong INV-branch
prediction diverges the interval.
"""


from repro.common.enums import Mode, UopClass
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import RAR
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop

L, A, B = int(UopClass.LOAD), int(UopClass.INT_ADD), int(UopClass.BRANCH)

COLD = 0x5000_0000  # never preloaded: always an LLC miss at first touch

# Strides are deliberately NOT powers of two: a 2^k stride maps every
# line to the same cache set at every level, and the resulting conflict
# thrash can evict a blocking load's line faster than it can be refetched
# — a realistic pathology, but not what these tests are about.
CHASE_STRIDE = (1 << 16) + 64
INDEP_STRIDE = (1 << 14) + 64


def chase_trace(n_links=400, stride=CHASE_STRIDE):
    """A pure pointer chain: load_i's address depends on load_{i-1}."""
    uops = []
    for i in range(n_links):
        srcs = (i - 1,) if i else ()
        uops.append(StaticUop(idx=i, pc=0x400000 + (i % 16) * 4, cls=L,
                              srcs=srcs, addr=COLD + i * stride))
    return Trace.from_list(uops, name="chain")


def independent_trace(n=800, stride=INDEP_STRIDE):
    """Independent loads with trivial address generation."""
    uops = []
    for i in range(n):
        if i % 2 == 0:
            uops.append(StaticUop(idx=i, pc=0x400000, cls=A))
        else:
            uops.append(StaticUop(idx=i, pc=0x400004, cls=L, srcs=(i - 1,),
                                  addr=COLD + i * stride))
    return Trace.from_list(uops, name="indep")


def run_rar(trace, instructions):
    core = OutOfOrderCore(BASELINE, trace, RAR)
    core.run(instructions)
    return core


class TestInvPropagation:
    def test_dependent_chain_gets_no_prefetch_coverage(self):
        """Every chase link (transitively) depends on the blocking load:
        runahead must mark them INV and issue no prefetches at all."""
        core = run_rar(chase_trace(), 300)
        assert core.stats.runahead_triggers > 0
        assert core.stats.runahead_prefetches == 0
        # The chain serialises: every link pays its full miss latency.
        assert core.cycle / core.stats.committed > 100

    def test_independent_loads_get_prefetched(self):
        core = run_rar(independent_trace(), 600)
        assert core.stats.runahead_triggers > 0
        assert core.stats.runahead_prefetches > 0
        loads_committed = core.stats.committed // 2
        # Most committed loads hit thanks to runahead prefetching.
        assert core.stats.demand_llc_misses < 0.6 * loads_committed

    def test_chain_mlp_stays_serial(self):
        chain = run_rar(chase_trace(), 300)
        indep = run_rar(independent_trace(), 600)
        assert chain.mlp < 2.5
        assert indep.mlp > chain.mlp


class TestInvBranchDivergence:
    def test_wrong_inv_branch_diverges_interval(self):
        """A branch fed by the blocking load whose outcome alternates is
        unpredictable: during runahead it is INV, mispredicted ~50%, and
        each mispredict must end the interval's useful prefetching."""
        uops = []
        n = 600
        for i in range(0, n, 3):
            uops.append(StaticUop(idx=i, pc=0x400000, cls=L, srcs=(),
                                  addr=COLD + i * (1 << 15)))
            uops.append(StaticUop(idx=i + 1, pc=0x400004, cls=B,
                                  srcs=(i,), taken=bool((i // 3) % 2)))
            uops.append(StaticUop(idx=i + 2, pc=0x400008, cls=A,
                                  srcs=()))
        core = OutOfOrderCore(BASELINE, Trace.from_list(uops, "invbr"), RAR)
        core.run(400)
        if core.stats.runahead_triggers:
            assert core.stats.ra_stall_diverged >= 0  # counter exists
            # Divergence bounds the cursor: examined per interval is small
            # relative to a diverge-free streaming interval.
            per_interval = (core.stats.runahead_uops_examined
                            / core.stats.runahead_triggers)
            assert per_interval < 400


class TestModeSanity:
    def test_trace_core_reaches_normal_mode_end(self):
        core = run_rar(independent_trace(), 600)
        assert core.mode in (Mode.NORMAL, Mode.RUNAHEAD)
        assert core.stats.committed >= 600
