"""Runahead policy definitions (paper Table IV)."""

import pytest

from repro.core.runahead import (
    ALL_POLICIES,
    FLUSH,
    OOO,
    PRE,
    PRE_EARLY,
    RAR,
    RAR_LATE,
    TR,
    TR_EARLY,
    RunaheadPolicy,
    get_policy,
    policy_names,
)


class TestTable4Matrix:
    """The (early, flush, lean) axes exactly as the paper's Table IV."""

    def test_tr(self):
        assert (TR.early, TR.flush_at_exit, TR.lean) == (False, True, False)

    def test_tr_early(self):
        assert (TR_EARLY.early, TR_EARLY.flush_at_exit, TR_EARLY.lean) == \
            (True, True, False)

    def test_pre(self):
        assert (PRE.early, PRE.flush_at_exit, PRE.lean) == (False, False, True)

    def test_pre_early(self):
        assert (PRE_EARLY.early, PRE_EARLY.flush_at_exit, PRE_EARLY.lean) == \
            (True, False, True)

    def test_rar_late(self):
        assert (RAR_LATE.early, RAR_LATE.flush_at_exit, RAR_LATE.lean) == \
            (False, True, True)

    def test_rar(self):
        assert (RAR.early, RAR.flush_at_exit, RAR.lean) == (True, True, True)

    def test_rar_is_pre_plus_two_optimisations(self):
        assert RAR.lean == PRE.lean
        assert RAR.early and RAR.flush_at_exit
        assert not PRE.early and not PRE.flush_at_exit

    def test_non_runahead_kinds(self):
        assert OOO.kind == "ooo" and not OOO.is_runahead
        assert FLUSH.kind == "flush" and not FLUSH.is_runahead
        assert RAR.is_runahead


class TestRegistry:
    def test_all_eight(self):
        assert len(ALL_POLICIES) == 8
        assert len(set(p.name for p in ALL_POLICIES)) == 8

    def test_get_policy_names(self):
        assert get_policy("RAR") is RAR
        assert get_policy("rar-late") is RAR_LATE
        assert get_policy("rar_late") is RAR_LATE
        assert get_policy("pre_early") is PRE_EARLY

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("warp-speed")

    def test_policy_names(self):
        assert "RAR" in policy_names()
        assert "OOO" in policy_names()

    def test_axes_only_for_runahead(self):
        with pytest.raises(ValueError):
            RunaheadPolicy("BAD", "flush", early=True)
        with pytest.raises(ValueError):
            RunaheadPolicy("BAD", "sideways")

    def test_hashable(self):
        {RAR: 1, PRE: 2}
