"""Reorder buffer and the RAR head countdown timer."""

import pytest

from repro.common.enums import UopClass
from repro.core.rob import ReorderBuffer
from repro.isa.uop import DynUop, StaticUop


def dyn(seq, idx=None):
    return DynUop(
        StaticUop(idx=idx if idx is not None else seq, pc=0x400000,
                  cls=int(UopClass.INT_ADD)), seq=seq)


class TestFifo:
    def test_push_pop_order(self):
        rob = ReorderBuffer(size=4)
        uops = [dyn(i) for i in range(3)]
        for u in uops:
            rob.push(u)
        assert rob.head is uops[0]
        assert rob.pop_head() is uops[0]
        assert rob.head is uops[1]

    def test_full(self):
        rob = ReorderBuffer(size=2)
        rob.push(dyn(1))
        rob.push(dyn(2))
        assert rob.full
        with pytest.raises(OverflowError):
            rob.push(dyn(3))

    def test_len_and_iter(self):
        rob = ReorderBuffer(size=8)
        for i in range(5):
            rob.push(dyn(i))
        assert len(rob) == 5
        assert [u.seq for u in rob] == [0, 1, 2, 3, 4]


class TestSquash:
    def test_squash_younger(self):
        rob = ReorderBuffer(size=8)
        uops = [dyn(i) for i in range(6)]
        for u in uops:
            rob.push(u)
        squashed = rob.squash_younger(2)
        assert [u.seq for u in squashed] == [3, 4, 5]
        assert len(rob) == 3
        assert rob.head is uops[0]

    def test_squash_younger_none_match(self):
        rob = ReorderBuffer(size=8)
        rob.push(dyn(1))
        assert rob.squash_younger(5) == []

    def test_squash_all(self):
        rob = ReorderBuffer(size=8)
        for i in range(4):
            rob.push(dyn(i))
        squashed = rob.squash_all()
        assert len(squashed) == 4
        assert len(rob) == 0
        assert rob.head is None


class TestHeadTimer:
    def test_counts_down_while_same_head(self):
        rob = ReorderBuffer(size=8, timer_init=15)
        rob.push(dyn(1))
        rob.advance_timer(1)  # reset cycle for the new head
        assert not rob.head_timer_expired
        for _ in range(14):
            rob.advance_timer(1)
        assert not rob.head_timer_expired
        rob.advance_timer(1)
        assert rob.head_timer_expired

    def test_resets_on_new_head(self):
        rob = ReorderBuffer(size=8, timer_init=15)
        a, b = dyn(1), dyn(2)
        rob.push(a)
        rob.push(b)
        for _ in range(20):
            rob.advance_timer(1)
        assert rob.head_timer_expired
        rob.pop_head()
        rob.advance_timer(1)
        assert not rob.head_timer_expired
        assert rob.timer_remaining == 15

    def test_bulk_advance_equivalent_to_steps(self):
        a = ReorderBuffer(size=8, timer_init=15)
        b = ReorderBuffer(size=8, timer_init=15)
        a.push(dyn(1))
        b.push(dyn(1, idx=1))
        for _ in range(9):
            a.advance_timer(1)
        b.advance_timer(9)
        assert a.timer_remaining == b.timer_remaining

    def test_empty_rob_no_expiry(self):
        rob = ReorderBuffer(size=8)
        rob.advance_timer(100)
        assert not rob.head_timer_expired

    def test_four_bit_semantics(self):
        """The paper's counter is 4 bits: init value must fit."""
        rob = ReorderBuffer(size=8, timer_init=15)
        assert rob.timer_init <= 0b1111
