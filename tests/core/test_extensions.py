"""Extension policies: runahead buffer and vector runahead."""

import pytest

from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import (
    OOO,
    PRE,
    RA_BUFFER,
    RAR,
    VEC_RAR,
    RunaheadPolicy,
    get_policy,
)
from repro.workloads.catalog import get_workload


def run(workload, policy, instructions=2500):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestPolicyDefinitions:
    def test_registry(self):
        assert get_policy("ra-buffer") is RA_BUFFER
        assert get_policy("vec_rar") is VEC_RAR

    def test_buffer_keeps_window_like_pre(self):
        assert not RA_BUFFER.flush_at_exit
        assert not RA_BUFFER.early
        assert RA_BUFFER.lean and RA_BUFFER.buffer

    def test_vec_rar_is_rar_plus_vector(self):
        assert VEC_RAR.early and VEC_RAR.flush_at_exit and VEC_RAR.lean
        assert VEC_RAR.vector == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="require lean"):
            RunaheadPolicy("BAD", "runahead", buffer=True, lean=False)
        with pytest.raises(ValueError):
            RunaheadPolicy("BAD", "runahead", lean=True, vector=-1)
        with pytest.raises(ValueError, match="axes only apply"):
            RunaheadPolicy("BAD", "ooo", vector=4)


class TestRunaheadBuffer:
    def test_runs_and_triggers(self):
        core = run("libquantum", RA_BUFFER)
        assert core.stats.committed >= 2500
        assert core.stats.runahead_triggers > 0

    def test_examines_fewer_uops_than_pre(self):
        """The buffer replays chains only — it never pushes the whole
        future stream through the front-end."""
        pre = run("libquantum", PRE)
        buf = run("libquantum", RA_BUFFER)
        per_trig_pre = (pre.stats.runahead_uops_examined
                        / max(1, pre.stats.runahead_triggers))
        per_trig_buf = (buf.stats.runahead_uops_examined
                        / max(1, buf.stats.runahead_triggers))
        # Same order or less work per interval despite free skipping.
        assert buf.stats.runahead_uops_executed <= \
            pre.stats.runahead_uops_executed * 1.5
        assert per_trig_buf < per_trig_pre * 4

    def test_no_reliability_story_without_flush(self):
        base = run("libquantum", OOO)
        buf = run("libquantum", RA_BUFFER)
        abc = lambda c: c.ace.total / c.stats.committed  # noqa: E731
        assert abc(buf) > abc(base) * 0.7  # keeps the window ACE


class TestVectorRunahead:
    def test_runs_with_reliability_of_rar(self):
        base = run("libquantum", OOO)
        vec = run("libquantum", VEC_RAR)
        abc = lambda c: c.ace.total / c.stats.committed  # noqa: E731
        assert abc(vec) < abc(base) * 0.3

    def test_examines_at_least_as_deep_as_rar(self):
        rar = run("libquantum", RAR)
        vec = run("libquantum", VEC_RAR)
        per_trig_rar = (rar.stats.runahead_uops_examined
                        / max(1, rar.stats.runahead_triggers))
        per_trig_vec = (vec.stats.runahead_uops_examined
                        / max(1, vec.stats.runahead_triggers))
        assert per_trig_vec >= per_trig_rar * 0.9

    def test_performance_not_worse_than_plain_rar(self):
        rar = run("libquantum", RAR)
        vec = run("libquantum", VEC_RAR)
        assert vec.ipc > rar.ipc * 0.9

    def test_deterministic(self):
        a = run("milc", VEC_RAR, 1200)
        b = run("milc", VEC_RAR, 1200)
        assert a.cycle == b.cycle and a.ace.total == b.ace.total
