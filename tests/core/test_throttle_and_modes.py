"""Extension policy (THROTTLE) and controller mode-transition paths."""

import pytest

from repro.common.enums import Mode
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import (
    ALL_POLICIES,
    EXTENSION_POLICIES,
    FLUSH,
    OOO,
    RAR,
    THROTTLE,
    get_policy,
)
from repro.workloads.catalog import get_workload


def run_core(workload, policy, instructions=2500):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestThrottle:
    def test_registered_as_extension(self):
        assert THROTTLE in EXTENSION_POLICIES
        assert THROTTLE not in ALL_POLICIES
        assert get_policy("throttle") is THROTTLE

    def test_never_enters_other_modes(self):
        core = run_core("libquantum", THROTTLE)
        assert core.stats.runahead_triggers == 0
        assert core.stats.flush_triggers == 0

    def test_between_ooo_and_flush(self):
        """Throttling trades less performance than FLUSH for a smaller
        reliability gain (Section VI-C's characterisation)."""
        base = run_core("libquantum", OOO)
        thr = run_core("libquantum", THROTTLE)
        fl = run_core("libquantum", FLUSH)
        abc = lambda c: c.ace.total / c.stats.committed  # noqa: E731
        assert abc(thr) < abc(base)          # does reduce exposure
        assert abc(thr) > abc(fl)            # but less than flushing
        assert thr.ipc < base.ipc * 1.02     # costs some performance
        assert thr.ipc > fl.ipc              # but less than flushing

    def test_compute_workload_unaffected(self):
        base = run_core("exchange2", OOO, 1500)
        thr = run_core("exchange2", THROTTLE, 1500)
        assert thr.ipc > base.ipc * 0.95


class TestFlushStallMode:
    def test_enters_and_leaves(self):
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), FLUSH)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        modes = set()
        while core.stats.committed < 2500:
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            modes.add(core.mode)
        assert Mode.FLUSH_STALL in modes
        assert Mode.RUNAHEAD not in modes

    def test_fetch_gated_during_stall(self):
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), FLUSH)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        while core.stats.committed < 2500:
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            if core.mode == Mode.FLUSH_STALL:
                assert not core.frontend.can_fetch(core.cycle)
                assert len(core.rob) <= 1  # only the blocking load remains
                break
        else:
            pytest.skip("no flush-stall observed in budget")


class TestRunaheadInternals:
    def test_inv_set_contains_blocking(self):
        spec = get_workload("mcf")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), RAR)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        while core.stats.committed < 3000:
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            if core.mode == Mode.RUNAHEAD:
                assert core.blocking is not None
                assert core.blocking.static.idx in core._ra_inv
                break
        else:
            pytest.skip("no runahead interval observed")

    def test_predictor_history_restored_after_interval(self):
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), RAR)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        ckpt = None
        while core.stats.committed < 3000:
            was_runahead = core.mode == Mode.RUNAHEAD
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            if core.mode == Mode.RUNAHEAD and ckpt is None:
                ckpt = core._ra_hist_ckpt
            if was_runahead and core.mode == Mode.NORMAL and ckpt is not None:
                assert core.predictor.hist == ckpt
                return
        pytest.skip("no complete interval observed")

    def test_runahead_examines_future_instructions(self):
        core = run_core("libquantum", RAR)
        assert core.stats.runahead_uops_examined >= \
            core.stats.runahead_uops_executed
