"""White-box unit tests of OutOfOrderCore internals."""

import pytest

from repro.common.enums import Mode, UopClass
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore, SimStats
from repro.core.runahead import OOO, RAR
from repro.isa.trace import Trace
from repro.isa.uop import StaticUop
from repro.workloads.catalog import get_workload


def linear_trace(n=2000, cls=UopClass.INT_ADD):
    uops = [StaticUop(idx=i, pc=0x1000 + (i % 64) * 4, cls=int(cls),
                      srcs=(i - 1,) if i % 7 == 1 and i else ())
            for i in range(n)]
    return Trace.from_list(uops, name="linear")


class TestSyntheticTraces:
    def test_pure_alu_trace_runs(self):
        core = OutOfOrderCore(BASELINE, linear_trace(), OOO)
        core.run(1000)
        assert core.stats.committed >= 1000
        assert core.ipc > 1.0  # ALU-only code is wide and fast

    def test_nop_trace_commits_but_unace(self):
        core = OutOfOrderCore(BASELINE, linear_trace(cls=UopClass.NOP), OOO)
        core.run(500)
        assert core.stats.committed >= 500
        assert core.ace.total == 0  # NOPs are un-ACE by definition

    def test_trace_exhaustion_terminates_cleanly(self):
        """Finite trace + larger budget -> clean terminal commit, no hang
        (deep regression coverage in tests/validate/test_oracle.py)."""
        core = OutOfOrderCore(BASELINE, linear_trace(100), OOO)
        core.run(200)
        assert core.stats.committed == 100
        assert core.engine.exhausted

    def test_dependent_chain_serialises(self):
        chain = [StaticUop(idx=i, pc=0x1000, cls=int(UopClass.INT_MUL),
                           srcs=(i - 1,) if i else ())
                 for i in range(600)]
        core = OutOfOrderCore(BASELINE, Trace.from_list(chain), OOO)
        core.run(500)
        # 3-cycle multiplies in a serial chain: IPC must be ~1/3.
        assert core.ipc < 0.5


class TestEventStaleness:
    def test_squashed_uop_writeback_ignored(self):
        core = OutOfOrderCore(BASELINE, linear_trace(), OOO)
        core.run(200)
        # Forge a squashed uop with a pending completion event.
        from repro.isa.uop import DynUop
        victim = DynUop(StaticUop(idx=10 ** 6, pc=0, cls=1), seq=10 ** 9)
        victim.squashed = True
        consumer = DynUop(StaticUop(idx=10 ** 6 + 1, pc=0, cls=1),
                          seq=10 ** 9 + 1)
        consumer.pending = 1
        victim.consumers.append(consumer)
        core._writeback(victim, core.cycle)
        assert not victim.completed
        assert consumer.pending == 1  # no wakeup from squashed producers


class TestWrongPath:
    def test_wrong_path_uops_enter_backend(self):
        core = OutOfOrderCore(BASELINE,
                              get_workload("mcf").build_trace(), OOO)
        core.run(2500)
        assert core.stats.squashed_mispredict > 0

    def test_pending_branch_cleared_after_resolution(self):
        core = OutOfOrderCore(BASELINE,
                              get_workload("mcf").build_trace(), OOO)
        core.run(2500)
        # Whatever the instantaneous state, a pending branch must be a
        # live, dispatched, unresolved instance.
        pb = core.pending_branch
        if pb is not None:
            assert not pb.squashed
            assert not pb.completed


class TestStats:
    def test_snapshot_is_flat_dict(self):
        s = SimStats()
        snap = s.snapshot()
        assert snap["committed"] == 0
        snap["committed"] = 99
        assert s.committed == 0  # copy, not a view

    def test_derived_properties_safe_on_fresh_core(self):
        core = OutOfOrderCore(BASELINE, linear_trace(), OOO)
        assert core.ipc == 0.0
        assert core.mlp == 0.0
        assert core.mpki == 0.0


class TestRunaheadDoesNotLeakIntoAce:
    def test_speculative_instances_never_charged(self):
        """ACE charges come only from commits: the charged count must
        equal committed non-NOP instructions."""
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), RAR)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        core.run(3000)
        nops = 0
        for i in range(0, len(spec.body)):
            if spec.body[i].cls == int(UopClass.NOP):
                nops += 1
        assert core.ace.committed_charged <= core.stats.committed
        # At least the non-NOP share of commits must be charged.
        nop_frac = nops / len(spec.body)
        assert core.ace.committed_charged >= \
            core.stats.committed * (1 - nop_frac) * 0.95

    def test_mode_is_consistent_with_blocking(self):
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), RAR)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        for _ in range(3000):
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            if core.mode == Mode.RUNAHEAD:
                assert core.blocking is not None
            else:
                assert core.blocking is None or core.mode == Mode.FLUSH_STALL
