"""SimEngine / Component decomposition and the OutOfOrderCore facade."""

from repro.common.enums import Mode
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.engine import EV_WB, Component, SimEngine
from repro.core.runahead import get_policy
from repro.workloads.catalog import get_workload


def make_core(policy="OOO"):
    spec = get_workload("x264")
    return OutOfOrderCore(BASELINE, spec.build_trace(),
                          policy=get_policy(policy))


class TestComponentProtocol:
    def test_defaults_are_inert(self):
        c = Component()
        assert c.step(0) == 0
        assert tuple(c.wake_candidates(0)) == ()
        assert c.snapshot_state() == {}
        c.skip(100)  # no-op, must not raise
        c.restore_state({})

    def test_state_attr_round_trip(self):
        class Counter(Component):
            state_attrs = ("count",)

            def __init__(self):
                self.count = 7

        c = Counter()
        snap = c.snapshot_state()
        assert snap == {"count": 7}
        c.count = 99
        c.restore_state(snap)
        assert c.count == 7


class TestFacade:
    def test_components_are_bound(self):
        core = make_core()
        names = [c.name for c in core.components]
        assert names == ["engine", "frontend_stage", "commit", "backend",
                         "runahead_ctl"]
        for comp in core.components:
            assert comp.core is core

    def test_pipeline_order_matches_legacy_step(self):
        """events -> commit -> controller -> issue/dispatch -> fetch."""
        core = make_core()
        assert core.engine._pipeline == (
            core.commit_unit, core.runahead_ctl, core.backend,
            core.frontend_stage)

    def test_delegating_properties(self):
        core = make_core()
        core.cycle = 41
        assert core.engine.cycle == 41
        core.mode = Mode.FLUSH_STALL
        assert core.runahead_ctl.mode is Mode.FLUSH_STALL
        core.mode = Mode.NORMAL
        core.fetch_idx = 12
        assert core.frontend_stage.fetch_idx == 12
        core.next_dispatch_idx = 9
        assert core.backend.next_dispatch_idx == 9
        assert core.inflight is core.backend.inflight
        assert core._events is core.engine._events

    def test_legacy_methods_delegate(self):
        core = make_core()
        core._step()
        assert core.cycle == 0  # _step does not advance the clock itself
        core._schedule(5, EV_WB, None)
        assert core._events[0][0] == 5
        assert callable(core._fast_forward)

    def test_snapshot_covers_every_component(self):
        core = make_core("RAR")
        core.run(500)
        for comp in core.components:
            snap = comp.snapshot_state()
            assert set(snap) == set(comp.state_attrs)


class TestEngine:
    def test_event_fifo_within_cycle(self):
        """Same-cycle events pop in scheduling order (stable heap)."""
        core = make_core()
        engine = core.engine
        seen = []
        engine.on_event(99, lambda payload, when: seen.append(payload))
        engine.schedule(3, 99, "a")
        engine.schedule(3, 99, "b")
        engine.schedule(2, 99, "c")
        engine.process_events(3)
        assert seen == ["c", "a", "b"]

    def test_run_commits_requested_instructions(self):
        core = make_core()
        core.run(300)
        assert 300 <= core.stats.committed < 300 + BASELINE.core.width
        assert core.stats.cycles == core.cycle

    def test_fast_forward_skips_idle_cycles(self):
        core = make_core("RAR")
        core.run(2000)
        assert core.stats.fast_forwarded_cycles > 0

    def test_engine_is_a_component(self):
        core = make_core()
        assert isinstance(core.engine, SimEngine)
        assert isinstance(core.engine, Component)
        snap = core.engine.snapshot_state()
        assert set(snap) == {"cycle", "_events", "_ev_count"}
