"""End-to-end core simulation: mechanism semantics and invariants.

These tests run short simulations on catalog workloads and assert the
*mechanisms* behave as specified: triggers fire under the right conditions,
squashed state is un-ACE, modes transition correctly, and bookkeeping
(registers, LSQ, IQ) balances out.
"""

import pytest

from repro.common.enums import Mode, UopClass
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import (
    FLUSH, OOO, PRE, PRE_EARLY, RAR, RAR_LATE, TR, TR_EARLY,
)
from repro.workloads.catalog import get_workload


def run_core(workload="libquantum", policy=OOO, instructions=4000,
             machine=BASELINE, preload=True):
    spec = get_workload(workload)
    core = OutOfOrderCore(machine, spec.build_trace(), policy)
    if preload:
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestBaselineInvariants:
    def test_commits_requested_instructions(self):
        core = run_core(instructions=2000)
        assert core.stats.committed >= 2000

    def test_resources_balance_at_quiesce(self):
        core = run_core(instructions=3000)
        # In-flight occupancy is bounded by structure sizes at all times;
        # at this instant the accounting must be internally consistent.
        assert 0 <= core.lsq.lq_used <= core.lsq.lq_size
        assert 0 <= core.lsq.sq_used <= core.lsq.sq_size
        assert 0 <= core.regs.int_free <= core.regs.int_total
        assert 0 <= core.regs.fp_free <= core.regs.fp_total
        assert len(core.iq) <= core.iq.size
        assert len(core.rob) <= core.rob.size

    def test_ooo_never_triggers_mechanisms(self):
        core = run_core(policy=OOO)
        assert core.stats.runahead_triggers == 0
        assert core.stats.flush_triggers == 0
        assert core.mode == Mode.NORMAL or core.mode == Mode.NORMAL

    def test_memory_workload_exposes_blocked_windows(self):
        core = run_core(policy=OOO)
        assert core.ace.head_blocked.total_time > 0
        assert core.ace.bits_in_head_blocked > 0

    def test_compute_workload_rarely_blocked(self):
        mem = run_core("libquantum", OOO, 2500)
        cmp_ = run_core("exchange2", OOO, 2500)
        mem_share = mem.ace.bits_in_head_blocked / mem.ace.total
        cmp_share = cmp_.ace.bits_in_head_blocked / max(1, cmp_.ace.total)
        assert mem_share > cmp_share

    def test_branches_resolve(self):
        core = run_core("mcf", OOO, 3000)
        assert core.stats.branch_resolved > 0
        assert core.stats.branch_mispredicted > 0
        assert core.stats.squashed_mispredict > 0

    def test_ace_monotone_nonnegative(self):
        core = run_core(instructions=2000)
        assert all(v >= 0 for v in core.ace.bits.values())
        assert core.ace.total > 0


class TestFlushMechanism:
    def test_triggers_on_memory_workload(self):
        core = run_core("libquantum", FLUSH)
        assert core.stats.flush_triggers > 0
        assert core.stats.squashed_flush_mechanism > 0
        assert core.stats.flush_stall_cycles > 0

    def test_reduces_abc_but_costs_ipc(self):
        base = run_core("libquantum", OOO)
        fl = run_core("libquantum", FLUSH)
        base_abc = base.ace.total / base.stats.committed
        fl_abc = fl.ace.total / fl.stats.committed
        assert fl_abc < base_abc * 0.5
        assert fl.ipc < base.ipc

    def test_no_triggers_without_misses(self):
        core = run_core("exchange2", FLUSH, 2500)
        assert core.stats.flush_triggers <= 2


class TestRunaheadTriggers:
    def test_pre_triggers_on_full_window(self):
        core = run_core("libquantum", PRE)
        assert core.stats.runahead_triggers > 0
        assert core.stats.runahead_uops_executed > 0
        assert core.stats.runahead_prefetches > 0

    def test_early_start_enters_with_emptier_window(self):
        """The early-start condition initiates runahead as soon as the
        head blocks — before the window fills — so mean ROB occupancy at
        entry must be lower than for the late (full-window) trigger."""
        late = run_core("mcf", RAR_LATE, 3000)
        early = run_core("mcf", RAR, 3000)
        assert late.stats.runahead_triggers > 0
        assert early.stats.runahead_triggers > 0
        occ_late = late.stats.ra_trigger_rob_sum / late.stats.runahead_triggers
        occ_early = early.stats.ra_trigger_rob_sum / early.stats.runahead_triggers
        assert occ_early < occ_late

    def test_flush_at_exit_squashes(self):
        core = run_core("libquantum", RAR)
        assert core.stats.squashed_runahead_flush > 0

    def test_pre_exit_keeps_window(self):
        core = run_core("libquantum", PRE)
        assert core.stats.squashed_runahead_flush == 0

    def test_lean_executes_fewer_uops_than_tr(self):
        tr = run_core("libquantum", TR)
        rar_late = run_core("libquantum", RAR_LATE)
        if (tr.stats.runahead_uops_examined and
                rar_late.stats.runahead_uops_examined):
            tr_frac = (tr.stats.runahead_uops_executed
                       / tr.stats.runahead_uops_examined)
            lean_frac = (rar_late.stats.runahead_uops_executed
                         / rar_late.stats.runahead_uops_examined)
            assert lean_frac <= tr_frac

    def test_runahead_improves_reliability_when_flushing(self):
        base = run_core("libquantum", OOO)
        rar = run_core("libquantum", RAR)
        abc_base = base.ace.total / base.stats.committed
        abc_rar = rar.ace.total / rar.stats.committed
        assert abc_rar < abc_base * 0.5

    def test_pre_performance_at_least_baseline(self):
        base = run_core("lbm", OOO)
        pre = run_core("lbm", PRE)
        assert pre.ipc > base.ipc * 0.95


class TestModeTransitions:
    def test_runahead_mode_entered_and_left(self):
        spec = get_workload("libquantum")
        core = OutOfOrderCore(BASELINE, spec.build_trace(), RAR)
        for level, base, size in spec.resident_regions():
            core.mem.preload(base, size, level)
        seen_modes = set()
        target = 4000
        while core.stats.committed < target:
            if core._step():
                core.cycle += 1
            else:
                core._fast_forward()
            seen_modes.add(core.mode)
        assert Mode.RUNAHEAD in seen_modes
        assert Mode.NORMAL in seen_modes

    def test_blocking_load_cleared_after_exit(self):
        core = run_core("libquantum", RAR)
        if core.mode == Mode.NORMAL:
            assert core.blocking is None

    def test_runahead_state_reset_between_intervals(self):
        core = run_core("libquantum", RAR)
        if core.mode == Mode.NORMAL:
            assert core.iq.runahead_used == 0
            assert len(core.prdq) == 0
            assert core.regs.runahead_int == 0
            assert core.regs.runahead_fp == 0


class TestDeterminism:
    @pytest.mark.parametrize("policy", [OOO, FLUSH, PRE, RAR, TR_EARLY,
                                        PRE_EARLY])
    def test_repeatable(self, policy):
        a = run_core("soplex", policy, 1500)
        b = run_core("soplex", policy, 1500)
        assert a.cycle == b.cycle
        assert a.stats.committed == b.stats.committed
        assert a.ace.total == b.ace.total


class TestScaledMachines:
    def test_bigger_core_exposes_more_state(self):
        """Figure 4: ABC grows with back-end structure size."""
        from repro.common.params import CORE1, CORE4
        small = run_core("libquantum", OOO, 2500, machine=CORE1)
        big = run_core("libquantum", OOO, 2500, machine=CORE4)
        abc_small = small.ace.total / small.stats.committed
        abc_big = big.ace.total / big.stats.committed
        assert abc_big > abc_small * 1.2

    def test_rar_closes_scaling_gap(self):
        """Figure 10: RAR's ABC stays nearly flat across core sizes."""
        from repro.common.params import CORE1, CORE4
        small = run_core("libquantum", RAR, 2500, machine=CORE1)
        big = run_core("libquantum", RAR, 2500, machine=CORE4)
        ooo_small = run_core("libquantum", OOO, 2500, machine=CORE1)
        ooo_big = run_core("libquantum", OOO, 2500, machine=CORE4)
        ooo_growth = (ooo_big.ace.total / ooo_big.stats.committed) / \
                     (ooo_small.ace.total / ooo_small.stats.committed)
        rar_growth = (big.ace.total / big.stats.committed) / \
                     (small.ace.total / small.stats.committed)
        assert rar_growth < ooo_growth
