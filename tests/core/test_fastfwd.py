"""Functional fast-warmup: boundary contract and interchangeability.

The fast engine is allowed to produce *different* warmed state than the
detailed core (that delta is quantified by ``repro warmval``), but a
fast-warmed checkpoint must be indistinguishable *mechanically*: same
blob schema, same fork/measure semantics, same determinism, same farm
and cache behaviour. These tests pin that contract.
"""

import pytest

from repro.analysis.experiments import ExperimentRunner, _variant
from repro.checkpoint import CheckpointCache, simulate_from, warm_checkpoint
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.fastfwd import (
    DETAILED_TAIL_DIVISOR,
    detailed_tail,
    functional_warmup,
    validate_warmup_mode,
)
from repro.core.runahead import get_policy
from repro.sim import simulate
from repro.workloads import get_workload

N, W = 1000, 500


def _fresh_core(workload="mcf", policy="RAR", seed=7):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(seed=seed),
                          get_policy(policy), seed=seed)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    return core


class TestFunctionalWarmup:
    def test_lands_on_architectural_boundary(self):
        core = _fresh_core()
        seen = functional_warmup(core, W)
        assert seen == W
        assert core.stats.committed == W
        assert core.frontend_stage.fetch_idx == W
        assert core.backend.next_dispatch_idx == W
        assert core.engine.cycle == core.stats.cycles >= W

    def test_trains_caches_and_predictor(self):
        cold = _fresh_core()
        warm = _fresh_core()
        functional_warmup(warm, W)
        # The walk must have moved state in the long-lived structures,
        # but pipeline counters stay at zero: warmup is not measurement.
        assert warm.mem.l1d.accesses > cold.mem.l1d.accesses
        assert warm.stats.branch_resolved == 0

    def test_rejects_used_core(self):
        core = _fresh_core()
        core.run(10)
        with pytest.raises(ValueError):
            functional_warmup(core, W)

    def test_short_trace_stops_early(self):
        from repro.common.enums import UopClass
        from repro.isa.trace import Trace
        from repro.isa.uop import StaticUop
        uops = [StaticUop(idx=i, pc=0x1000 + 4 * i,
                          cls=int(UopClass.INT_ADD)) for i in range(40)]
        trace = Trace(iter(uops), name="tiny")
        core = OutOfOrderCore(BASELINE, trace, get_policy("OOO"), seed=0)
        assert functional_warmup(core, 10_000) == len(uops)

    def test_mode_validation(self):
        assert validate_warmup_mode("fast") == "fast"
        with pytest.raises(ValueError):
            validate_warmup_mode("warp")

    def test_detailed_tail_fraction(self):
        assert detailed_tail(20_000) == 20_000 // DETAILED_TAIL_DIVISOR
        assert detailed_tail(0) == 0


class TestInterchangeability:
    def test_zero_warmup_modes_identical(self):
        """With no warmup region the modes cannot differ at all."""
        cold = simulate("mcf", BASELINE, "RAR", instructions=N, warmup=0,
                        seed=7)
        for mode in ("detailed", "fast"):
            ck = warm_checkpoint("mcf", BASELINE, "RAR", warmup=0, seed=7,
                                 warmup_mode=mode)
            assert simulate_from(ck, instructions=N) == cold, mode

    def test_blob_schema_matches_detailed(self):
        """Fast capture goes through the identical snapshot machinery."""
        det = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W, seed=7)
        fast = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W, seed=7,
                               warmup_mode="fast")
        assert det._blob.keys() == fast._blob.keys()
        assert (det._blob["structures"].keys()
                == fast._blob["structures"].keys())
        assert (det._blob["components"].keys()
                == fast._blob["components"].keys())
        assert det._blob["stats"].keys() == fast._blob["stats"].keys()
        assert det.warmup_mode == "detailed"
        assert fast.warmup_mode == "fast"

    def test_double_fork_deterministic(self):
        """Two forks of one fast checkpoint measure identically."""
        ck = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W, seed=3,
                             warmup_mode="fast")
        assert (simulate_from(ck, instructions=N)
                == simulate_from(ck, instructions=N))

    def test_cross_policy_fork_runs(self):
        ck = warm_checkpoint("mcf", BASELINE, "OOO", warmup=W,
                             warmup_mode="fast")
        r = simulate_from(ck, "RAR", instructions=N)
        assert r.policy == "RAR"
        assert N <= r.instructions < N + BASELINE.core.width

    def test_oracle_and_validate_accept_fast_fork(self):
        ck = warm_checkpoint("mcf", BASELINE, "RAR", warmup=W,
                             warmup_mode="fast")
        r = simulate_from(ck, instructions=N, validate=True, oracle=True)
        assert r.instructions >= N

    def test_matrix_parallel_matches_serial(self, tmp_path):
        """Farm workers reproduce the serial fast-mode results."""
        workloads, policies = ["mcf", "x264"], ["OOO", "RAR"]
        serial = ExperimentRunner(
            instructions=N, warmup=W,
            cache_path=str(tmp_path / "a.json")).run_matrix(
            workloads, BASELINE, policies, warmup_mode="fast")
        parallel = ExperimentRunner(
            instructions=N, warmup=W,
            cache_path=str(tmp_path / "b.json")).run_matrix(
            workloads, BASELINE, policies, jobs=2, share_warmup=True,
            warmup_mode="fast")
        for p in policies:
            for w in workloads:
                assert serial[p][w] == parallel[p][w], (w, p)

    def test_matrix_fast_differs_from_detailed_cache(self, tmp_path):
        """Mode is part of the run key: results never mix."""
        runner = ExperimentRunner(instructions=N, warmup=W,
                                  cache_path=str(tmp_path / "c.json"))
        det = runner.run_matrix(["mcf"], BASELINE, ["RAR"])
        fast = runner.run_matrix(["mcf"], BASELINE, ["RAR"],
                                 warmup_mode="fast")
        det2 = runner.run_matrix(["mcf"], BASELINE, ["RAR"])
        # the detailed rerun is a cache hit, untouched by the fast run
        assert det2["RAR"]["mcf"] == det["RAR"]["mcf"]
        assert fast["RAR"]["mcf"] != det["RAR"]["mcf"]


class TestVariantAndCache:
    def test_variant_tags(self):
        assert _variant(False, "RAR", "RAR") == ""
        assert _variant(False, "RAR", "RAR", warmup_mode="fast") == "wm:fast"
        assert _variant(True, "RAR", "OOO",
                        warmup_mode="fast") == "wm:fast+sw:OOO"

    def test_checkpoint_cache_keys_on_mode(self):
        cache = CheckpointCache(capacity=8)
        a = cache.get_or_warm("mcf", BASELINE, "RAR", warmup=W)
        b = cache.get_or_warm("mcf", BASELINE, "RAR", warmup=W,
                              warmup_mode="fast")
        assert a is not b
        assert a.warmup_mode == "detailed" and b.warmup_mode == "fast"
        assert cache.get_or_warm("mcf", BASELINE, "RAR", warmup=W,
                                 warmup_mode="fast") is b

    def test_ledger_records_mode(self, tmp_path):
        from repro.obs.ledger import read_ledger
        path = str(tmp_path / "ledger.jsonl")
        warm_checkpoint("mcf", BASELINE, "RAR", warmup=W, ledger=path,
                        warmup_mode="fast")
        events = [e for e in read_ledger(path)
                  if e.get("ev") == "warmup_shared"]
        assert events and events[0]["mode"] == "fast"
