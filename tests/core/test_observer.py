"""Observer hook: event emission and behavioural neutrality."""

from repro.common.enums import SquashCause
from repro.common.params import BASELINE
from repro.core.core import OutOfOrderCore
from repro.core.runahead import FLUSH, OOO, RAR
from repro.workloads.catalog import get_workload


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, event, cycle, **data):
        self.events.append((event, cycle, data))

    def names(self):
        return [e for e, _, _ in self.events]


def run(workload, policy, observer=None, instructions=2000):
    spec = get_workload(workload)
    core = OutOfOrderCore(BASELINE, spec.build_trace(), policy,
                          observer=observer)
    for level, base, size in spec.resident_regions():
        core.mem.preload(base, size, level)
    core.run(instructions)
    return core


class TestEvents:
    def test_commit_events_match_counter(self):
        rec = Recorder()
        core = run("x264", OOO, rec)
        commits = rec.names().count("commit")
        assert commits == core.stats.committed

    def test_runahead_events_paired_and_ordered(self):
        rec = Recorder()
        core = run("libquantum", RAR, rec)
        enters = [c for e, c, _ in rec.events if e == "runahead_enter"]
        exits = [c for e, c, _ in rec.events if e == "runahead_exit"]
        assert len(enters) == core.stats.runahead_triggers
        # Every completed interval's exit follows its entry.
        for i, x in enumerate(exits):
            assert x >= enters[i]

    def test_flush_events(self):
        rec = Recorder()
        core = run("libquantum", FLUSH, rec)
        assert rec.names().count("flush_enter") == core.stats.flush_triggers
        assert "squash" in rec.names()

    def test_squash_event_carries_cause(self):
        rec = Recorder()
        run("mcf", OOO, rec)
        causes = {d["cause"] for e, _, d in rec.events if e == "squash"}
        assert SquashCause.BRANCH_MISPREDICT in causes

    def test_mispredict_events(self):
        rec = Recorder()
        core = run("mcf", OOO, rec)
        assert rec.names().count("mispredict") == \
            core.stats.branch_mispredicted


class TestNeutrality:
    def test_observer_does_not_change_results(self):
        plain = run("libquantum", RAR)
        observed = run("libquantum", RAR, Recorder())
        assert plain.cycle == observed.cycle
        assert plain.stats.committed == observed.stats.committed
        assert plain.ace.total == observed.ace.total
