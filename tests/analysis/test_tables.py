"""Table/series formatting."""

from repro.analysis.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "ipc"], [["mcf", 0.25], ["lbm", 1.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows aligned

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out and "1.235" not in out

    def test_mixed_types(self):
        out = format_table(["a", "b"], [["row", 7]])
        assert "row" in out and "7" in out

    def test_wide_values_extend_column(self):
        out = format_table(["a"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in out


class TestFormatSeries:
    def test_floats_formatted(self):
        s = format_series("MTTF", {"OOO": 1.0, "RAR": 4.821}, precision=2)
        assert s.startswith("MTTF:")
        assert "RAR=4.82" in s

    def test_ints_verbatim(self):
        assert "n=5" in format_series("x", {"n": 5})
