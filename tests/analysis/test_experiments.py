"""Experiment runner caching."""

import os

from repro.analysis.experiments import ExperimentRunner, RunKey
from repro.common.params import BASELINE
from repro.core.runahead import OOO


class TestRunKey:
    def test_round_trip_string(self):
        k = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123")
        assert k.as_str() == "mcf|baseline|RAR|1000|500|abc123"

    def test_digest_distinguishes_configs(self):
        from dataclasses import replace
        from repro.common.params import BASELINE
        same_name = replace(BASELINE, l3=replace(BASELINE.l3, latency=99))
        assert RunKey.digest(BASELINE) != RunKey.digest(same_name)

    def test_digest_stable(self):
        from repro.common.params import BASELINE
        assert RunKey.digest(BASELINE) == RunKey.digest(BASELINE)

    def test_distinct_keys(self):
        a = RunKey("mcf", "baseline", "RAR", 1000, 500)
        b = RunKey("mcf", "baseline", "PRE", 1000, 500)
        assert a.as_str() != b.as_str()

    def test_variant_tags_key(self):
        exact = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123")
        shared = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123",
                        "sw:OOO")
        # empty variant preserves the legacy key format exactly
        assert exact.as_str() == "mcf|baseline|RAR|1000|500|abc123"
        assert shared.as_str() == "mcf|baseline|RAR|1000|500|abc123|sw:OOO"
        assert exact.as_str() != shared.as_str()


class TestRunnerCache:
    def test_memoisation(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        first = r.run("x264", BASELINE, OOO)
        second = r.run("x264", BASELINE, OOO)
        assert first is second  # cached object, not a re-run

    def test_policy_by_name(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        res = r.run("x264", BASELINE, "ooo")
        assert res.policy == "OOO"

    def test_run_matrix_shape(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        out = r.run_matrix(["x264"], BASELINE, ["OOO", "RAR"])
        assert set(out) == {"OOO", "RAR"}
        assert set(out["OOO"]) == {"x264"}

    def test_disk_cache_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        r1 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        first = r1.run("x264", BASELINE, OOO)
        assert os.path.exists(path)

        r2 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        second = r2.run("x264", BASELINE, OOO)
        assert second.ipc == first.ipc
        assert second.abc_total == first.abc_total

    def test_corrupt_disk_cache_ignored(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        with open(path, "w") as f:
            f.write("{not json")
        r = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        assert r.run("x264", BASELINE, OOO).instructions > 0

    def test_default_warmup_matches_simulate(self):
        from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        r = ExperimentRunner()
        assert r.instructions == DEFAULT_INSTRUCTIONS
        assert r.warmup == DEFAULT_WARMUP


class TestParallelMatrix:
    WLS = ["mcf", "x264"]
    POLS = ["OOO", "RAR"]

    def test_parallel_equals_serial(self, tmp_path):
        serial = ExperimentRunner(instructions=800, warmup=300)
        parallel = ExperimentRunner(instructions=800, warmup=300)
        a = serial.run_matrix(self.WLS, BASELINE, self.POLS)
        b = parallel.run_matrix(self.WLS, BASELINE, self.POLS, jobs=2)
        for p in self.POLS:
            for w in self.WLS:
                assert a[p][w] == b[p][w]

    def test_share_warmup_tags_cache_variant(self):
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(self.WLS, BASELINE, self.POLS, share_warmup=True,
                           warmup_policy="OOO")
        assert set(out) == set(self.POLS)
        shared_keys = [k for k in r._cache if k.endswith("|sw:OOO")]
        exact_keys = [k for k in r._cache if not k.endswith("|sw:OOO")]
        # only the non-warmup-policy points carry the variant tag
        assert len(shared_keys) == len(self.WLS)
        assert all("|RAR|" in k for k in shared_keys)
        assert len(exact_keys) == len(self.WLS)

    def test_share_warmup_exact_for_warmup_policy(self):
        from repro.sim import simulate
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(["x264"], BASELINE, self.POLS, share_warmup=True)
        cold = simulate("x264", BASELINE, "OOO", instructions=800,
                        warmup=300)
        assert out["OOO"]["x264"] == cold

    def test_matrix_merges_into_disk_cache(self, tmp_path):
        import json
        path = os.path.join(str(tmp_path), "cache.json")
        r1 = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        a = r1.run_matrix(self.WLS, BASELINE, self.POLS, jobs=2)
        raw = json.load(open(path))
        assert raw["schema"] == 2
        assert len(raw["data"]) == len(self.WLS) * len(self.POLS)
        r2 = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        b = r2.run_matrix(self.WLS, BASELINE, self.POLS)
        for p in self.POLS:
            for w in self.WLS:
                assert a[p][w] == b[p][w]
