"""Experiment runner caching."""

import os

from repro.analysis.experiments import ExperimentRunner, RunKey
from repro.common.params import BASELINE
from repro.core.runahead import OOO


class TestRunKey:
    def test_round_trip_string(self):
        k = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123")
        assert k.as_str() == "mcf|baseline|RAR|1000|500|abc123"

    def test_digest_distinguishes_configs(self):
        from dataclasses import replace
        from repro.common.params import BASELINE
        same_name = replace(BASELINE, l3=replace(BASELINE.l3, latency=99))
        assert RunKey.digest(BASELINE) != RunKey.digest(same_name)

    def test_digest_stable(self):
        from repro.common.params import BASELINE
        assert RunKey.digest(BASELINE) == RunKey.digest(BASELINE)

    def test_distinct_keys(self):
        a = RunKey("mcf", "baseline", "RAR", 1000, 500)
        b = RunKey("mcf", "baseline", "PRE", 1000, 500)
        assert a.as_str() != b.as_str()

    def test_variant_tags_key(self):
        exact = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123")
        shared = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123",
                        "sw:OOO")
        # empty variant preserves the legacy key format exactly
        assert exact.as_str() == "mcf|baseline|RAR|1000|500|abc123"
        assert shared.as_str() == "mcf|baseline|RAR|1000|500|abc123|sw:OOO"
        assert exact.as_str() != shared.as_str()


class TestRunnerCache:
    def test_memoisation(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        first = r.run("x264", BASELINE, OOO)
        second = r.run("x264", BASELINE, OOO)
        assert first is second  # cached object, not a re-run

    def test_policy_by_name(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        res = r.run("x264", BASELINE, "ooo")
        assert res.policy == "OOO"

    def test_run_matrix_shape(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        out = r.run_matrix(["x264"], BASELINE, ["OOO", "RAR"])
        assert set(out) == {"OOO", "RAR"}
        assert set(out["OOO"]) == {"x264"}

    def test_disk_cache_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        r1 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        first = r1.run("x264", BASELINE, OOO)
        assert os.path.exists(path)

        r2 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        second = r2.run("x264", BASELINE, OOO)
        assert second.ipc == first.ipc
        assert second.abc_total == first.abc_total

    def test_corrupt_disk_cache_ignored(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        with open(path, "w") as f:
            f.write("{not json")
        r = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        assert r.run("x264", BASELINE, OOO).instructions > 0

    def test_default_warmup_matches_simulate(self):
        from repro.common.params import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP
        r = ExperimentRunner()
        assert r.instructions == DEFAULT_INSTRUCTIONS
        assert r.warmup == DEFAULT_WARMUP


class TestParallelMatrix:
    WLS = ["mcf", "x264"]
    POLS = ["OOO", "RAR"]

    def test_parallel_equals_serial(self, tmp_path):
        serial = ExperimentRunner(instructions=800, warmup=300)
        parallel = ExperimentRunner(instructions=800, warmup=300)
        a = serial.run_matrix(self.WLS, BASELINE, self.POLS)
        b = parallel.run_matrix(self.WLS, BASELINE, self.POLS, jobs=2)
        for p in self.POLS:
            for w in self.WLS:
                assert a[p][w] == b[p][w]

    def test_share_warmup_tags_cache_variant(self):
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(self.WLS, BASELINE, self.POLS, share_warmup=True,
                           warmup_policy="OOO")
        assert set(out) == set(self.POLS)
        shared_keys = [k for k in r._cache if k.endswith("|sw:OOO")]
        exact_keys = [k for k in r._cache if not k.endswith("|sw:OOO")]
        # only the non-warmup-policy points carry the variant tag
        assert len(shared_keys) == len(self.WLS)
        assert all("|RAR|" in k for k in shared_keys)
        assert len(exact_keys) == len(self.WLS)

    def test_share_warmup_exact_for_warmup_policy(self):
        from repro.sim import simulate
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(["x264"], BASELINE, self.POLS, share_warmup=True)
        cold = simulate("x264", BASELINE, "OOO", instructions=800,
                        warmup=300)
        assert out["OOO"]["x264"] == cold

    def test_matrix_merges_into_disk_cache(self, tmp_path):
        import json
        path = os.path.join(str(tmp_path), "cache.json")
        r1 = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        a = r1.run_matrix(self.WLS, BASELINE, self.POLS, jobs=2)
        raw = json.load(open(path))
        assert raw["schema"] == 2
        assert len(raw["data"]) == len(self.WLS) * len(self.POLS)
        r2 = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        b = r2.run_matrix(self.WLS, BASELINE, self.POLS)
        for p in self.POLS:
            for w in self.WLS:
                assert a[p][w] == b[p][w]


class TestFaultIsolation:
    """One failing point no longer discards its siblings' work."""

    def test_raising_point_is_isolated_serially(self, monkeypatch):
        monkeypatch.setenv("REPRO_FARM_RAISE", "mcf:RAR")
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(["mcf", "x264"], BASELINE, ["OOO", "RAR"])
        assert not out.ok
        assert len(out.failures) == 1
        f = out.failures[0]
        assert (f["workload"], f["policy"]) == ("mcf", "RAR")
        assert "chaos" in f["error"]
        assert "RuntimeError" in f["traceback"]
        assert f["quarantined"] is False
        # the raising point's group-siblings and sibling groups survived
        assert sorted(out["OOO"]) == ["mcf", "x264"]
        assert sorted(out["RAR"]) == ["x264"]

    def test_raise_if_failed_restores_loud_behaviour(self, monkeypatch):
        import pytest
        monkeypatch.setenv("REPRO_FARM_RAISE", "mcf:RAR")
        r = ExperimentRunner(instructions=800, warmup=300)
        out = r.run_matrix(["mcf"], BASELINE, ["OOO", "RAR"])
        with pytest.raises(RuntimeError, match="mcf/RAR"):
            out.raise_if_failed()
        # a clean matrix chains through
        clean = ExperimentRunner(instructions=800, warmup=300)
        got = clean.run_matrix(["mcf"], BASELINE, ["OOO"])
        assert got.raise_if_failed() is got

    def test_failed_points_recorded_in_ledger(self, tmp_path, monkeypatch):
        from repro.obs.ledger import check_complete, read_ledger
        monkeypatch.setenv("REPRO_FARM_RAISE", "mcf:RAR")
        led = os.path.join(str(tmp_path), "led.jsonl")
        r = ExperimentRunner(instructions=800, warmup=300)
        r.run_matrix(["mcf"], BASELINE, ["OOO", "RAR"], ledger=led)
        events = read_ledger(led)
        assert check_complete(events) == []
        errs = [e for e in events if e["ev"] == "point_error"]
        assert len(errs) == 1 and errs[0]["policy"] == "RAR"
        done = [e for e in events if e["ev"] == "sweep_done"]
        assert done[0]["points_failed"] == 1

    def test_completed_groups_flushed_before_later_failure(
            self, tmp_path, monkeypatch):
        """A sweep dying on a later group keeps earlier groups' points
        on disk (incremental flush), serially and under the farm."""
        import json
        import pytest
        # monkeypatched stand-in dies on the second group outright
        import repro.analysis.experiments as exp

        calls = []
        real = exp._iter_group_points

        def flaky(task):
            calls.append(task[0].name)
            if len(calls) > 1:
                raise KeyboardInterrupt  # not caught by point isolation
            return real(task)

        monkeypatch.setattr(exp, "_iter_group_points", flaky)
        path = os.path.join(str(tmp_path), "cache.json")
        r = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        with pytest.raises(KeyboardInterrupt):
            r.run_matrix(["mcf", "x264"], BASELINE, ["OOO"])
        raw = json.load(open(path))
        assert len(raw["data"]) == 1  # first group survived the crash


class TestCachedStatsDir:
    def test_cached_point_renders_stats_without_resimulating(
            self, tmp_path, monkeypatch):
        import json
        from repro import sim as sim_mod
        r = ExperimentRunner(instructions=800, warmup=300)
        r.run_matrix(["mcf"], BASELINE, ["OOO"])
        stats = os.path.join(str(tmp_path), "stats")

        def boom(*a, **k):
            raise AssertionError("cached point was re-simulated")

        # historically `stats_dir` forced cached points back through the
        # simulator; the artifact must now come from the cached result
        monkeypatch.setattr(sim_mod, "simulate", boom)
        import repro.analysis.experiments as exp
        monkeypatch.setattr(exp, "simulate", boom)
        out = r.run_matrix(["mcf"], BASELINE, ["OOO"], stats_dir=stats)
        artifact = os.path.join(stats, "mcf_baseline_OOO.json")
        payload = json.load(open(artifact))
        assert payload["manifest"]["point"]["from_cache"] is True
        cached = out["OOO"]["mcf"]
        assert payload["result"]["ipc"] == cached.ipc
        assert payload["result"]["cycles"] == cached.cycles
        assert payload["result"]["avf"] == cached.avf

    def test_fresh_points_still_write_live_stats(self, tmp_path):
        import json
        stats = os.path.join(str(tmp_path), "stats")
        r = ExperimentRunner(instructions=800, warmup=300)
        r.run_matrix(["mcf"], BASELINE, ["OOO"], stats_dir=stats)
        payload = json.load(
            open(os.path.join(stats, "mcf_baseline_OOO.json")))
        assert "from_cache" not in payload["manifest"]["point"]
        assert "stats" in payload  # live run: registry tree present


class TestIdempotentDiskCache:
    def test_save_merges_with_concurrent_writers(self, tmp_path):
        """Two runners sharing one cache file union their points instead
        of last-writer-wins clobbering (the requeue/retry safety net)."""
        path = os.path.join(str(tmp_path), "cache.json")
        a = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        a.run_matrix(["mcf"], BASELINE, ["OOO"])
        # b loaded (empty) before a's flush ever existed
        b = ExperimentRunner(instructions=800, warmup=300)
        b.cache_path = path
        b.run_matrix(["x264"], BASELINE, ["OOO"])
        import json
        raw = json.load(open(path))
        assert len(raw["data"]) == 2  # both runners' points survived

    def test_repeated_save_is_idempotent(self, tmp_path):
        import json
        path = os.path.join(str(tmp_path), "cache.json")
        r = ExperimentRunner(instructions=800, warmup=300, cache_path=path)
        r.run_matrix(["mcf"], BASELINE, ["OOO"])
        first = json.load(open(path))
        r._save_disk_cache()
        r._save_disk_cache()
        assert json.load(open(path)) == first
