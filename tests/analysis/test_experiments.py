"""Experiment runner caching."""

import os

from repro.analysis.experiments import ExperimentRunner, RunKey
from repro.common.params import BASELINE
from repro.core.runahead import OOO


class TestRunKey:
    def test_round_trip_string(self):
        k = RunKey("mcf", "baseline", "RAR", 1000, 500, "abc123")
        assert k.as_str() == "mcf|baseline|RAR|1000|500|abc123"

    def test_digest_distinguishes_configs(self):
        from dataclasses import replace
        from repro.common.params import BASELINE
        same_name = replace(BASELINE, l3=replace(BASELINE.l3, latency=99))
        assert RunKey.digest(BASELINE) != RunKey.digest(same_name)

    def test_digest_stable(self):
        from repro.common.params import BASELINE
        assert RunKey.digest(BASELINE) == RunKey.digest(BASELINE)

    def test_distinct_keys(self):
        a = RunKey("mcf", "baseline", "RAR", 1000, 500)
        b = RunKey("mcf", "baseline", "PRE", 1000, 500)
        assert a.as_str() != b.as_str()


class TestRunnerCache:
    def test_memoisation(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        first = r.run("x264", BASELINE, OOO)
        second = r.run("x264", BASELINE, OOO)
        assert first is second  # cached object, not a re-run

    def test_policy_by_name(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        res = r.run("x264", BASELINE, "ooo")
        assert res.policy == "OOO"

    def test_run_matrix_shape(self):
        r = ExperimentRunner(instructions=600, warmup=200)
        out = r.run_matrix(["x264"], BASELINE, ["OOO", "RAR"])
        assert set(out) == {"OOO", "RAR"}
        assert set(out["OOO"]) == {"x264"}

    def test_disk_cache_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        r1 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        first = r1.run("x264", BASELINE, OOO)
        assert os.path.exists(path)

        r2 = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        second = r2.run("x264", BASELINE, OOO)
        assert second.ipc == first.ipc
        assert second.abc_total == first.abc_total

    def test_corrupt_disk_cache_ignored(self, tmp_path):
        path = os.path.join(str(tmp_path), "cache.json")
        with open(path, "w") as f:
            f.write("{not json")
        r = ExperimentRunner(instructions=600, warmup=200, cache_path=path)
        assert r.run("x264", BASELINE, OOO).instructions > 0
